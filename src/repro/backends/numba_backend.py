"""The Numba backend: the fused gather+contraction JIT-compiled per dtype.

Same single-pass loop structure as the C backend
(:mod:`repro.backends.cc_backend`): for every position the 4x4x4
stencil neighbourhood is read straight out of the ghost-padded flat
table — no gather temporary — and the z axis collapses in registers,
the y axis into a ``6 x N`` scratch, the x axis into the output slabs.
Numba specializes the machine code per (kind, dtype) pair on first call
(``cache=True`` persists the compilation across processes, which is
what keeps spawn-started fleet workers from each paying the JIT).

LLVM's vectorizer reassociates the stencil sums, so the backend
declares the **allclose** tier with labelled per-dtype tolerances; the
differential-conformance harness enforces them before the backend may
serve kernels.  ``numba`` itself is an optional dependency: when the
import fails, ``auto`` resolution degrades to NumPy with a warning and
a ``backend_fallback_total`` count, and an explicit ``backend="numba"``
request raises :class:`~repro.backends.base.BackendUnavailable` with
the install hint.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendCapability, BackendCores, KernelBackend

__all__ = ["NumbaBackend"]

_JIT = None  # (v_kernel, vgh_kernel) once numba has compiled them


def _build_kernels():
    """Compile (lazily, once per process) the two jitted kernels."""
    global _JIT
    if _JIT is not None:
        return _JIT
    import numba

    @numba.njit(cache=True, fastmath=False)
    def v_kernel(table, base, sy, sz, wx, wy, wz, v):
        ns, n_splines = v.shape
        for s in range(ns):
            for n in range(n_splines):
                v[s, n] = 0.0
            for a in range(4):
                for b in range(4):
                    row = base[s] + a * sy + b * sz
                    wab = wx[s, a] * wy[s, b]
                    z0 = wz[s, 0]
                    z1 = wz[s, 1]
                    z2 = wz[s, 2]
                    z3 = wz[s, 3]
                    for n in range(n_splines):
                        tz = (
                            table[row, n] * z0
                            + table[row + 1, n] * z1
                            + table[row + 2, n] * z2
                            + table[row + 3, n] * z3
                        )
                        v[s, n] += wab * tz
        return 0

    @numba.njit(cache=True, fastmath=False)
    def vgh_kernel(
        table, base, sy, sz,
        wx, dwx, d2wx, wy, dwy, d2wy, wz, dwz, d2wz,
        v, g, l, h, want_h, u,
    ):
        ns, n_splines = v.shape
        for s in range(ns):
            for n in range(n_splines):
                v[s, n] = 0.0
                g[s, 0, n] = 0.0
                g[s, 1, n] = 0.0
                g[s, 2, n] = 0.0
                l[s, n] = 0.0
            if want_h:
                for k in range(6):
                    for n in range(n_splines):
                        h[s, k, n] = 0.0
            for a in range(4):
                for k in range(6):
                    for n in range(n_splines):
                        u[k, n] = 0.0
                z0 = wz[s, 0]
                z1 = wz[s, 1]
                z2 = wz[s, 2]
                z3 = wz[s, 3]
                dz0 = dwz[s, 0]
                dz1 = dwz[s, 1]
                dz2 = dwz[s, 2]
                dz3 = dwz[s, 3]
                z20 = d2wz[s, 0]
                z21 = d2wz[s, 1]
                z22 = d2wz[s, 2]
                z23 = d2wz[s, 3]
                for b in range(4):
                    row = base[s] + a * sy + b * sz
                    yb = wy[s, b]
                    dyb = dwy[s, b]
                    d2yb = d2wy[s, b]
                    for n in range(n_splines):
                        c0 = table[row, n]
                        c1 = table[row + 1, n]
                        c2 = table[row + 2, n]
                        c3 = table[row + 3, n]
                        tz0 = c0 * z0 + c1 * z1 + c2 * z2 + c3 * z3
                        tz1 = c0 * dz0 + c1 * dz1 + c2 * dz2 + c3 * dz3
                        tz2 = c0 * z20 + c1 * z21 + c2 * z22 + c3 * z23
                        u[0, n] += tz0 * yb
                        u[1, n] += tz0 * dyb
                        u[2, n] += tz0 * d2yb
                        u[3, n] += tz1 * yb
                        u[4, n] += tz1 * dyb
                        u[5, n] += tz2 * yb
                xa = wx[s, a]
                dxa = dwx[s, a]
                d2xa = d2wx[s, a]
                for n in range(n_splines):
                    hxx = u[0, n] * d2xa
                    hyy = u[2, n] * xa
                    hzz = u[5, n] * xa
                    v[s, n] += u[0, n] * xa
                    g[s, 0, n] += u[0, n] * dxa
                    g[s, 1, n] += u[1, n] * xa
                    g[s, 2, n] += u[3, n] * xa
                    l[s, n] += hxx + hyy + hzz
                    if want_h:
                        h[s, 0, n] += hxx
                        h[s, 1, n] += u[1, n] * dxa
                        h[s, 2, n] += u[3, n] * dxa
                        h[s, 3, n] += hyy
                        h[s, 4, n] += u[4, n] * xa
                        h[s, 5, n] += hzz
        return 0

    _JIT = (v_kernel, vgh_kernel)
    return _JIT


class NumbaBackend(KernelBackend):
    """Numba-JIT fused kernels, specialized per (kind, dtype) on first call."""

    capability = BackendCapability(
        name="numba",
        tier="allclose",
        tolerances=(
            ("float64", 1e-12, 1e-12),
            ("float32", 1e-4, 1e-4),
        ),
        requires=("numba",),
        install_hint="Install it with `pip install numba`.",
        description=(
            "fused gather+contraction JIT-compiled by Numba per (kind, "
            "dtype) (allclose tier; optional dependency)"
        ),
    )

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)
        v_kernel, vgh_kernel = _build_kernels()
        flat = engine._flat
        sy, sz = engine._row_strides
        scratch = np.empty((6, engine.n_splines), dtype=engine.dtype)
        # The h stream is written through out.h views, which always
        # exist; this empty stand-in only satisfies the jitted
        # signature when the engine drives VGL (want_h=False).
        no_h = np.empty((0, 6, engine.n_splines), dtype=engine.dtype)

        def v_core(positions, v):
            base, ((ax, _, _), (ay, _, _), (az, _, _)) = engine._locate_weights(
                positions
            )
            v_kernel(flat, base, sy, sz, ax, ay, az, v)

        def vgh_core(positions, v, g, l, h):
            base, (wx3, wy3, wz3) = engine._locate_weights(positions)
            vgh_kernel(
                flat, base, sy, sz,
                wx3[0], wx3[1], wx3[2],
                wy3[0], wy3[1], wy3[2],
                wz3[0], wz3[1], wz3[2],
                v, g, l,
                h if h is not None else no_h,
                h is not None,
                scratch,
            )

        return BackendCores(v=v_core, vgh=vgh_core)
