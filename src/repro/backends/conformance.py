"""Differential conformance: every backend proven against the frozen oracle.

The harness drives a backend through :class:`repro.core.BsplineBatched`
and compares every output stream of every kernel kind against the
frozen PR4 oracle (:class:`repro.core.batched_reference
.ReferenceBatched`) — across both table dtypes, several (chunk, tile)
configurations (including the width-1-adjacent tile the engine's tiler
must absorb), and positions that cross every periodic seam.  A backend
is held to its **declared** tier:

* ``exact`` — every stream must be bit-for-bit equal
  (``np.testing.assert_array_equal`` semantics); the check's reported
  ``max_error`` is the worst absolute deviation and its tolerance 0.0.
* ``allclose`` — every element must satisfy
  ``|new - ref| <= atol + rtol * |ref|`` at the capability's declared
  per-dtype ``(rtol, atol)``; the reported ``max_error`` is the worst
  *normalized* error (1.0 = exactly at the declared bound).

:func:`verify_backend` returns the same :class:`~repro.core.verify
.VerifyReport` the engine-family self-check uses, so one summary table
covers both; :func:`check_backend` raises
:class:`~repro.backends.base.BackendConformanceError` on any failure
and is what the registry runs before a backend may serve kernels
(:func:`repro.backends.registry.resolve_backend`).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import BackendConformanceError, KernelBackend, TIER_EXACT
from repro.core.batched import _KERNEL_STREAMS, BsplineBatched
from repro.core.batched_reference import ReferenceBatched
from repro.core.grid import Grid3D
from repro.core.verify import EngineCheck, VerifyReport

__all__ = [
    "check_backend",
    "conformance_configs",
    "conformance_positions",
    "verify_backend",
]

#: Default differential problem: deliberately unequal, coprime-ish grid
#: dimensions so an axis-ordering bug cannot cancel out.
DEFAULT_GRID_SHAPE = (6, 7, 5)
DEFAULT_N_SPLINES = 6
DEFAULT_LENGTHS = (1.7, 2.3, 1.1)


def conformance_configs(n_splines: int) -> tuple[tuple[int | None, int | None], ...]:
    """(chunk, tile) pairs covering the engine's streaming edge cases.

    Includes the auto-tuned default, a chunk smaller than the batch
    (multi-chunk streaming), and the width-1-adjacent tile
    ``n_splines - 1`` whose orphan column the tiler must absorb into
    the final tile (see :meth:`BsplineBatched._tiles`).
    """
    return (
        (None, None),
        (2, None),
        (3, max(n_splines - 1, 2)),
        (2, 2),
    )


def conformance_positions(
    grid: Grid3D, rng: np.random.Generator, n_random: int = 8
) -> np.ndarray:
    """Random positions plus every periodic-seam corner case.

    The seam set pins the ghost-halo reads: positions whose stencil
    wraps below 0 on each axis, above the top grid point, exact zeros,
    exact box lengths (which must wrap to 0), and out-of-box values on
    both sides.
    """
    lx, ly, lz = grid.lengths
    eps = 1e-9
    seams = [
        (0.0, 0.0, 0.0),
        (eps, eps, eps),
        (lx - eps, ly - eps, lz - eps),
        (lx, ly, lz),
        (-0.25 * lx, 1.6 * ly, 0.5 * lz),
        (0.5 * lx, -eps, lz + eps),
    ]
    pos = np.asarray(list(grid.random_positions(n_random, rng)) + seams)
    return np.asarray(pos, dtype=np.float64)


def _stream_error(
    new: np.ndarray, ref: np.ndarray, tier: str, rtol: float, atol: float
) -> float:
    """Normalized deviation of one output stream (see module docstring)."""
    if tier == TIER_EXACT:
        if np.array_equal(new, ref):
            return 0.0
        diff = np.abs(new - ref)
        return float(np.nanmax(diff)) if np.isfinite(diff).any() else np.inf
    denom = atol + rtol * np.abs(ref)
    err = np.abs(new - ref) / denom
    return float(err.max()) if err.size else 0.0


def verify_backend(
    backend: KernelBackend,
    grid: Grid3D | None = None,
    coefficients: np.ndarray | None = None,
    *,
    dtypes=None,
    n_positions: int = 8,
    seed: int = 7,
    configs=None,
) -> VerifyReport:
    """Run the differential harness for one backend; never raises on failure.

    Parameters
    ----------
    backend:
        The backend under test (an instance, not a registry name — the
        registry calls this *before* admitting a name, so resolution
        cannot be a prerequisite).
    grid, coefficients:
        An explicit problem; defaults to the built-in coprime-grid
        problem.  When ``coefficients`` is given its dtype is the only
        one tested.
    dtypes:
        Restrict the default problem to these dtype names.
    n_positions:
        Random positions on top of the always-included seam set.
    configs:
        Explicit ``(chunk, tile)`` pairs; defaults to
        :func:`conformance_configs`.

    Returns
    -------
    VerifyReport
        One :class:`~repro.core.verify.EngineCheck` per (dtype, kind),
        labelled ``"<name>[<dtype>:<tier>]"``, carrying the worst
        normalized error over all configurations and seam positions.
    """
    cap = backend.capability
    if coefficients is not None:
        if grid is None:
            raise ValueError("passing coefficients requires the matching grid")
        problems = [(grid, coefficients)]
    else:
        rng = np.random.default_rng(seed)
        grid = grid or Grid3D(*DEFAULT_GRID_SHAPE, lengths=DEFAULT_LENGTHS)
        wanted = tuple(dtypes) if dtypes is not None else cap.dtypes
        base_table = rng.standard_normal(grid.shape + (DEFAULT_N_SPLINES,))
        problems = [
            (grid, base_table.astype(dtype))
            for dtype in wanted
            if dtype in cap.dtypes
        ]

    report = VerifyReport()
    for grid_, table in problems:
        dtype = table.dtype
        rtol, atol = cap.tolerance_for(dtype)
        n_splines = table.shape[3]
        pos_rng = np.random.default_rng(seed + n_splines)
        positions = conformance_positions(grid_, pos_rng, n_positions)
        oracle = ReferenceBatched(grid_, table)
        pair_configs = configs if configs is not None else conformance_configs(
            n_splines
        )
        for kind in cap.kinds:
            ref_out = oracle.new_output(kind, n=len(positions))
            oracle.evaluate_batch(kind, positions, ref_out)
            worst = 0.0
            for chunk, tile in pair_configs:
                eng = BsplineBatched(
                    grid_,
                    table,
                    chunk_size=chunk,
                    tile_size=tile,
                    backend=backend,
                )
                out = eng.new_output(kind, n=len(positions))
                eng.evaluate_batch(kind, positions, out)
                for stream in _KERNEL_STREAMS[kind.value]:
                    worst = max(
                        worst,
                        _stream_error(
                            getattr(out, stream),
                            getattr(ref_out, stream),
                            cap.tier,
                            rtol,
                            atol,
                        ),
                    )
            report.checks.append(
                EngineCheck(
                    engine=f"{cap.name}[{dtype.name}:{cap.tier}]",
                    kernel=kind.value,
                    max_error=worst,
                    tolerance=0.0 if cap.tier == TIER_EXACT else 1.0,
                )
            )
    return report


def check_backend(backend: KernelBackend, **kwargs) -> VerifyReport:
    """:func:`verify_backend`, escalated: raise on any failed check."""
    report = verify_backend(backend, **kwargs)
    if not report.all_passed:
        raise BackendConformanceError(
            f"backend {backend.name!r} failed its declared "
            f"{backend.capability.tier!r} conformance tier against the "
            f"reference oracle:\n{report.summary()}"
        )
    return report
