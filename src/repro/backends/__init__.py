"""Pluggable compiled kernel backends for the batched B-spline engine.

The batched engine (:class:`repro.core.BsplineBatched`) dispatches its
chunk-level V/VGL/VGH cores through this package: a registry of
:class:`KernelBackend` implementations, each carrying a
:class:`BackendCapability` record (served kinds, dtypes, and a
conformance **tier** — ``exact`` or ``allclose`` with labelled
tolerances) and each gated by the differential-conformance harness
(:mod:`repro.backends.conformance`) against the frozen PR4 oracle
before it may serve kernels.

Built-in backends:

* ``numpy`` — the PR5 padded-gather + tiled-einsum path; always
  available, exact tier, the floor every fallback lands on.
* ``numba`` — Numba-JIT fused gather+contraction; optional dependency,
  allclose tier.
* ``cc`` — C kernels compiled on demand with the system C compiler and
  loaded through :mod:`ctypes`; available wherever ``cc`` is on PATH,
  allclose tier.

Selection: ``BsplineBatched(..., backend=...)`` /
``SplineOrbitalSet(..., backend=...)`` / ``CrowdSpec(backend=...)`` /
``--backend {auto,numpy,numba,cc}`` on both CLIs, with the
``REPRO_BACKEND`` environment variable as the default override.  See
:func:`resolve_backend` for the exact policy and ``docs/API.md``
("Choose a kernel backend") for the user-facing story.
"""

from __future__ import annotations

from repro.backends.base import (
    BackendCapability,
    BackendConformanceError,
    BackendCores,
    BackendUnavailable,
    KernelBackend,
    TIER_ALLCLOSE,
    TIER_EXACT,
)
from repro.backends.cc_backend import CcBackend
from repro.backends.conformance import check_backend, verify_backend
from repro.backends.numba_backend import NumbaBackend
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.registry import (
    AUTO_ORDER,
    ENV_VAR,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.backends.stub import StubDeviceBackend

__all__ = [
    "AUTO_ORDER",
    "BackendCapability",
    "BackendConformanceError",
    "BackendCores",
    "BackendUnavailable",
    "CcBackend",
    "ENV_VAR",
    "KernelBackend",
    "NumbaBackend",
    "NumpyBackend",
    "StubDeviceBackend",
    "TIER_ALLCLOSE",
    "TIER_EXACT",
    "available_backends",
    "check_backend",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "unregister_backend",
    "verify_backend",
]

# Builtin registration.  NumPy registers trusted ("skip"): its bitwise
# identity to the oracle is pinned by tests/core/test_padded_gather.py
# and re-proven by tests/backends/.  The compiled builtins register
# lazily so importing this package never pays a JIT or C-compiler
# warm-up (and never constructs engines mid-import); each is
# harness-verified once per process on first activation.
register_backend(NumpyBackend(), verify="skip")
register_backend(NumbaBackend(), verify="lazy")
register_backend(CcBackend(), verify="lazy")
