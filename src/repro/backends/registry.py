"""Backend registry: registration, conformance gating, and resolution.

The registry maps backend names to :class:`~repro.backends.base
.KernelBackend` instances and enforces the conformance contract: **no
backend serves kernels before it has passed the differential harness**
(:mod:`repro.backends.conformance`) at its declared tier.  Verification
policy is chosen at registration time:

* ``"eager"`` — verified inside :func:`register_backend` (the default
  for user-registered backends: a broken backend is rejected before it
  can be named anywhere).
* ``"lazy"`` — verified on first *activation* (first time an engine or
  resolver actually asks for it), once per process.  The builtins with
  optional dependencies register lazily so that ``import
  repro.backends`` never pays a JIT/compiler warm-up — and never
  constructs engines mid-import.
* ``"skip"`` — trusted, never harness-verified at activation.  Reserved
  for the NumPy builtin, whose bitwise identity to the oracle is
  already pinned by ``tests/core/test_padded_gather.py`` and re-proven
  by the backend conformance suite.

Resolution (:func:`resolve_backend`) implements the selection policy
shared by :class:`~repro.core.batched.BsplineBatched`, the CLIs, and
fleet workers:

* ``None`` — the :data:`REPRO_BACKEND <ENV_VAR>` environment variable
  if set, else ``"numpy"``.  The default path never silently changes
  numerics: it stays on the exact-tier backend unless the user opts in.
* ``"auto"`` — the first *available and conforming* backend in
  :data:`AUTO_ORDER` (compiled backends first).  Skipped candidates are
  reported with a warning and a ``backend_fallback_total`` count.
* an explicit name — that backend or :class:`BackendUnavailable` with
  an actionable message.  With ``fallback=True`` (fleet workers), an
  unavailable explicit backend degrades to NumPy instead of killing the
  worker — warned and counted, never silent.
"""

from __future__ import annotations

import os
import warnings

from repro.backends.base import (
    BackendConformanceError,
    BackendUnavailable,
    KernelBackend,
)
from repro.obs import OBS

__all__ = [
    "AUTO_ORDER",
    "ENV_VAR",
    "available_backends",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
    "unregister_backend",
]

#: Preference order for ``--backend auto``: compiled backends first,
#: the always-available exact-tier NumPy path as the guaranteed floor.
AUTO_ORDER = ("numba", "cc", "numpy")

#: Environment override consulted when no backend is specified at all.
ENV_VAR = "REPRO_BACKEND"

_VERIFY_POLICIES = ("eager", "lazy", "skip")

_REGISTRY: dict[str, KernelBackend] = {}
#: Per-process activation gate: name -> None (passed) or the failure.
_VERIFIED: dict[str, BackendConformanceError | None] = {}
_VERIFY_POLICY: dict[str, str] = {}


def register_backend(
    backend: KernelBackend, *, verify: str = "eager"
) -> KernelBackend:
    """Admit a backend to the registry under its capability name.

    ``verify`` selects the conformance policy (module docstring).  With
    the default ``"eager"`` policy the differential harness runs here —
    if the backend's dependencies are missing it is still registered
    (verification defers to activation, where availability is checked
    first), but a backend that *runs* and fails its tier is rejected
    outright.
    """
    if verify not in _VERIFY_POLICIES:
        raise ValueError(
            f"verify must be one of {_VERIFY_POLICIES}, got {verify!r}"
        )
    name = backend.name
    if name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    if verify == "eager" and backend.is_available():
        from repro.backends.conformance import check_backend

        check_backend(backend)  # raises BackendConformanceError
        _VERIFIED[name] = None
        _VERIFY_POLICY[name] = "skip"
    else:
        _VERIFY_POLICY[name] = "lazy" if verify == "eager" else verify
    _REGISTRY[name] = backend
    return backend


def unregister_backend(name: str) -> None:
    """Remove a backend (test hook; unknown names are ignored)."""
    _REGISTRY.pop(name, None)
    _VERIFIED.pop(name, None)
    _VERIFY_POLICY.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """All registered names, builtins first in :data:`AUTO_ORDER` order."""
    builtin = [n for n in AUTO_ORDER if n in _REGISTRY]
    extra = sorted(n for n in _REGISTRY if n not in AUTO_ORDER)
    return tuple(builtin + extra)


def available_backends() -> tuple[str, ...]:
    """Registered names whose dependencies import in this process."""
    return tuple(
        n for n in registered_backends() if _REGISTRY[n].is_available()
    )


def get_backend(name: str) -> KernelBackend:
    """Look up a registered backend by name (no availability check)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendUnavailable(
            f"no backend named {name!r} is registered; known backends: "
            f"{', '.join(registered_backends()) or '(none)'}"
        ) from None


def _activate(backend: KernelBackend) -> KernelBackend:
    """Availability + once-per-process conformance gate before serving."""
    err = backend.availability_error()
    if err is not None:
        raise BackendUnavailable(err)
    name = backend.name
    if _VERIFY_POLICY.get(name) == "skip":
        return backend
    if name not in _VERIFIED:
        from repro.backends.conformance import check_backend

        try:
            check_backend(backend)
        except BackendConformanceError as exc:
            _VERIFIED[name] = exc
            raise
        _VERIFIED[name] = None
    elif _VERIFIED[name] is not None:
        raise _VERIFIED[name]
    return backend


def _note_fallback(requested: str, skipped: str, reason: str) -> None:
    """Record one degradation: a warning plus an OBS counter sample."""
    warnings.warn(
        f"backend {skipped!r} unavailable for request {requested!r}: "
        f"{reason}",
        RuntimeWarning,
        stacklevel=3,
    )
    if OBS.enabled:
        OBS.count(
            "backend_fallback_total",
            requested=requested,
            skipped=skipped,
        )


def resolve_backend(
    spec: str | KernelBackend | None = None, *, fallback: bool = False
) -> KernelBackend:
    """Resolve a backend spec to an activated (conforming) instance.

    Parameters
    ----------
    spec:
        ``None`` (env var or NumPy), ``"auto"`` (best available in
        :data:`AUTO_ORDER`), a registered name, or an already-constructed
        :class:`KernelBackend` (activated as-is, useful in tests).
    fallback:
        When true, an explicit name that cannot be served degrades to
        the NumPy backend with a warning and a ``backend_fallback_total``
        count instead of raising — the fleet-worker policy, where one
        heterogeneous node must not kill a parallel run.

    Raises
    ------
    BackendUnavailable
        Unknown name, or explicit backend unavailable with
        ``fallback=False``.
    BackendConformanceError
        The backend runs but fails its declared tier.
    """
    if isinstance(spec, KernelBackend):
        return _activate(spec)
    if spec is None:
        spec = os.environ.get(ENV_VAR) or "numpy"
    if spec == "auto":
        last_error = "no backends registered"
        for name in AUTO_ORDER:
            if name not in _REGISTRY:
                continue
            try:
                return _activate(_REGISTRY[name])
            except (BackendUnavailable, BackendConformanceError) as exc:
                last_error = str(exc)
                _note_fallback("auto", name, str(exc))
        raise BackendUnavailable(
            f"no backend in auto order {AUTO_ORDER} could be activated; "
            f"last error: {last_error}"
        )
    backend = get_backend(spec)
    try:
        return _activate(backend)
    except (BackendUnavailable, BackendConformanceError) as exc:
        if not fallback or spec == "numpy":
            raise
        _note_fallback(spec, spec, str(exc))
        return _activate(get_backend("numpy"))


def _reset_for_tests() -> None:
    """Forget activation results so a test can re-run the lazy gate."""
    _VERIFIED.clear()
