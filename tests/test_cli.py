"""Tests for the CLI and the reproduce presentation layer."""

import pytest

from repro.__main__ import main
from repro.reproduce import ALL_TARGETS


class TestReproduceFunctions:
    @pytest.mark.parametrize("name", sorted(ALL_TARGETS))
    def test_every_target_renders(self, name):
        func, desc = ALL_TARGETS[name]
        text = func()
        assert isinstance(text, str)
        assert len(text.splitlines()) >= 3
        assert desc  # registry carries a description

    def test_table4_contains_all_cells(self):
        text = ALL_TARGETS["table4"][0]()
        for kern in ("V", "VGL", "VGH"):
            assert kern in text
        for machine in ("BDW", "KNC", "KNL", "BGQ"):
            assert machine in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ALL_TARGETS:
            assert name in out

    def test_single_target(self, capsys):
        assert main(["fig9"]) == 0
        assert "nested-threading" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown target" in capsys.readouterr().err
