"""Test package."""
