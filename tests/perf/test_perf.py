"""Tests for timing, throughput metric, sweep and reporting helpers."""

import time

import numpy as np
import pytest

from repro.perf import (
    SectionTimers,
    best_of,
    format_series,
    format_table,
    paper_vs_model_row,
    parallel_efficiency,
    speedup,
    sweep,
    throughput,
)


class TestTimers:
    def test_best_of_returns_positive(self):
        t = best_of(lambda: sum(range(1000)), repeats=2)
        assert t > 0

    def test_best_of_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)

    def test_best_of_forwards_positional_args(self):
        seen = []
        best_of(seen.append, "payload", repeats=2)
        # Positional args go to the callable, never to repeats.
        assert seen == ["payload", "payload"]

    def test_best_of_forwards_keyword_args(self):
        calls = []
        best_of(lambda a, k=None: calls.append((a, k)), 1, k="kw", repeats=1)
        assert calls == [(1, "kw")]

    def test_best_of_repeats_is_keyword_only(self):
        # best_of(f, 5) must time f(5), not run 5 repeats of f().
        counted = []
        best_of(counted.append, 5, repeats=1)
        assert counted == [5]
        with pytest.raises(TypeError):
            best_of(lambda: None, repeats="not-an-int")  # still validated


    def test_sections_accumulate(self):
        timers = SectionTimers()
        with timers.section("a"):
            time.sleep(0.01)
        with timers.section("a"):
            pass
        with timers.section("b"):
            pass
        assert timers.elapsed["a"] >= 0.01
        assert set(timers.elapsed) == {"a", "b"}

    def test_shares_sum_to_100(self):
        timers = SectionTimers()
        timers.add("x", 1.0)
        timers.add("y", 3.0)
        shares = timers.shares()
        assert np.isclose(sum(shares.values()), 100.0)
        assert np.isclose(shares["y"], 75.0)

    def test_empty_shares(self):
        assert SectionTimers().shares() == {}

    def test_reset(self):
        timers = SectionTimers()
        timers.add("x", 1.0)
        timers.reset()
        assert timers.total == 0.0

    def test_section_records_on_exception(self):
        timers = SectionTimers()
        with pytest.raises(RuntimeError):
            with timers.section("x"):
                raise RuntimeError
        assert "x" in timers.elapsed


class TestThroughput:
    def test_paper_formula(self):
        # T = Nw * N / t (per eval).
        assert throughput(36, 2048, 2.0) == 36 * 2048 / 2.0

    def test_with_evals(self):
        assert throughput(1, 100, 1.0, n_evals=512) == 51200

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            throughput(1, 1, 0.0)
        with pytest.raises(ValueError):
            throughput(0, 1, 1.0)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_parallel_efficiency(self):
        assert parallel_efficiency(14.0, 16) == pytest.approx(0.875)
        with pytest.raises(ValueError):
            parallel_efficiency(1.0, 0)


class TestSweep:
    def test_cartesian_product(self):
        records = sweep(lambda a, b: a * b, {"a": [1, 2], "b": [10, 20]})
        assert len(records) == 4
        assert records[0] == {"a": 1, "b": 10, "value": 10}

    def test_dict_results_merged(self):
        records = sweep(lambda a: {"sq": a * a}, {"a": [3]})
        assert records == [{"a": 3, "sq": 9}]

    def test_fixed_arguments(self):
        records = sweep(lambda a, k: a + k, {"a": [1]}, fixed={"k": 100})
        assert records[0]["value"] == 101


class TestReport:
    def test_format_table_alignment(self):
        txt = format_table(["name", "x"], [["a", 1.5], ["bb", 22.25]])
        lines = txt.splitlines()
        assert len(lines) == 4
        assert "1.50" in txt and "22.25" in txt

    def test_format_table_title(self):
        txt = format_table(["c"], [[1.0]], title="T1")
        assert txt.splitlines()[0] == "T1"

    def test_format_series(self):
        txt = format_series("N", [128, 256], {"aos": [1.0, 2.0], "soa": [3.0, 4.0]})
        assert "aos" in txt and "soa" in txt and "128" in txt

    def test_paper_vs_model_row(self):
        row = paper_vs_model_row("B", 2.0, 2.5)
        assert row == ["B", 2.0, 2.5, 1.25]


class TestFormatBars:
    def test_basic_render(self):
        from repro.perf import format_bars

        txt = format_bars(["a", "bb"], [1.0, 2.0], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert lines[2].count("#") > lines[1].count("#")

    def test_peak_fills_width(self):
        from repro.perf import format_bars

        txt = format_bars(["x"], [5.0], width=10)
        assert txt.count("#") == 10

    def test_rejects_empty_and_nonpositive(self):
        from repro.perf import format_bars
        import pytest as _pytest

        with _pytest.raises(ValueError):
            format_bars([], [])
        with _pytest.raises(ValueError):
            format_bars(["a"], [0.0])
