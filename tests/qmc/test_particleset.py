"""Unit tests for ParticleSet and its staged-move protocol."""

import numpy as np
import pytest

from repro.lattice import Cell
from repro.qmc import ParticleSet


@pytest.fixture
def pset(rng):
    cell = Cell.cubic(4.0)
    return ParticleSet.random("e", cell, 6, rng)


class TestConstruction:
    def test_random_inside_cell(self, pset):
        frac = pset.cell.cart_to_frac(pset.positions)
        assert (frac >= 0).all() and (frac < 1).all()

    def test_len_and_indexing(self, pset):
        assert len(pset) == 6
        np.testing.assert_array_equal(pset[2], pset.positions[2])

    def test_positions_wrapped_at_construction(self):
        cell = Cell.cubic(2.0)
        p = ParticleSet("e", cell, np.array([[3.0, -0.5, 1.0]]))
        np.testing.assert_allclose(p[0], [1.0, 1.5, 1.0])

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ParticleSet("e", Cell.cubic(1.0), np.zeros((3, 2)))


class TestMoveProtocol:
    def test_propose_accept(self, pset):
        old = pset[1]
        staged = pset.propose(1, old + 0.1)
        assert pset.active_particle == 1
        np.testing.assert_allclose(pset[1], old)  # not committed yet
        pset.accept()
        np.testing.assert_allclose(pset[1], staged)
        assert pset.active_particle is None

    def test_propose_reject(self, pset):
        old = pset[1]
        pset.propose(1, old + 0.5)
        pset.reject()
        np.testing.assert_allclose(pset[1], old)

    def test_propose_wraps(self, pset):
        staged = pset.propose(0, np.array([100.0, 0.0, 0.0]))
        frac = pset.cell.cart_to_frac(staged)
        assert (frac >= 0).all() and (frac < 1).all()
        pset.reject()

    def test_double_propose_rejected(self, pset):
        pset.propose(0, pset[0])
        with pytest.raises(RuntimeError, match="already staged"):
            pset.propose(1, pset[1])
        pset.reject()

    def test_accept_without_propose_rejected(self, pset):
        with pytest.raises(RuntimeError, match="no move staged"):
            pset.accept()

    def test_reject_without_propose_rejected(self, pset):
        with pytest.raises(RuntimeError, match="no move staged"):
            pset.reject()

    def test_out_of_range_index(self, pset):
        with pytest.raises(IndexError):
            pset.propose(6, np.zeros(3))

    def test_staged_position_copy(self, pset):
        staged = pset.propose(0, pset[0] + 0.1)
        sp = pset.staged_position
        sp[0] = 1e9
        np.testing.assert_allclose(pset.staged_position, staged)
        pset.reject()


class TestBulkLoad:
    def test_load_positions(self, pset, rng):
        new = pset.cell.frac_to_cart(rng.random((6, 3)))
        pset.load_positions(new)
        np.testing.assert_allclose(pset.positions, new, atol=1e-12)

    def test_load_rejects_wrong_shape(self, pset):
        with pytest.raises(ValueError):
            pset.load_positions(np.zeros((5, 3)))

    def test_load_rejects_with_staged_move(self, pset):
        pset.propose(0, pset[0])
        with pytest.raises(RuntimeError, match="staged"):
            pset.load_positions(np.zeros((6, 3)))
        pset.reject()
