"""Bitwise identity of the batched population step vs the per-walker path.

The tentpole contract: ``step_mode="batched"`` and ``step_mode="walker"``
must produce *bit-identical* trajectories — same positions, same energy
traces, same acceptance counts, same branching decisions.  Everything
here uses ``assert_array_equal`` / ``==``, never tolerances.
"""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, wigner_seitz_radius
from repro.qmc import (
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    WalkerRngPool,
    make_polynomial_radial,
    run_vmc,
    sweep,
)
from repro.qmc.batched_step import CrowdState, _ufunc_equal, batched_sweep
from repro.qmc.dmc import _crowd_groups, build_dmc_ensemble, run_dmc
from tests.qmc.test_wavefunction import build_wf


def build_population(n_walkers=3, n_orb=2, seed=7, layout="soa", with_jastrow=True):
    """Walkers sharing one orbital set, plus matched private streams."""
    cell = Cell.cubic(6.0)
    pw = PlaneWaveOrbitalSet(cell, n_orb)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell, pw, (8, 8, 8), engine="fused", dtype=np.float64
    )
    rcut = 0.9 * wigner_seitz_radius(cell)
    wfs, rngs = [], []
    for w in range(n_walkers):
        wrng = np.random.default_rng(seed + 100 * w)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(wrng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, 2 * n_orb, wrng)
        j1 = make_polynomial_radial(0.4, rcut) if with_jastrow else None
        j2 = make_polynomial_radial(0.6, rcut) if with_jastrow else None
        wfs.append(SlaterJastrow(electrons, ions, spos, j1, j2, layout=layout))
        rngs.append(np.random.default_rng(5000 + w))
    return wfs, rngs


def assert_walkers_bitwise_equal(wfs_a, wfs_b):
    for wa, wb in zip(wfs_a, wfs_b):
        np.testing.assert_array_equal(
            wa.electrons.positions, wb.electrons.positions
        )
        assert wa.log_value == wb.log_value


class TestBatchedSweepIdentity:
    @pytest.mark.parametrize("layout", ["soa", "aos"])
    def test_sweeps_match_per_walker_bitwise(self, layout):
        wfs_b, rngs_b = build_population(3, layout=layout)
        wfs_s, rngs_s = build_population(3, layout=layout)
        state = CrowdState(wfs_b, rngs_b)
        acc_total = 0
        for _ in range(3):
            acc, _ = batched_sweep(state, 0.25)
            acc_total += acc
        acc_seq = 0
        for wf, rng in zip(wfs_s, rngs_s):
            for _ in range(3):
                a, _ = sweep(wf, 0.25, rng)
                acc_seq += a
        assert acc_total == acc_seq
        assert_walkers_bitwise_equal(wfs_b, wfs_s)

    def test_no_drift_mode_matches(self):
        wfs_b, rngs_b = build_population(2)
        wfs_s, rngs_s = build_population(2)
        state = CrowdState(wfs_b, rngs_b)
        acc_b, _ = batched_sweep(state, 0.3, use_drift=False)
        acc_s = sum(
            sweep(wf, 0.3, rng, use_drift=False)[0]
            for wf, rng in zip(wfs_s, rngs_s)
        )
        assert acc_b == acc_s
        assert_walkers_bitwise_equal(wfs_b, wfs_s)

    def test_bare_slater_matches(self):
        wfs_b, rngs_b = build_population(2, with_jastrow=False)
        wfs_s, rngs_s = build_population(2, with_jastrow=False)
        state = CrowdState(wfs_b, rngs_b)
        batched_sweep(state, 0.2)
        for wf, rng in zip(wfs_s, rngs_s):
            sweep(wf, 0.2, rng)
        assert_walkers_bitwise_equal(wfs_b, wfs_s)

    def test_rng_streams_consumed_identically(self):
        wfs_b, rngs_b = build_population(2)
        wfs_s, rngs_s = build_population(2)
        batched_sweep(CrowdState(wfs_b, rngs_b), 0.25)
        for wf, rng in zip(wfs_s, rngs_s):
            sweep(wf, 0.25, rng)
        # Post-sweep draws must agree too: same number of variates used.
        for rb, rs in zip(rngs_b, rngs_s):
            assert rb.random() == rs.random()

    def test_state_positions_track_walkers(self):
        wfs, rngs = build_population(2)
        state = CrowdState(wfs, rngs)
        batched_sweep(state, 0.25)
        for w, wf in enumerate(wfs):
            np.testing.assert_array_equal(
                state.positions[w], wf.electrons.positions
            )


class TestVmcStepModes:
    def test_vmc_traces_bitwise_identical(self):
        results = {}
        for mode in ("batched", "walker"):
            rng = np.random.default_rng(20170401)
            wf = build_wf(rng, n_orb=2)
            results[mode] = run_vmc(
                wf, rng, n_steps=8, n_warmup=2, tau=0.3, step_mode=mode
            )
        np.testing.assert_array_equal(
            results["batched"].energies, results["walker"].energies
        )
        assert results["batched"].acceptance == results["walker"].acceptance

    def test_rejects_unknown_step_mode(self):
        rng = np.random.default_rng(1)
        wf = build_wf(rng, n_orb=2)
        with pytest.raises(ValueError, match="step_mode"):
            run_vmc(wf, rng, n_steps=1, step_mode="turbo")


class TestDmcStepModes:
    def test_dmc_traces_bitwise_identical(self):
        traces = {}
        for mode in ("batched", "walker"):
            pool = WalkerRngPool(2017)
            walkers = build_dmc_ensemble(pool, 3, n_orbitals=2, grid_shape=(8, 8, 8))
            r = run_dmc(walkers, pool, n_generations=5, tau=0.02, step_mode=mode)
            traces[mode] = r
        np.testing.assert_array_equal(
            traces["batched"].energy_trace, traces["walker"].energy_trace
        )
        np.testing.assert_array_equal(
            traces["batched"].population_trace, traces["walker"].population_trace
        )
        np.testing.assert_array_equal(
            traces["batched"].e_trial_trace, traces["walker"].e_trial_trace
        )
        assert traces["batched"].acceptance == traces["walker"].acceptance

    def test_branching_clones_stay_in_one_crowd(self):
        pool = WalkerRngPool(11)
        walkers = build_dmc_ensemble(pool, 2, n_orbitals=2, grid_shape=(8, 8, 8))
        clone = walkers[0].clone(pool.next_rng())
        assert clone.wf.slater.spos is walkers[0].wf.slater.spos
        groups = _crowd_groups(walkers + [clone])
        assert len(groups) == 1
        assert len(groups[0]) == 3

    def test_rejects_unknown_step_mode(self):
        pool = WalkerRngPool(3)
        walkers = build_dmc_ensemble(pool, 1, n_orbitals=2, grid_shape=(8, 8, 8))
        with pytest.raises(ValueError, match="step_mode"):
            run_dmc(walkers, pool, n_generations=1, step_mode="turbo")


class TestCrowdStateValidation:
    def test_rejects_mixed_jastrow_structure(self):
        wfs, rngs = build_population(2)
        bare = build_population(1, with_jastrow=False)[0][0]
        # Rebuild the bare walker on the shared orbital set.
        cell = wfs[0].electrons.cell
        rng = np.random.default_rng(0)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, len(wfs[0].electrons), rng)
        bare = SlaterJastrow(electrons, ions, wfs[0].slater.spos)
        with pytest.raises(ValueError, match="Jastrow structure"):
            CrowdState([wfs[0], bare], rngs)

    def test_equal_radials_are_shared(self):
        # build_population gives each walker its own (identical) radials;
        # the crowd must still detect value equality and batch them.
        wfs, rngs = build_population(2)
        state = CrowdState(wfs, rngs)
        assert state._share_j1 and state._share_j2

    def test_ufunc_equal_semantics(self):
        rcut = 2.0
        a = make_polynomial_radial(0.4, rcut)
        b = make_polynomial_radial(0.4, rcut)
        c = make_polynomial_radial(0.5, rcut)
        assert _ufunc_equal(a, a)
        assert _ufunc_equal(a, b)
        assert not _ufunc_equal(a, c)
        assert not _ufunc_equal(a, object())
