"""Unit tests for one- and two-body Jastrow factors."""

import numpy as np
import pytest

from repro.lattice import Cell
from repro.qmc import (
    DistanceTableAA,
    DistanceTableAB,
    OneBodyJastrow,
    ParticleSet,
    TwoBodyJastrow,
    make_polynomial_radial,
)


@pytest.fixture(params=["aos", "soa"])
def layout(request):
    return request.param


@pytest.fixture
def system(rng, layout):
    cell = Cell.cubic(6.0)
    ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((3, 3))))
    electrons = ParticleSet.random("e", cell, 6, rng)
    ee = DistanceTableAA(electrons, layout)
    ei = DistanceTableAB(ions, electrons, layout)
    u = make_polynomial_radial(0.7, 2.5)
    return cell, ions, electrons, ee, ei, u


class TestRadial:
    def test_vanishes_smoothly_at_cutoff(self):
        u = make_polynomial_radial(1.0, 2.0)
        v, dv, _ = u.evaluate_vgl(2.0 - 1e-9)
        assert abs(v) < 1e-6 and abs(dv) < 1e-5

    def test_value_at_origin(self):
        u = make_polynomial_radial(1.5, 2.0)
        assert np.isclose(u.evaluate(0.0), 1.5, atol=1e-10)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            make_polynomial_radial(1.0, -1.0)


def brute_j2(electrons, u, cell):
    from repro.lattice import minimal_image_distances

    d = minimal_image_distances(cell, electrons.positions, electrons.positions)
    iu = np.triu_indices(len(electrons), k=1)
    return -float(np.sum(u.evaluate(d[iu])))


def brute_j1(ions, electrons, u, cell):
    from repro.lattice import minimal_image_distances

    d = minimal_image_distances(cell, electrons.positions, ions.positions)
    return -float(np.sum(u.evaluate(d)))


class TestTwoBody:
    def test_log_value_matches_brute_force(self, system):
        cell, _, electrons, ee, _, u = system
        j2 = TwoBodyJastrow(ee, u)
        assert np.isclose(j2.log_value(), brute_j2(electrons, u, cell), atol=1e-10)

    def test_ratio_matches_recompute(self, system, rng):
        cell, _, electrons, ee, _, u = system
        j2 = TwoBodyJastrow(ee, u)
        lv0 = j2.log_value()
        new_pos = cell.frac_to_cart(rng.random(3))
        ee.propose_row(2, new_pos)
        r = j2.ratio(2)
        # Commit everywhere and compare log difference.
        j2.accept_move(2)
        ee.accept_move(2)
        electrons.propose(2, new_pos)
        electrons.accept()
        lv1_brute = brute_j2(electrons, u, cell)
        assert np.isclose(np.log(r), lv1_brute - lv0, atol=1e-9)
        assert np.isclose(j2.log_value(), lv1_brute, atol=1e-9)

    def test_reject_keeps_state(self, system, rng):
        cell, _, _, ee, _, u = system
        j2 = TwoBodyJastrow(ee, u)
        lv0 = j2.log_value()
        ee.propose_row(1, cell.frac_to_cart(rng.random(3)))
        j2.ratio(1)
        ee.reject_move(1)
        assert np.isclose(j2.log_value(), lv0)

    def test_grad_matches_finite_difference(self, system):
        cell, _, electrons, ee, _, u = system
        j2 = TwoBodyJastrow(ee, u)
        e = 3
        g = j2.grad(e)
        eps = 1e-6
        fd = np.zeros(3)
        for d in range(3):
            vals = []
            for s in (+1, -1):
                p = electrons[e].copy()
                p[d] += s * eps
                ee.propose_row(e, p)
                vnew, *_ = j2._row_terms(ee.temp_dist, e)
                ee.reject_move(e)
                vals.append(-(vnew.sum() - j2._usum[e]))
            fd[d] = (vals[0] - vals[1]) / (2 * eps)
        np.testing.assert_allclose(g, fd, atol=1e-6)

    def test_lap_matches_finite_difference(self, system):
        cell, _, electrons, ee, _, u = system
        j2 = TwoBodyJastrow(ee, u)
        e = 0
        _, lap = j2.grad_lap(e)
        eps = 1e-4

        def j_at(p):
            ee.propose_row(e, p)
            vnew, *_ = j2._row_terms(ee.temp_dist, e)
            ee.reject_move(e)
            return -float(vnew.sum())

        center = j_at(electrons[e])
        fd = 0.0
        for d in range(3):
            dp = np.zeros(3)
            dp[d] = eps
            fd += (j_at(electrons[e] + dp) - 2 * center + j_at(electrons[e] - dp)) / eps**2
        assert np.isclose(lap, fd, atol=1e-3)

    def test_aos_soa_agree(self, rng):
        cell = Cell.cubic(6.0)
        electrons = ParticleSet.random("e", cell, 6, rng)
        u = make_polynomial_radial(0.7, 2.5)
        j_aos = TwoBodyJastrow(DistanceTableAA(electrons, "aos"), u)
        j_soa = TwoBodyJastrow(DistanceTableAA(electrons, "soa"), u)
        assert np.isclose(j_aos.log_value(), j_soa.log_value(), atol=1e-12)
        np.testing.assert_allclose(j_aos.grad(2), j_soa.grad(2), atol=1e-12)


class TestOneBody:
    def test_log_value_matches_brute_force(self, system):
        cell, ions, electrons, _, ei, u = system
        j1 = OneBodyJastrow(ei, u)
        assert np.isclose(j1.log_value(), brute_j1(ions, electrons, u, cell), atol=1e-10)

    def test_ratio_matches_recompute(self, system, rng):
        cell, ions, electrons, _, ei, u = system
        j1 = OneBodyJastrow(ei, u)
        lv0 = j1.log_value()
        new_pos = cell.frac_to_cart(rng.random(3))
        ei.propose_row(4, new_pos)
        r = j1.ratio(4)
        j1.accept_move(4)
        ei.accept_move(4)
        electrons.propose(4, new_pos)
        electrons.accept()
        lv1 = brute_j1(ions, electrons, u, cell)
        assert np.isclose(np.log(r), lv1 - lv0, atol=1e-9)

    def test_grad_matches_finite_difference(self, system):
        cell, ions, electrons, _, ei, u = system
        j1 = OneBodyJastrow(ei, u)
        e = 2
        g = j1.grad(e)
        eps = 1e-6
        fd = np.zeros(3)
        for d in range(3):
            vals = []
            for s in (+1, -1):
                p = electrons[e].copy()
                p[d] += s * eps
                ei.propose_row(e, p)
                vnew, *_ = j1._row_terms(ei.temp_dist, None)
                ei.reject_move(e)
                vals.append(-float(vnew.sum()))
            fd[d] = (vals[0] - vals[1]) / (2 * eps)
        np.testing.assert_allclose(g, fd, atol=1e-6)

    def test_grad_lap_consistent_with_grad(self, system):
        _, _, _, _, ei, u = system
        j1 = OneBodyJastrow(ei, u)
        g1 = j1.grad(0)
        g2, lap = j1.grad_lap(0)
        np.testing.assert_array_equal(g1, g2)
        assert np.isfinite(lap)
