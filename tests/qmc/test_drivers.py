"""Tests for drift-diffusion, VMC and DMC drivers, and RNG streams."""

import numpy as np
import pytest

from repro.qmc import (
    DmcWalker,
    WalkerRngPool,
    limited_drift,
    log_greens_ratio,
    run_dmc,
    run_vmc,
    sweep,
)
from tests.qmc.test_wavefunction import build_wf


class TestRngPool:
    def test_streams_differ(self):
        pool = WalkerRngPool(1)
        a, b = pool.batch(2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_reproducible(self):
        x = WalkerRngPool(42).next_rng().random(5)
        y = WalkerRngPool(42).next_rng().random(5)
        np.testing.assert_array_equal(x, y)

    def test_issued_count(self):
        pool = WalkerRngPool(0)
        pool.next_rng()
        pool.batch(3)
        assert pool.issued == 4

    def test_batch_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WalkerRngPool(0).batch(0)


class TestDrift:
    def test_small_gradient_unchanged(self):
        g = np.array([0.01, 0.0, 0.0])
        np.testing.assert_allclose(limited_drift(g, 0.01), g, rtol=1e-3)

    def test_large_gradient_limited(self):
        g = np.array([1e6, 0.0, 0.0])
        v = limited_drift(g, 0.05)
        assert np.linalg.norm(v) < np.linalg.norm(g)
        # The limited drift step tau*v is bounded by ~sqrt(2 tau).
        assert 0.05 * np.linalg.norm(v) < np.sqrt(2 * 0.05) * 1.1

    def test_zero_gradient(self):
        np.testing.assert_array_equal(limited_drift(np.zeros(3), 0.1), np.zeros(3))

    def test_greens_ratio_symmetric_kernel_is_zero(self):
        r1, r2 = np.zeros(3), np.ones(3)
        assert np.isclose(
            log_greens_ratio(r1, r2, np.zeros(3), np.zeros(3), 0.1), 0.0
        )

    def test_greens_ratio_antisymmetry(self, rng):
        r1, r2 = rng.standard_normal((2, 3))
        d1, d2 = rng.standard_normal((2, 3))
        fwd = log_greens_ratio(r1, r2, d1, d2, 0.07)
        rev = log_greens_ratio(r2, r1, d2, d1, 0.07)
        assert np.isclose(fwd, -rev)


class TestSweep:
    def test_acceptance_counts(self, rng):
        wf = build_wf(rng)
        acc, att = sweep(wf, 0.1, rng)
        assert att == len(wf.electrons)
        assert 0 <= acc <= att

    def test_small_tau_high_acceptance(self, rng):
        wf = build_wf(rng)
        acc = att = 0
        for _ in range(5):
            a, t = sweep(wf, 0.005, rng)
            acc += a
            att += t
        assert acc / att > 0.9

    def test_state_consistent_after_sweeps(self, rng):
        wf = build_wf(rng)
        for _ in range(5):
            sweep(wf, 0.2, rng)
        lv = wf.log_value
        wf.recompute()
        assert np.isclose(wf.log_value, lv, atol=1e-6)

    def test_no_drift_mode(self, rng):
        wf = build_wf(rng)
        acc, att = sweep(wf, 0.05, rng, use_drift=False)
        assert att == len(wf.electrons)


class TestVmc:
    def test_result_fields(self, rng):
        wf = build_wf(rng)
        res = run_vmc(wf, rng, n_steps=6, n_warmup=2, tau=0.2)
        assert len(res.energies) == 6
        assert 0.0 < res.acceptance <= 1.0
        assert np.isfinite(res.energy_mean)
        assert res.energy_error >= 0.0

    def test_measure_false_skips_energies(self, rng):
        wf = build_wf(rng)
        res = run_vmc(wf, rng, n_steps=3, n_warmup=0, measure=False)
        assert len(res.energies) == 0

    def test_energies_are_stable(self, rng):
        # Local energies of a smooth trial function on a smooth system
        # should have bounded spread — a blown-up Sherman-Morrison or a
        # broken estimator shows up as wild outliers here.
        wf = build_wf(rng)
        res = run_vmc(wf, rng, n_steps=10, n_warmup=3, tau=0.2)
        med = np.median(res.energies)
        assert np.all(np.abs(res.energies - med) < 50.0 * max(1.0, abs(med)))


class TestDmc:
    def test_population_and_traces(self, rng):
        pool = WalkerRngPool(3)
        walkers = [
            DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())
            for _ in range(4)
        ]
        res = run_dmc(walkers, pool, n_generations=5, tau=0.02)
        assert len(res.energy_trace) == 5
        assert len(res.population_trace) == 5
        assert (res.population_trace >= 1).all()
        assert (res.population_trace <= 16).all()  # capped at 4x target
        assert 0.0 < res.acceptance <= 1.0

    def test_population_control_steers_back(self, rng):
        pool = WalkerRngPool(4)
        walkers = [
            DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())
            for _ in range(3)
        ]
        res = run_dmc(walkers, pool, n_generations=8, tau=0.02, feedback=1.0)
        # With feedback the final population stays within 3x of target.
        assert 1 <= res.population_trace[-1] <= 9

    def test_clone_independent_stream(self, rng):
        pool = WalkerRngPool(5)
        w = DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())
        c = w.clone(pool.next_rng())
        assert c.wf is not w.wf
        assert not np.allclose(c.rng.random(5), w.rng.random(5))
        np.testing.assert_array_equal(
            c.wf.electrons.positions, w.wf.electrons.positions
        )

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            run_dmc([], WalkerRngPool(0))

    def test_energy_mean_uses_second_half(self):
        from repro.qmc.dmc import DmcResult

        res = DmcResult(
            energy_trace=np.array([10.0, 10.0, 2.0, 2.0]),
            population_trace=np.ones(4),
            e_trial_trace=np.zeros(4),
            acceptance=1.0,
        )
        assert res.energy_mean == 2.0


class TestVmcMaintenance:
    def test_recompute_every_controls_drift(self, rng):
        # With frequent recomputes the inverse drift stays at solver
        # precision throughout the run.
        wf = build_wf(rng)
        run_vmc(wf, rng, n_steps=6, n_warmup=0, tau=0.25, recompute_every=2)
        assert max(d.update_error for d in wf.slater.dets) < 1e-8

    def test_energy_trace_is_finite(self, rng):
        wf = build_wf(rng)
        res = run_vmc(wf, rng, n_steps=5, n_warmup=1, tau=0.2)
        assert np.isfinite(res.energies).all()

    def test_empty_energy_result_statistics(self):
        from repro.qmc.vmc import VmcResult

        res = VmcResult(energies=np.array([]), acceptance=0.5)
        assert res.energy_mean == 0.0
        assert res.energy_error == 0.0
