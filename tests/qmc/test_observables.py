"""Tests for structural observables (g(r), S(k))."""

import numpy as np
import pytest

from repro.lattice import Cell
from repro.qmc import DistanceTableAA, ParticleSet
from repro.qmc.observables import PairCorrelation, StructureFactor


class TestPairCorrelation:
    def test_uncorrelated_gas_gives_unity(self, rng):
        # Uniform random particles: g(r) ~ 1 within statistics.
        cell = Cell.cubic(5.0)
        gofr = PairCorrelation(cell, 32, n_bins=8)
        for _ in range(60):
            pset = ParticleSet.random("e", cell, 32, rng)
            gofr.accumulate(DistanceTableAA(pset))
        r, g = gofr.estimate()
        mask = r > 0.8  # small-r bins have few pairs -> noisy
        assert np.allclose(g[mask], 1.0, atol=0.25)

    def test_hard_shell_depletion_visible(self, rng):
        # Particles placed on a lattice with minimum spacing 1.25 must
        # show g(r) = 0 below that spacing.
        cell = Cell.cubic(5.0)
        grid_pts = np.array(
            [[i, j, k] for i in range(4) for j in range(4) for k in range(4)],
            dtype=float,
        ) * 1.25
        pset = ParticleSet("e", cell, grid_pts)
        gofr = PairCorrelation(cell, 64, n_bins=10)
        gofr.accumulate(DistanceTableAA(pset))
        r, g = gofr.estimate()
        assert (g[r < 1.1] == 0.0).all()
        assert g.max() > 0

    def test_r_max_capped_at_wigner_seitz(self):
        cell = Cell.cubic(4.0)
        gofr = PairCorrelation(cell, 8, r_max=100.0)
        assert gofr.r_max == pytest.approx(2.0)

    def test_estimate_requires_samples(self):
        with pytest.raises(RuntimeError):
            PairCorrelation(Cell.cubic(4.0), 4).estimate()

    def test_rejects_single_particle(self):
        with pytest.raises(ValueError):
            PairCorrelation(Cell.cubic(4.0), 1)


class TestStructureFactor:
    def test_uncorrelated_gas_near_unity(self, rng):
        cell = Cell.cubic(5.0)
        sk = StructureFactor(cell, n_kvectors=6)
        for _ in range(80):
            pset = ParticleSet.random("e", cell, 24, rng)
            sk.accumulate(pset.positions)
        k, s = sk.estimate()
        assert np.allclose(s, 1.0, atol=0.5)
        assert (np.diff(k) >= -1e-12).all()  # sorted by |k|

    def test_crystal_shows_bragg_peak(self):
        # Particles on a sublattice commensurate with k produce S(k) ~ N.
        cell = Cell.cubic(4.0)
        pts = np.array(
            [[i, j, k] for i in range(4) for j in range(4) for k in range(4)],
            dtype=float,
        )  # spacing 1.0 => Bragg at |k| = 2 pi (Miller index 4 of the cell)
        sk = StructureFactor(cell, n_kvectors=150)
        sk.accumulate(pts)
        k, s = sk.estimate()
        bragg = s[np.isclose(k, 2 * np.pi, atol=1e-9)]
        assert bragg.size and (bragg > 30).all()  # ~N = 64
        # Every non-Bragg commensurate k interferes destructively.
        assert np.max(s[~np.isclose(k, 2 * np.pi, atol=1e-9)]) < 1e-9

    def test_particle_count_must_stay_fixed(self, rng):
        cell = Cell.cubic(4.0)
        sk = StructureFactor(cell, 4)
        sk.accumulate(rng.random((8, 3)))
        with pytest.raises(ValueError):
            sk.accumulate(rng.random((9, 3)))

    def test_estimate_requires_samples(self):
        with pytest.raises(RuntimeError):
            StructureFactor(Cell.cubic(4.0), 4).estimate()

    def test_translation_invariance(self, rng):
        cell = Cell.cubic(5.0)
        pts = cell.frac_to_cart(rng.random((16, 3)))
        a = StructureFactor(cell, 8)
        b = StructureFactor(cell, 8)
        a.accumulate(pts)
        b.accumulate(pts + cell.lattice[0] * 0.37 + 1.23)
        _, sa = a.estimate()
        _, sb = b.estimate()
        np.testing.assert_allclose(sa, sb, atol=1e-9)
