"""Unit tests for the Dirac determinant: ratios, SM updates, stability."""

import numpy as np
import pytest

from repro.qmc import DiracDeterminant


def random_matrix(rng, n=8):
    # Diagonally-dominated => comfortably non-singular.
    return rng.standard_normal((n, n)) + 3.0 * np.eye(n)


@pytest.fixture
def det(rng):
    return DiracDeterminant(random_matrix(rng))


class TestConstruction:
    def test_logdet_matches_numpy(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        sign, logdet = np.linalg.slogdet(A)
        assert np.isclose(det.log_det, logdet)
        assert det.sign == sign

    def test_inverse_correct(self, det):
        assert det.update_error < 1e-12

    def test_rejects_singular(self):
        with pytest.raises(ValueError, match="singular"):
            DiracDeterminant(np.ones((4, 4)))

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            DiracDeterminant(np.zeros((3, 4)))


class TestRatio:
    def test_ratio_matches_direct_determinants(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        u = rng.standard_normal(8)
        r = det.ratio(2, u)
        A2 = A.copy()
        A2[2] = u
        expected = np.linalg.det(A2) / np.linalg.det(A)
        assert np.isclose(r, expected)

    def test_identity_row_gives_unit_ratio(self, det):
        r = det.ratio(3, det.A[3].copy())
        assert np.isclose(r, 1.0)

    def test_ratio_rejects_bad_shape(self, det):
        with pytest.raises(ValueError):
            det.ratio(0, np.zeros(7))

    def test_ratio_grad_matches_definition(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        u = rng.standard_normal(8)
        du = rng.standard_normal((3, 8))
        r, g = det.ratio_grad(1, u, du)
        expected = (du @ det.Ainv[:, 1]) / r
        np.testing.assert_allclose(g, expected)


class TestShermanMorrison:
    def test_accept_updates_inverse_exactly(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        u = rng.standard_normal(8)
        det.ratio(4, u)
        det.accept_move(4)
        A2 = A.copy()
        A2[4] = u
        np.testing.assert_allclose(det.Ainv, np.linalg.inv(A2), atol=1e-10)
        np.testing.assert_allclose(det.A, A2)

    def test_logdet_tracks_updates(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        for e in (0, 3, 7, 3):
            u = rng.standard_normal(8) + 3.0 * np.eye(8)[e]
            det.ratio(e, u)
            det.accept_move(e)
        sign, logdet = np.linalg.slogdet(det.A)
        assert np.isclose(det.log_det, logdet, atol=1e-10)
        assert det.sign == sign

    def test_sign_flip_tracked(self, rng):
        A = np.eye(4)
        det = DiracDeterminant(A)
        u = np.array([-1.0, 0, 0, 0])
        r = det.ratio(0, u)
        assert r < 0
        det.accept_move(0)
        assert det.sign == -1.0

    def test_many_updates_stay_accurate(self, rng):
        A = random_matrix(rng, 12)
        det = DiracDeterminant(A)
        for _ in range(200):
            e = rng.integers(0, 12)
            u = rng.standard_normal(12) + 3.0 * np.eye(12)[e]
            if abs(det.ratio(e, u)) > 0.05:
                det.accept_move(e)
            else:
                det.reject_move(e)
        assert det.update_error < 1e-6  # bounded drift after 200 updates

    def test_recompute_resets_drift(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        for _ in range(50):
            e = int(rng.integers(0, 8))
            det.ratio(e, rng.standard_normal(8) + 3.0 * np.eye(8)[e])
            det.accept_move(e)
        det.recompute()
        assert det.update_error < 1e-12
        assert det.n_updates_since_recompute == 0

    def test_reject_leaves_state(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        ainv = det.Ainv.copy()
        det.ratio(1, rng.standard_normal(8))
        det.reject_move(1)
        np.testing.assert_array_equal(det.Ainv, ainv)

    def test_accept_without_ratio_rejected(self, det):
        with pytest.raises(RuntimeError):
            det.accept_move(0)

    def test_accept_wrong_row_rejected(self, det, rng):
        det.ratio(1, rng.standard_normal(8))
        with pytest.raises(RuntimeError):
            det.accept_move(2)
        det.reject_move(1)

    def test_zero_ratio_accept_rejected(self):
        det = DiracDeterminant(np.eye(4))
        det.ratio(0, np.zeros(4))
        with pytest.raises(ZeroDivisionError):
            det.accept_move(0)


class TestGradLap:
    def test_grad_lap_contraction(self, rng):
        A = random_matrix(rng)
        det = DiracDeterminant(A)
        du = rng.standard_normal((3, 8))
        d2u = rng.standard_normal(8)
        g, l = det.grad_lap(5, du, d2u)
        np.testing.assert_allclose(g, du @ det.Ainv[:, 5])
        assert np.isclose(l, d2u @ det.Ainv[:, 5])
