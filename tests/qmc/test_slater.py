"""Unit tests for SplineOrbitalSet (coordinate chain rule) and SlaterDet."""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, graphite_unit_cell
from repro.qmc import ParticleSet, SlaterDet, SplineOrbitalSet


@pytest.fixture(
    params=[Cell.cubic(5.0), graphite_unit_cell()], ids=["cubic", "graphite"]
)
def spos(request):
    cell = request.param
    pw = PlaneWaveOrbitalSet(cell, 6)
    return SplineOrbitalSet.from_orbital_functions(
        cell, pw, (16, 16, 16), engine="fused", dtype=np.float64
    ), pw, cell


class TestSplineOrbitalSet:
    def test_values_match_analytic(self, spos, rng):
        s, pw, cell = spos
        pts = cell.frac_to_cart(rng.random((5, 3)))
        exact = pw.evaluate(pts)
        for i, p in enumerate(pts):
            np.testing.assert_allclose(s.values(p), exact[i], atol=2e-2)

    def test_vgl_gradients_match_analytic(self, spos, rng):
        s, pw, cell = spos
        p = cell.frac_to_cart(rng.random(3))
        v, g, lap = s.vgl(p)
        ev, eg, elap = pw.evaluate_vgl(p[np.newaxis])
        np.testing.assert_allclose(v, ev[0], atol=2e-2)
        np.testing.assert_allclose(g, eg[0], atol=5e-2)
        np.testing.assert_allclose(lap, elap[0], atol=0.5)

    def test_vgl_lap_equals_vgh_trace(self, spos, rng):
        s, _, cell = spos
        p = cell.frac_to_cart(rng.random(3))
        _, _, lap = s.vgl(p)
        _, _, h = s.vgh(p)
        np.testing.assert_allclose(lap, h[0, 0] + h[1, 1] + h[2, 2], atol=1e-8)

    def test_vgh_hessian_symmetric(self, spos, rng):
        s, _, cell = spos
        p = cell.frac_to_cart(rng.random(3))
        _, _, h = s.vgh(p)
        np.testing.assert_allclose(h, h.transpose(1, 0, 2), atol=1e-10)

    def test_gradient_finite_difference(self, spos, rng):
        # The decisive chain-rule test: Cartesian FD of the spline itself.
        s, _, cell = spos
        p = cell.frac_to_cart(rng.random(3))
        _, g, _ = s.vgl(p)
        eps = 1e-5
        for d in range(3):
            dp = np.zeros(3)
            dp[d] = eps
            fd = (s.values(p + dp) - s.values(p - dp)) / (2 * eps)
            np.testing.assert_allclose(g[d], fd, atol=1e-4)

    def test_requires_fractional_grid(self):
        from repro.core import Grid3D, BsplineFused

        cell = Cell.cubic(2.0)
        grid = Grid3D(8, 8, 8, (2.0, 2.0, 2.0))
        eng = BsplineFused(grid, np.zeros((8, 8, 8, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="fractional"):
            SplineOrbitalSet(cell, grid, eng)

    def test_rejects_aosoa_engine(self):
        cell = Cell.cubic(2.0)
        pw = PlaneWaveOrbitalSet(cell, 2)
        with pytest.raises(ValueError, match="aosoa"):
            SplineOrbitalSet.from_orbital_functions(cell, pw, (8, 8, 8), engine="aosoa")

    def test_rejects_unknown_engine(self):
        cell = Cell.cubic(2.0)
        pw = PlaneWaveOrbitalSet(cell, 2)
        with pytest.raises(ValueError, match="unknown engine"):
            SplineOrbitalSet.from_orbital_functions(cell, pw, (8, 8, 8), engine="simd")


class TestSlaterDet:
    @pytest.fixture
    def slater(self, rng):
        cell = Cell.cubic(5.0)
        pw = PlaneWaveOrbitalSet(cell, 4)
        spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
        )
        electrons = ParticleSet.random("e", cell, 8, rng)
        return SlaterDet(spos, electrons), electrons, cell

    def test_requires_2n_electrons(self, rng):
        cell = Cell.cubic(5.0)
        pw = PlaneWaveOrbitalSet(cell, 4)
        spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
        )
        electrons = ParticleSet.random("e", cell, 6, rng)
        with pytest.raises(ValueError, match="2N"):
            SlaterDet(spos, electrons)

    def test_ratio_matches_log_value_change(self, slater, rng):
        det, electrons, cell = slater
        lv0 = det.log_value
        e = 5  # a spin-down electron
        new_pos = electrons[e] + rng.standard_normal(3) * 0.2
        r, _ = det.ratio_grad(e, new_pos)
        det.accept_move(e)
        electrons.propose(e, new_pos)
        electrons.accept()
        assert np.isclose(np.log(abs(r)), det.log_value - lv0, atol=1e-10)

    def test_up_move_leaves_down_det(self, slater, rng):
        det, electrons, _ = slater
        down_logdet = det.dets[1].log_det
        r, _ = det.ratio_grad(0, electrons[0] + 0.1)
        det.accept_move(0)
        assert det.dets[1].log_det == down_logdet

    def test_reject_restores(self, slater, rng):
        det, electrons, _ = slater
        lv0 = det.log_value
        det.ratio_grad(2, electrons[2] + 0.3)
        det.reject_move(2)
        assert det.log_value == lv0

    def test_recompute_consistent_after_updates(self, slater, rng):
        det, electrons, _ = slater
        for e in (0, 3, 6):
            new_pos = electrons[e] + rng.standard_normal(3) * 0.1
            r, _ = det.ratio_grad(e, new_pos)
            if abs(r) > 1e-3:
                det.accept_move(e)
                electrons.propose(e, new_pos)
                electrons.accept()
            else:
                det.reject_move(e)
        lv_updates = det.log_value
        det.recompute()
        assert np.isclose(det.log_value, lv_updates, atol=1e-8)

    def test_grad_lap_finite_difference(self, slater, rng):
        det, electrons, _ = slater
        e = 1
        g, _ = det.grad_lap(e)
        eps = 1e-5
        fd = np.zeros(3)
        for d in range(3):
            vals = []
            for s in (+1, -1):
                p = electrons[e].copy()
                p[d] += s * eps
                r, _ = det.ratio_grad(e, p)
                det.reject_move(e)
                vals.append(np.log(abs(r)))
            fd[d] = (vals[0] - vals[1]) / (2 * eps)
        # grad log det == (grad D)/D at the committed position.
        np.testing.assert_allclose(g, fd, atol=1e-5)

    def test_accept_without_stage_rejected(self, slater):
        det, _, _ = slater
        with pytest.raises(RuntimeError):
            det.accept_move(0)


class TestDelayedSlaterDet:
    """SlaterDet(delay=k) must track the Sherman-Morrison pair move for move."""

    @pytest.fixture
    def paired(self, rng):
        cell = Cell.cubic(5.0)
        pw = PlaneWaveOrbitalSet(cell, 4)
        spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
        )
        positions = ParticleSet.random("e", cell, 8, rng).positions
        e_dirac = ParticleSet("e", cell, positions.copy())
        e_delay = ParticleSet("e", cell, positions.copy())
        return (
            SlaterDet(spos, e_dirac),
            e_dirac,
            SlaterDet(spos, e_delay, delay=3),
            e_delay,
        )

    def test_delay_selects_delayed_determinants(self, paired):
        from repro.qmc.delayed import DelayedDeterminant
        from repro.qmc.determinant import DiracDeterminant

        dirac, _, delayed, _ = paired
        assert all(isinstance(d, DiracDeterminant) for d in dirac.dets)
        assert all(isinstance(d, DelayedDeterminant) for d in delayed.dets)
        assert delayed.delay == 3

    def test_delay_one_requires_positive(self, rng):
        cell = Cell.cubic(5.0)
        pw = PlaneWaveOrbitalSet(cell, 4)
        spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
        )
        electrons = ParticleSet.random("e", cell, 8, rng)
        with pytest.raises(ValueError):
            SlaterDet(spos, electrons, delay=0)

    def test_move_for_move_parity(self, paired, rng):
        # Same spline orbitals, same proposals: ratios, gradients,
        # Laplacians, and log values agree to rounding at every move —
        # allclose, not bitwise, because the effective-column algebra
        # orders its flops differently.
        dirac, e_dirac, delayed, e_delay = paired
        moves = rng.integers(0, 8, size=12)
        steps = rng.standard_normal((12, 3)) * 0.2
        accept = rng.random(12) < 0.6
        for k, (e, dx, acc) in enumerate(zip(moves, steps, accept)):
            e = int(e)
            new_pos = e_dirac[e] + dx
            r0, g0 = dirac.ratio_grad(e, new_pos)
            r1, g1 = delayed.ratio_grad(e, new_pos)
            assert np.isclose(r1, r0, atol=1e-9), f"move {k}"
            np.testing.assert_allclose(g1, g0, atol=1e-9)
            if acc and abs(r0) > 1e-3:
                dirac.accept_move(e)
                delayed.accept_move(e)
                for es, pos in ((e_dirac, new_pos), (e_delay, new_pos)):
                    es.propose(e, pos)
                    es.accept()
            else:
                dirac.reject_move(e)
                delayed.reject_move(e)
            assert np.isclose(delayed.log_value, dirac.log_value, atol=1e-8)
            gl0 = dirac.grad_lap(e)
            gl1 = delayed.grad_lap(e)
            np.testing.assert_allclose(gl1[0], gl0[0], atol=1e-8)
            assert np.isclose(gl1[1], gl0[1], atol=1e-7)

    def test_recompute_parity_after_updates(self, paired, rng):
        dirac, e_dirac, delayed, e_delay = paired
        for e in (1, 4, 7):
            new_pos = e_dirac[e] + rng.standard_normal(3) * 0.1
            r, _ = dirac.ratio_grad(e, new_pos)
            delayed.ratio_grad(e, new_pos)
            if abs(r) > 1e-3:
                dirac.accept_move(e)
                delayed.accept_move(e)
                for es in (e_dirac, e_delay):
                    es.propose(e, new_pos)
                    es.accept()
            else:
                dirac.reject_move(e)
                delayed.reject_move(e)
        dirac.recompute()
        delayed.recompute()
        assert np.isclose(delayed.log_value, dirac.log_value, atol=1e-8)
        assert delayed.sign == dirac.sign
