"""Test package."""
