"""Unit tests for local-energy estimators."""

import numpy as np
import pytest

from repro.lattice import Cell, minimal_image_distances
from repro.qmc import (
    DistanceTableAA,
    DistanceTableAB,
    LocalEnergy,
    ParticleSet,
    coulomb_ee,
    coulomb_ei,
    coulomb_ii,
    kinetic_energy,
)
from tests.qmc.test_wavefunction import build_wf


class TestCoulomb:
    def test_ee_two_particles(self):
        cell = Cell.cubic(10.0)
        pset = ParticleSet("e", cell, np.array([[0.0, 0, 0], [2.0, 0, 0]]))
        table = DistanceTableAA(pset)
        assert np.isclose(coulomb_ee(table), 0.5)

    def test_ee_matches_brute_force(self, rng):
        cell = Cell.cubic(8.0)
        pset = ParticleSet.random("e", cell, 6, rng)
        table = DistanceTableAA(pset)
        d = minimal_image_distances(cell, pset.positions, pset.positions)
        iu = np.triu_indices(6, k=1)
        assert np.isclose(coulomb_ee(table), np.sum(1.0 / d[iu]))

    def test_ei_sign_and_charge(self, rng):
        cell = Cell.cubic(8.0)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
        els = ParticleSet.random("e", cell, 4, rng)
        table = DistanceTableAB(ions, els)
        v1 = coulomb_ei(table, ion_charge=1.0)
        v4 = coulomb_ei(table, ion_charge=4.0)
        assert v1 < 0
        assert np.isclose(v4, 4 * v1)

    def test_ii_constant(self):
        cell = Cell.cubic(10.0)
        ions = np.array([[0.0, 0, 0], [5.0, 0, 0]])
        assert np.isclose(coulomb_ii(ions, cell, ion_charge=2.0), 4.0 / 5.0)


class TestKinetic:
    def test_kinetic_of_smooth_wavefunction_is_finite(self, rng):
        wf = build_wf(rng)
        ke = kinetic_energy(wf)
        assert np.isfinite(ke)

    def test_kinetic_invariant_under_rigid_translation(self, rng):
        # Translating all electrons by a lattice vector leaves E_kin.
        wf = build_wf(rng)
        ke0 = kinetic_energy(wf)
        shift = wf.electrons.cell.lattice[0]
        wf.electrons.load_positions(wf.electrons.positions + shift)
        wf.recompute()
        ke1 = kinetic_energy(wf)
        assert np.isclose(ke0, ke1, atol=1e-6)

    def test_local_energy_total(self, rng):
        wf = build_wf(rng)
        est = LocalEnergy(wf, ion_charge=4.0)
        assert np.isclose(est.total(), est.kinetic() + est.potential())

    def test_ii_constant_cached(self, rng):
        wf = build_wf(rng)
        est = LocalEnergy(wf)
        assert np.isclose(
            est.e_ii, coulomb_ii(wf.ions.positions, wf.ions.cell, 4.0)
        )
