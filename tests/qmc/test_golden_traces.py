"""Golden-trace regression tests for the QMC drivers.

Short, fully seeded VMC and DMC runs are compared against committed
reference traces (``tests/qmc/golden/``).  Any change to the random-walk
logic, branching arithmetic, RNG stream handling, or guard policies shows
up here as a diff against the golden file — the cheap canary for "did
this refactor change the physics?".

Regenerate after an *intentional* change with::

    PYTHONPATH=src python tests/qmc/test_golden_traces.py

and review the diff of the golden JSONs like any other code change.
"""

import json
from pathlib import Path

import numpy as np

from repro.qmc import WalkerRngPool, run_vmc
from repro.qmc.dmc import build_dmc_ensemble, run_dmc
from tests.qmc.test_wavefunction import build_wf

GOLDEN_DIR = Path(__file__).parent / "golden"

# Energies are compared loosely enough to survive BLAS/libm differences
# across machines, tightly enough to catch any algorithmic change.
RTOL = 1e-7


def run_vmc_case():
    rng = np.random.default_rng(20170401)
    wf = build_wf(rng, n_orb=2)
    return run_vmc(wf, rng, n_steps=12, n_warmup=3, tau=0.3)


def run_dmc_case():
    pool = WalkerRngPool(2017)
    walkers = build_dmc_ensemble(pool, 3, n_orbitals=2, grid_shape=(8, 8, 8))
    return run_dmc(walkers, pool, n_generations=6, tau=0.02)


def vmc_trace():
    r = run_vmc_case()
    return {
        "energies": [float(e) for e in r.energies],
        "acceptance": float(r.acceptance),
        "energy_mean": float(r.energy_mean),
    }


def dmc_trace():
    r = run_dmc_case()
    return {
        "energy_trace": [float(e) for e in r.energy_trace],
        "population_trace": [int(p) for p in r.population_trace],
        "e_trial_trace": [float(e) for e in r.e_trial_trace],
        "acceptance": float(r.acceptance),
    }


def load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text())


class TestVmcGolden:
    def test_energy_trace_matches(self):
        golden = load_golden("vmc_seed20170401.json")
        got = vmc_trace()
        assert len(got["energies"]) == len(golden["energies"])
        np.testing.assert_allclose(got["energies"], golden["energies"], rtol=RTOL)
        np.testing.assert_allclose(
            got["energy_mean"], golden["energy_mean"], rtol=RTOL
        )

    def test_acceptance_matches(self):
        golden = load_golden("vmc_seed20170401.json")
        # Acceptance is a count ratio: robust to last-ulp float noise,
        # so it must match exactly.
        assert vmc_trace()["acceptance"] == golden["acceptance"]


class TestDmcGolden:
    def test_energy_and_trial_traces_match(self):
        golden = load_golden("dmc_seed2017.json")
        got = dmc_trace()
        np.testing.assert_allclose(
            got["energy_trace"], golden["energy_trace"], rtol=RTOL
        )
        np.testing.assert_allclose(
            got["e_trial_trace"], golden["e_trial_trace"], rtol=RTOL
        )

    def test_population_trace_matches_exactly(self):
        golden = load_golden("dmc_seed2017.json")
        assert dmc_trace()["population_trace"] == golden["population_trace"]


def regenerate():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, trace in (
        ("vmc_seed20170401.json", vmc_trace()),
        ("dmc_seed2017.json", dmc_trace()),
    ):
        path = GOLDEN_DIR / name
        path.write_text(json.dumps(trace, indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()
