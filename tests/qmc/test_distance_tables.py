"""Unit tests for AoS/SoA distance tables with incremental updates."""

import numpy as np
import pytest

from repro.lattice import Cell, graphite_unit_cell, minimal_image_distances
from repro.qmc import DistanceTableAA, DistanceTableAB, ParticleSet


@pytest.fixture(params=["aos", "soa"])
def layout(request):
    return request.param


@pytest.fixture(params=[Cell.cubic(5.0), graphite_unit_cell()], ids=["cubic", "graphite"])
def cell(request):
    return request.param


def make_sets(cell, rng, n_src=4, n_tgt=6):
    src = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((n_src, 3))))
    tgt = ParticleSet.random("e", cell, n_tgt, rng)
    return src, tgt


class TestAB:
    def test_build_matches_oracle(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        oracle = minimal_image_distances(cell, tgt.positions, src.positions)
        np.testing.assert_allclose(table.distances, oracle, atol=1e-10)

    def test_row_view(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        np.testing.assert_array_equal(table.row(2), table.distances[2])

    def test_displacement_shapes(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        expected = (6, 4, 3) if layout == "aos" else (6, 3, 4)
        assert table.displacements.shape == expected

    def test_displacement_norms_match_distances(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        for i in range(6):
            d = table.disp_row(i)
            norms = (
                np.linalg.norm(d, axis=1) if layout == "aos" else np.linalg.norm(d, axis=0)
            )
            np.testing.assert_allclose(norms, table.row(i), atol=1e-10)

    def test_propose_accept(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        new_pos = cell.frac_to_cart(rng.random(3))
        temp = table.propose_row(3, new_pos)
        oracle = minimal_image_distances(cell, new_pos[np.newaxis], src.positions)[0]
        np.testing.assert_allclose(temp, oracle, atol=1e-10)
        table.accept_move(3)
        np.testing.assert_allclose(table.row(3), oracle, atol=1e-10)

    def test_propose_reject_leaves_table(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        before = table.distances.copy()
        table.propose_row(1, cell.frac_to_cart(rng.random(3)))
        table.reject_move(1)
        np.testing.assert_array_equal(table.distances, before)

    def test_accept_wrong_index_rejected(self, cell, layout, rng):
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        table.propose_row(1, tgt[1])
        with pytest.raises(RuntimeError):
            table.accept_move(2)
        table.reject_move(1)

    def test_layout_validation(self, rng):
        src, tgt = make_sets(Cell.cubic(3.0), rng)
        with pytest.raises(ValueError, match="layout"):
            DistanceTableAB(src, tgt, "soaos")

    def test_requires_shared_cell(self, rng):
        a = ParticleSet.random("a", Cell.cubic(3.0), 2, rng)
        b = ParticleSet.random("b", Cell.cubic(3.0), 2, rng)
        with pytest.raises(ValueError, match="cell"):
            DistanceTableAB(a, b)

    def test_rebuild_picks_up_moved_sources(self, cell, layout, rng):
        # Sources are fixed between single-particle moves, but a bulk
        # source update (checkpoint restore loading ion positions into an
        # existing wavefunction) followed by rebuild() must not reuse the
        # construction-time snapshot.
        src, tgt = make_sets(cell, rng)
        table = DistanceTableAB(src, tgt, layout)
        new_src = cell.frac_to_cart(rng.random((4, 3)))
        src.load_positions(new_src, wrap=False)
        table.rebuild()
        oracle = minimal_image_distances(cell, tgt.positions, src.positions)
        np.testing.assert_allclose(table.distances, oracle, atol=1e-10)


class TestAA:
    def test_build_matches_oracle(self, cell, layout, rng):
        pset = ParticleSet.random("e", cell, 5, rng)
        table = DistanceTableAA(pset, layout)
        oracle = minimal_image_distances(cell, pset.positions, pset.positions)
        np.fill_diagonal(oracle, 0.0)
        np.testing.assert_allclose(table.distances, oracle, atol=1e-10)

    def test_symmetric(self, cell, layout, rng):
        pset = ParticleSet.random("e", cell, 5, rng)
        table = DistanceTableAA(pset, layout)
        np.testing.assert_allclose(table.distances, table.distances.T, atol=1e-12)

    def test_accept_updates_row_and_column(self, cell, layout, rng):
        pset = ParticleSet.random("e", cell, 5, rng)
        table = DistanceTableAA(pset, layout)
        new_pos = cell.frac_to_cart(rng.random(3))
        table.propose_row(2, new_pos)
        table.accept_move(2)
        pset.propose(2, new_pos)
        pset.accept()
        oracle = minimal_image_distances(cell, pset.positions, pset.positions)
        np.fill_diagonal(oracle, 0.0)
        np.testing.assert_allclose(table.distances, oracle, atol=1e-10)
        np.testing.assert_allclose(table.distances, table.distances.T, atol=1e-12)

    def test_displacement_antisymmetry_after_accept(self, cell, layout, rng):
        pset = ParticleSet.random("e", cell, 4, rng)
        table = DistanceTableAA(pset, layout)
        new_pos = cell.frac_to_cart(rng.random(3))
        table.propose_row(1, new_pos)
        table.accept_move(1)
        for j in range(4):
            if layout == "aos":
                dij = table.displacements[1, j]
                dji = table.displacements[j, 1]
            else:
                dij = table.displacements[1, :, j]
                dji = table.displacements[j, :, 1]
            np.testing.assert_allclose(dij, -dji, atol=1e-10)

    def test_propose_self_distance_zero(self, cell, layout, rng):
        pset = ParticleSet.random("e", cell, 4, rng)
        table = DistanceTableAA(pset, layout)
        temp = table.propose_row(2, cell.frac_to_cart(rng.random(3)))
        assert temp[2] == 0.0
        table.reject_move(2)

    def test_aos_and_soa_agree(self, cell, rng):
        pset = ParticleSet.random("e", cell, 6, rng)
        t_aos = DistanceTableAA(pset, "aos")
        t_soa = DistanceTableAA(pset, "soa")
        np.testing.assert_allclose(t_aos.distances, t_soa.distances, atol=1e-12)
