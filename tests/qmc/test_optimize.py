"""Tests for the variational Jastrow optimizer."""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, wigner_seitz_radius
from repro.qmc import (
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    make_polynomial_radial,
)
from repro.qmc.optimize import optimize_jastrow_strengths


@pytest.fixture(scope="module")
def factory():
    """A wavefunction factory over shared orbitals (built once)."""
    cell = Cell.cubic(6.0)
    pw = PlaneWaveOrbitalSet(cell, 4)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
    )
    rcut = 0.9 * wigner_seitz_radius(cell)

    def build(a1, a2, rng):
        ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, 8, rng)
        j1 = make_polynomial_radial(a1, rcut) if a1 > 0 else None
        j2 = make_polynomial_radial(a2, rcut) if a2 > 0 else None
        return SlaterJastrow(electrons, ions, spos, j1, j2)

    return build


class TestOptimizer:
    def test_scan_covers_grid(self, factory):
        res = optimize_jastrow_strengths(
            factory,
            j1_strengths=(0.0, 0.4),
            j2_strengths=(0.0, 0.6),
            n_steps=4,
            n_warmup=2,
        )
        assert len(res.scan) == 4
        assert res.best_params in res.scan
        assert res.best_energy == min(res.scan.values())
        assert res.best_error >= 0.0

    def test_best_is_at_least_as_good_as_bare_slater(self, factory):
        # The variational principle, demonstrated: the winner of the scan
        # cannot be worse than the (0, 0) bare-Slater candidate it
        # contains.
        res = optimize_jastrow_strengths(
            factory,
            j1_strengths=(0.0, 0.4),
            j2_strengths=(0.0, 0.6),
            n_steps=6,
            n_warmup=3,
        )
        assert res.best_energy <= res.scan[(0.0, 0.0)]
        assert res.improvement_over((0.0, 0.0)) >= 0.0

    def test_deterministic_given_seed(self, factory):
        kwargs = dict(
            j1_strengths=(0.0, 0.4),
            j2_strengths=(0.4,),
            n_steps=3,
            n_warmup=1,
            seed=7,
        )
        a = optimize_jastrow_strengths(factory, **kwargs)
        b = optimize_jastrow_strengths(factory, **kwargs)
        assert a.scan == b.scan
        assert a.best_params == b.best_params
