"""Integration tests for the full Slater-Jastrow wavefunction."""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, wigner_seitz_radius
from repro.qmc import (
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    make_polynomial_radial,
)


def build_wf(rng, layout="soa", with_jastrow=True, n_orb=4):
    cell = Cell.cubic(6.0)
    pw = PlaneWaveOrbitalSet(cell, n_orb)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell, pw, (14, 14, 14), engine="fused", dtype=np.float64
    )
    ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
    electrons = ParticleSet.random("e", cell, 2 * n_orb, rng)
    rcut = 0.9 * wigner_seitz_radius(cell)
    j1 = make_polynomial_radial(0.4, rcut) if with_jastrow else None
    j2 = make_polynomial_radial(0.6, rcut) if with_jastrow else None
    return SlaterJastrow(electrons, ions, spos, j1, j2, layout=layout)


@pytest.fixture
def wf(rng):
    return build_wf(rng)


class TestRatios:
    def test_ratio_matches_log_value_change(self, wf, rng):
        lv0 = wf.log_value
        e = 3
        new_pos = wf.electrons[e] + rng.standard_normal(3) * 0.3
        r, _ = wf.ratio_grad(e, new_pos)
        wf.accept_move(e)
        assert np.isclose(np.log(abs(r)), wf.log_value - lv0, atol=1e-9)

    def test_recompute_agrees_after_many_moves(self, wf, rng):
        for _ in range(20):
            e = int(rng.integers(0, len(wf.electrons)))
            new_pos = wf.electrons[e] + rng.standard_normal(3) * 0.2
            r, _ = wf.ratio_grad(e, new_pos)
            if abs(r) > 0.1 and rng.random() < 0.7:
                wf.accept_move(e)
            else:
                wf.reject_move(e)
        lv = wf.log_value
        wf.recompute()
        assert np.isclose(wf.log_value, lv, atol=1e-7)

    def test_reject_is_a_noop(self, wf, rng):
        lv0 = wf.log_value
        pos0 = wf.electrons.positions
        wf.ratio_grad(1, wf.electrons[1] + 0.5)
        wf.reject_move(1)
        assert wf.log_value == lv0
        np.testing.assert_array_equal(wf.electrons.positions, pos0)

    def test_double_stage_rejected(self, wf):
        wf.ratio_grad(0, wf.electrons[0] + 0.1)
        with pytest.raises(RuntimeError, match="already staged"):
            wf.ratio_grad(1, wf.electrons[1])
        wf.reject_move(0)

    def test_ratio_without_jastrow(self, rng):
        wf = build_wf(rng, with_jastrow=False)
        lv0 = wf.log_value
        r, _ = wf.ratio_grad(2, wf.electrons[2] + 0.2)
        wf.accept_move(2)
        assert np.isclose(np.log(abs(r)), wf.log_value - lv0, atol=1e-9)

    def test_aos_and_soa_layouts_agree(self, rng):
        r1 = np.random.default_rng(77)
        r2 = np.random.default_rng(77)
        wf_aos = build_wf(r1, layout="aos")
        wf_soa = build_wf(r2, layout="soa")
        assert np.isclose(wf_aos.log_value, wf_soa.log_value, atol=1e-9)
        e = 2
        step = np.array([0.21, -0.1, 0.3])
        ra, ga = wf_aos.ratio_grad(e, wf_aos.electrons[e] + step)
        rs, gs = wf_soa.ratio_grad(e, wf_soa.electrons[e] + step)
        assert np.isclose(ra, rs, atol=1e-9)
        np.testing.assert_allclose(ga, gs, atol=1e-9)


class TestDerivatives:
    def test_grad_matches_finite_difference(self, wf):
        e = 4
        g = wf.grad(e)
        eps = 1e-5
        fd = np.zeros(3)
        for d in range(3):
            vals = []
            for s in (+1, -1):
                p = wf.electrons[e].copy()
                p[d] += s * eps
                r, _ = wf.ratio_grad(e, p)
                wf.reject_move(e)
                vals.append(np.log(abs(r)))
            fd[d] = (vals[0] - vals[1]) / (2 * eps)
        np.testing.assert_allclose(g, fd, atol=1e-4)

    def test_trial_grad_continuous_with_committed_grad(self, wf):
        # ratio_grad at the current position must return the committed grad.
        e = 0
        g_committed = wf.grad(e)
        _, g_trial = wf.ratio_grad(e, wf.electrons[e])
        wf.reject_move(e)
        np.testing.assert_allclose(g_trial, g_committed, atol=1e-8)

    def test_grad_lap_logpsi_finite_difference(self, wf):
        e = 2
        _, lap_log = wf.grad_lap_logpsi(e)
        eps = 1e-4

        def logpsi_delta(dp):
            r, _ = wf.ratio_grad(e, wf.electrons[e] + dp)
            wf.reject_move(e)
            return np.log(abs(r))

        fd = 0.0
        for d in range(3):
            dp = np.zeros(3)
            dp[d] = eps
            fd += (logpsi_delta(dp) + logpsi_delta(-dp)) / eps**2
        assert np.isclose(lap_log, fd, atol=5e-2 * max(1.0, abs(fd)))
