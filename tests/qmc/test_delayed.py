"""Tests for rank-k delayed determinant updates vs Sherman-Morrison."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qmc import DiracDeterminant
from repro.qmc.delayed import DelayedDeterminant


def random_matrix(seed, n=8):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + 3.0 * np.eye(n)


class TestConstruction:
    def test_matches_dirac_initially(self, rng):
        A = random_matrix(1)
        d = DelayedDeterminant(A, delay=4)
        s = DiracDeterminant(A)
        assert np.isclose(d.log_det, s.log_det)
        np.testing.assert_allclose(d.effective_inverse(), s.Ainv, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            DelayedDeterminant(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            DelayedDeterminant(np.eye(4), delay=0)
        bad = np.eye(4)
        bad[0, 0] = np.inf
        with pytest.raises(ValueError):
            DelayedDeterminant(bad)
        with pytest.raises(ValueError, match="singular"):
            DelayedDeterminant(np.ones((4, 4)))


class TestEquivalenceWithShermanMorrison:
    def run_sequence(self, seed, n_moves, delay, n=8):
        """Drive both implementations with identical move sequences."""
        A = random_matrix(seed, n)
        delayed = DelayedDeterminant(A.copy(), delay=delay)
        dirac = DiracDeterminant(A.copy())
        rng = np.random.default_rng(seed + 99)
        for _ in range(n_moves):
            e = int(rng.integers(0, n))
            u = rng.standard_normal(n) + 3.0 * np.eye(n)[e]
            r_d = delayed.ratio(e, u)
            r_s = dirac.ratio(e, u)
            assert np.isclose(r_d, r_s, atol=1e-9), (r_d, r_s)
            if abs(r_s) > 0.05 and rng.random() < 0.7:
                delayed.accept_move(e)
                dirac.accept_move(e)
            else:
                delayed.reject_move(e)
                dirac.reject_move(e)
        return delayed, dirac

    @pytest.mark.parametrize("delay", [1, 2, 4, 8, 100])
    def test_ratios_and_state_match(self, delay):
        delayed, dirac = self.run_sequence(seed=5, n_moves=40, delay=delay)
        assert np.isclose(delayed.log_det, dirac.log_det, atol=1e-8)
        assert delayed.sign == dirac.sign
        np.testing.assert_allclose(delayed.A, dirac.A, atol=1e-12)
        np.testing.assert_allclose(
            delayed.effective_inverse(), dirac.Ainv, atol=1e-7
        )

    def test_repeated_row_updates_within_window(self):
        """The tricky case: the same electron accepted twice before a
        flush — the delta must chain off the in-window row, not A0."""
        A = random_matrix(7, 6)
        delayed = DelayedDeterminant(A.copy(), delay=10)
        dirac = DiracDeterminant(A.copy())
        rng = np.random.default_rng(8)
        for _ in range(3):  # three consecutive updates of row 2
            u = rng.standard_normal(6) + 3.0 * np.eye(6)[2]
            r_d = delayed.ratio(2, u)
            r_s = dirac.ratio(2, u)
            assert np.isclose(r_d, r_s, atol=1e-9)
            delayed.accept_move(2)
            dirac.accept_move(2)
        assert delayed.pending == 3
        np.testing.assert_allclose(
            delayed.effective_inverse(), dirac.Ainv, atol=1e-8
        )
        delayed.flush()
        np.testing.assert_allclose(delayed.Ainv, dirac.Ainv, atol=1e-8)

    def test_flush_happens_at_delay(self):
        A = random_matrix(9, 6)
        delayed = DelayedDeterminant(A, delay=3)
        rng = np.random.default_rng(10)
        for i in range(3):
            e = i % 6
            u = rng.standard_normal(6) + 3.0 * np.eye(6)[e]
            delayed.ratio(e, u)
            delayed.accept_move(e)
        assert delayed.pending == 0  # auto-flushed on the 3rd accept
        assert delayed.n_flushes == 1

    def test_update_error_small_after_long_run(self):
        delayed, _ = self.run_sequence(seed=11, n_moves=120, delay=6)
        assert delayed.update_error < 1e-6

    def test_recompute_clears_window(self):
        A = random_matrix(12, 5)
        delayed = DelayedDeterminant(A, delay=10)
        u = np.ones(5) + np.eye(5)[1] * 3
        delayed.ratio(1, u)
        delayed.accept_move(1)
        assert delayed.pending == 1
        delayed.recompute()
        assert delayed.pending == 0
        assert delayed.update_error < 1e-10


class TestProtocol:
    def test_accept_without_ratio(self):
        d = DelayedDeterminant(np.eye(4) * 2)
        with pytest.raises(RuntimeError):
            d.accept_move(0)

    def test_reject_clears_stage(self):
        d = DelayedDeterminant(np.eye(4) * 2)
        d.ratio(0, np.ones(4))
        d.reject_move(0)
        with pytest.raises(RuntimeError):
            d.accept_move(0)

    def test_zero_ratio_rejected(self):
        d = DelayedDeterminant(np.eye(4))
        d.ratio(0, np.zeros(4))
        with pytest.raises(ZeroDivisionError):
            d.accept_move(0)

    def test_flush_on_empty_is_noop(self):
        d = DelayedDeterminant(np.eye(4) * 2)
        d.flush()
        assert d.n_flushes == 0


class TestPropertyBased:
    @given(
        seed=st.integers(0, 5000),
        delay=st.integers(1, 12),
        n_moves=st.integers(1, 25),
    )
    @settings(max_examples=25, deadline=None)
    def test_always_matches_direct_inverse(self, seed, delay, n_moves):
        n = 6
        A = random_matrix(seed, n)
        delayed = DelayedDeterminant(A.copy(), delay=delay)
        rng = np.random.default_rng(seed + 1)
        for _ in range(n_moves):
            e = int(rng.integers(0, n))
            u = rng.standard_normal(n) + 3.0 * np.eye(n)[e]
            r = delayed.ratio(e, u)
            if abs(r) > 0.05:
                delayed.accept_move(e)
            else:
                delayed.reject_move(e)
        np.testing.assert_allclose(
            delayed.effective_inverse(), np.linalg.inv(delayed.A), atol=1e-6
        )


class TestDerivativeParityWithDirac:
    """ratio_grad / grad_lap / recompute(matrix) vs the per-move baseline."""

    def drive(self, seed, delay, n_moves=10, n=8):
        A = random_matrix(seed, n)
        delayed = DelayedDeterminant(A.copy(), delay=delay)
        dirac = DiracDeterminant(A.copy())
        rng = np.random.default_rng(seed + 7)
        for _ in range(n_moves):
            e = int(rng.integers(0, n))
            phi = rng.standard_normal(n) + 3.0 * np.eye(n)[e]
            dphi = rng.standard_normal((3, n))
            r_d, g_d = delayed.ratio_grad(e, phi, dphi)
            r_s, g_s = dirac.ratio_grad(e, phi, dphi)
            assert np.isclose(r_d, r_s, atol=1e-9)
            np.testing.assert_allclose(g_d, g_s, atol=1e-9)
            if abs(r_s) > 0.05 and rng.random() < 0.7:
                delayed.accept_move(e)
                dirac.accept_move(e)
            else:
                delayed.reject_move(e)
                dirac.reject_move(e)
        return delayed, dirac, rng

    @pytest.mark.parametrize("delay", [1, 3, 8])
    def test_ratio_grad_matches_dirac(self, delay):
        self.drive(11, delay)

    @pytest.mark.parametrize("delay", [1, 3, 8])
    def test_grad_lap_matches_dirac(self, delay):
        delayed, dirac, rng = self.drive(23, delay)
        for e in range(delayed.n):
            dphi = rng.standard_normal((3, delayed.n))
            d2phi = rng.standard_normal(delayed.n)
            g_d, l_d = delayed.grad_lap(e, dphi, d2phi)
            g_s, l_s = dirac.grad_lap(e, dphi, d2phi)
            np.testing.assert_allclose(g_d, g_s, atol=1e-9)
            assert np.isclose(l_d, l_s, atol=1e-9)

    def test_ratio_grad_validates_row_shape(self):
        d = DelayedDeterminant(random_matrix(5), delay=2)
        with pytest.raises(ValueError, match="orbital row"):
            d.ratio_grad(0, np.zeros(3), np.zeros((3, 8)))

    def test_recompute_accepts_new_matrix(self):
        d = DelayedDeterminant(random_matrix(3), delay=4)
        B = random_matrix(4)
        d.recompute(B)
        fresh = DiracDeterminant(B.copy())
        assert np.isclose(d.log_det, fresh.log_det)
        np.testing.assert_allclose(d.effective_inverse(), fresh.Ainv, atol=1e-10)

    def test_recompute_rejects_bad_matrix(self):
        d = DelayedDeterminant(random_matrix(3), delay=4)
        with pytest.raises(ValueError):
            d.recompute(np.zeros((3, 4)))
        bad = random_matrix(3)
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            d.recompute(bad)
