"""Tests for the nonlocal pseudopotential (the V-kernel consumer)."""

import numpy as np
import pytest

from repro.core import CubicBspline1D
from repro.qmc import (
    NonlocalPseudopotential,
    icosahedron_quadrature,
    legendre,
    octahedron_quadrature,
)
from tests.qmc.test_wavefunction import build_wf


class TestQuadrature:
    @pytest.mark.parametrize(
        "rule", [octahedron_quadrature, icosahedron_quadrature]
    )
    def test_unit_vectors_and_weights(self, rule):
        pts, w = rule()
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)
        assert np.isclose(w.sum(), 1.0)

    @pytest.mark.parametrize(
        "rule,degree", [(octahedron_quadrature, 3), (icosahedron_quadrature, 5)]
    )
    def test_integrates_odd_harmonics_to_zero(self, rule, degree):
        # All odd monomials integrate to zero on the sphere; the rules
        # must reproduce that exactly up to their degree.
        pts, w = rule()
        for mono in (pts[:, 0], pts[:, 1] * pts[:, 2] * pts[:, 0]):
            assert abs(float(w @ mono)) < 1e-12

    def test_integrates_x2_exactly(self):
        # Integral of x^2 over the unit sphere (normalized) is 1/3.
        for rule in (octahedron_quadrature, icosahedron_quadrature):
            pts, w = rule()
            assert np.isclose(float(w @ pts[:, 0] ** 2), 1.0 / 3.0, atol=1e-12)


class TestLegendre:
    def test_values(self):
        x = np.array([-1.0, 0.0, 0.5, 1.0])
        np.testing.assert_allclose(legendre(0, x), 1.0)
        np.testing.assert_allclose(legendre(1, x), x)
        np.testing.assert_allclose(legendre(2, x), 1.5 * x**2 - 0.5)

    def test_rejects_high_l(self):
        with pytest.raises(ValueError):
            legendre(3, np.zeros(1))


def make_pp(l=0, strength=0.5, rcut=1.5, seed=5):
    v = CubicBspline1D.fit_function(
        lambda r: strength * (1 - r / rcut) ** 3, rcut, bc="clamped",
        deriv0=-3 * strength / rcut,
    )
    return NonlocalPseudopotential(
        v, l=l, rng=np.random.default_rng(seed)
    )


class TestEvaluator:
    def test_energy_finite(self, rng):
        wf = build_wf(rng)
        pp = make_pp()
        e = pp.energy(wf)
        assert np.isfinite(e)
        assert pp.n_v_evals > 0  # the V kernel actually ran

    def test_l0_identity_ratio_reduces_to_local(self, rng):
        # For l=0 and a wavefunction ratio identically 1, the quadrature
        # sum collapses to v(r) per in-range pair.  Engineer that by
        # zero-strength Jastrow + constant orbital? Simpler invariance:
        # the energy must be *exactly* zero when the channel radial
        # function is zero.
        wf = build_wf(rng)
        v = CubicBspline1D(np.zeros(6), 1.5)
        pp = NonlocalPseudopotential(v, l=0, rng=np.random.default_rng(1))
        assert pp.energy(wf) == 0.0

    def test_energy_does_not_disturb_wavefunction(self, rng):
        wf = build_wf(rng)
        lv0 = wf.log_value
        pos0 = wf.electrons.positions
        make_pp().energy(wf)
        assert wf.log_value == lv0
        np.testing.assert_array_equal(wf.electrons.positions, pos0)
        # A staged move must still be possible (no dangling stage).
        wf.ratio_grad(0, wf.electrons[0] + 0.1)
        wf.reject_move(0)

    def test_random_rotation_changes_result_slightly(self, rng):
        wf = build_wf(rng)
        e1 = make_pp(seed=1).energy(wf)
        e2 = make_pp(seed=2).energy(wf)
        assert e1 != e2  # rotated grids differ...
        assert abs(e1 - e2) < 0.5 * max(abs(e1), abs(e2), 1.0)  # ...mildly

    def test_cutoff_limits_pairs(self, rng):
        wf = build_wf(rng)
        tiny = make_pp(rcut=1e-3)
        assert tiny.energy(wf) == 0.0
        assert tiny.n_v_evals == 0

    @pytest.mark.parametrize("l", [0, 1, 2])
    def test_all_channels_run(self, rng, l):
        wf = build_wf(rng)
        assert np.isfinite(make_pp(l=l).energy(wf))

    def test_rejects_unknown_quadrature(self):
        v = CubicBspline1D(np.ones(6), 1.0)
        with pytest.raises(ValueError):
            NonlocalPseudopotential(v, quadrature="lebedev99")


class TestLocalEnergyIntegration:
    def test_local_energy_includes_pp_term(self, rng):
        from repro.qmc import LocalEnergy

        wf = build_wf(rng)
        pp = make_pp()
        base = LocalEnergy(wf).total()
        with_pp = LocalEnergy(wf, pseudopotential=pp).total()
        e_pp = pp.energy(wf)
        # Same configuration, same RNG-free estimators: totals differ by
        # (a fresh rotation of) the PP term; compare magnitudes loosely.
        assert with_pp != base
        assert abs((with_pp - base)) < 10 * max(abs(e_pp), 1.0)

    def test_batched_and_scalar_ratio_paths_agree(self, rng):
        wf = build_wf(rng)
        pp = make_pp()
        e = 2
        pos = wf.electrons[e] + np.array([0.2, -0.1, 0.15])
        scalar = pp._ratio_at(wf, e, pos)
        batch = pp._ratios_batch(wf, e, np.stack([pos, pos]))
        np.testing.assert_allclose(batch, [scalar, scalar], atol=1e-10)


class TestAppIntegration:
    def test_app_with_pseudopotential_profiles_v_kernel(self):
        from repro.miniqmc import build_app, run_profiled

        app = build_app(
            n_orbitals=6, grid_shape=(10, 10, 10), with_pseudopotential=True
        )
        run_profiled(app, n_sweeps=1, measure=True)
        assert app.pseudopotential.n_v_evals > 0
        # The batched V evaluations were attributed to the bspline section.
        assert app.timers.elapsed["bspline"] > 0
