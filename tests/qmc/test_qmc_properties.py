"""Property-based tests (hypothesis) for the QMC substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spline1d import CubicBspline1D
from repro.lattice import Cell, minimal_image_distances
from repro.qmc import DiracDeterminant, limited_drift, log_greens_ratio


def well_conditioned_matrix(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)) + 3.0 * np.eye(n)


class TestDeterminantProperties:
    @given(seed=st.integers(0, 10_000), e=st.integers(0, 5))
    @settings(max_examples=30)
    def test_ratio_times_inverse_ratio_is_one(self, seed, e):
        """Replacing a row and putting the old row back must give R * R' = 1."""
        A = well_conditioned_matrix(seed, 6)
        det = DiracDeterminant(A)
        old_row = det.A[e].copy()
        rng = np.random.default_rng(seed + 1)
        u = old_row + rng.standard_normal(6) * 0.5
        r1 = det.ratio(e, u)
        if abs(r1) < 1e-6:
            det.reject_move(e)
            return
        det.accept_move(e)
        r2 = det.ratio(e, old_row)
        det.accept_move(e)
        assert np.isclose(r1 * r2, 1.0, atol=1e-8)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_sm_update_equals_fresh_inverse(self, seed):
        A = well_conditioned_matrix(seed, 5)
        det = DiracDeterminant(A)
        rng = np.random.default_rng(seed + 2)
        e = int(rng.integers(0, 5))
        u = rng.standard_normal(5) + 3.0 * np.eye(5)[e]
        r = det.ratio(e, u)
        if abs(r) < 1e-3:
            det.reject_move(e)
            return
        det.accept_move(e)
        np.testing.assert_allclose(det.Ainv, np.linalg.inv(det.A), atol=1e-8)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=20)
    def test_logdet_additivity_over_move_sequence(self, seed):
        A = well_conditioned_matrix(seed, 4)
        det = DiracDeterminant(A)
        rng = np.random.default_rng(seed + 3)
        log_accum = det.log_det
        for _ in range(5):
            e = int(rng.integers(0, 4))
            u = rng.standard_normal(4) + 3.0 * np.eye(4)[e]
            r = det.ratio(e, u)
            if abs(r) < 1e-3:
                det.reject_move(e)
                continue
            det.accept_move(e)
            log_accum += np.log(abs(r))
        assert np.isclose(det.log_det, log_accum, atol=1e-9)


class TestPbcProperties:
    @given(
        seed=st.integers(0, 1000),
        lx=st.floats(1.0, 10.0),
        ly=st.floats(1.0, 10.0),
        lz=st.floats(1.0, 10.0),
    )
    @settings(max_examples=25)
    def test_minimal_image_symmetric_and_bounded(self, seed, lx, ly, lz):
        cell = Cell.orthorhombic(lx, ly, lz)
        rng = np.random.default_rng(seed)
        a = rng.random((3, 3)) * [lx, ly, lz]
        b = rng.random((3, 3)) * [lx, ly, lz]
        d = minimal_image_distances(cell, a, b)
        dt = minimal_image_distances(cell, b, a)
        np.testing.assert_allclose(d, dt.T, atol=1e-10)
        # No minimal-image distance exceeds half the diagonal.
        assert d.max() <= 0.5 * np.sqrt(lx**2 + ly**2 + lz**2) + 1e-9

    @given(seed=st.integers(0, 1000), shift=st.integers(-3, 3))
    @settings(max_examples=25)
    def test_lattice_translation_invariance(self, seed, shift):
        cell = Cell.cubic(4.0)
        rng = np.random.default_rng(seed)
        a = rng.random((2, 3)) * 4.0
        b = rng.random((2, 3)) * 4.0
        d1 = minimal_image_distances(cell, a, b)
        d2 = minimal_image_distances(cell, a, b + shift * cell.lattice[1])
        np.testing.assert_allclose(d1, d2, atol=1e-9)


class TestDriftProperties:
    @given(
        gx=st.floats(-1e4, 1e4),
        gy=st.floats(-1e4, 1e4),
        gz=st.floats(-1e4, 1e4),
        tau=st.floats(0.001, 1.0),
    )
    @settings(max_examples=50)
    def test_limited_drift_never_longer_than_raw(self, gx, gy, gz, tau):
        g = np.array([gx, gy, gz])
        v = limited_drift(g, tau)
        assert np.linalg.norm(v) <= np.linalg.norm(g) + 1e-12
        # And points in the same direction.
        if np.linalg.norm(g) > 1e-9:
            assert float(v @ g) >= 0.0

    @given(seed=st.integers(0, 1000), tau=st.floats(0.01, 0.5))
    @settings(max_examples=30)
    def test_greens_ratio_antisymmetry(self, seed, tau):
        rng = np.random.default_rng(seed)
        r1, r2, d1, d2 = rng.standard_normal((4, 3))
        fwd = log_greens_ratio(r1, r2, d1, d2, tau)
        rev = log_greens_ratio(r2, r1, d2, d1, tau)
        assert np.isclose(fwd, -rev, atol=1e-9)


class TestSpline1dProperties:
    @given(
        vals=st.lists(st.floats(-10, 10), min_size=5, max_size=15),
        scale=st.floats(0.5, 5.0),
    )
    @settings(max_examples=30)
    def test_interpolation_at_interior_knots(self, vals, scale):
        samples = np.asarray(vals)
        sp = CubicBspline1D(samples, rcut=scale)
        n = len(samples)
        knots = np.arange(1, n - 1) * scale / (n - 1)
        recon = sp.evaluate(knots)
        np.testing.assert_allclose(
            recon, samples[1:-1], atol=1e-7 * max(1.0, np.abs(samples).max())
        )

    @given(a=st.floats(-5, 5), b=st.floats(-5, 5))
    @settings(max_examples=25)
    def test_linearity_in_samples(self, a, b):
        f = np.arange(6.0)
        g = np.ones(6)
        combo = CubicBspline1D(a * f + b * g, 2.0)
        sf = CubicBspline1D(f, 2.0)
        sg = CubicBspline1D(g, 2.0)
        r = np.array([0.3, 0.9, 1.7])
        np.testing.assert_allclose(
            combo.evaluate(r),
            a * sf.evaluate(r) + b * sg.evaluate(r),
            atol=1e-8 * (1 + abs(a) + abs(b)),
        )
