"""Tests for the crowd (lock-step batched walker) driver."""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, wigner_seitz_radius
from repro.qmc import (
    ParticleSet,
    SlaterJastrow,
    SplineOrbitalSet,
    make_polynomial_radial,
    sweep,
)
from repro.qmc.crowd import Crowd


def build_crowd(n_walkers=3, n_orb=4, seed=31):
    """Walkers sharing one orbital set, with reproducible streams."""
    cell = Cell.cubic(6.0)
    pw = PlaneWaveOrbitalSet(cell, n_orb)
    spos = SplineOrbitalSet.from_orbital_functions(
        cell, pw, (12, 12, 12), engine="fused", dtype=np.float64
    )
    rcut = 0.9 * wigner_seitz_radius(cell)
    j1 = make_polynomial_radial(0.4, rcut)
    j2 = make_polynomial_radial(0.6, rcut)
    wfs, rngs = [], []
    for w in range(n_walkers):
        rng = np.random.default_rng(seed + 100 * w)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
        electrons = ParticleSet.random("e", cell, 2 * n_orb, rng)
        wfs.append(SlaterJastrow(electrons, ions, spos, j1, j2))
        rngs.append(np.random.default_rng(1000 + w))
    return wfs, rngs


class TestConstruction:
    def test_requires_shared_spos(self):
        wfs, rngs = build_crowd(2)
        # Rebuild the second walker with its own orbital set.
        cell = wfs[0].electrons.cell
        pw = PlaneWaveOrbitalSet(cell, 4)
        other_spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (12, 12, 12), dtype=np.float64
        )
        rng = np.random.default_rng(0)
        ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
        els = ParticleSet.random("e", cell, 8, rng)
        stranger = SlaterJastrow(els, ions, other_spos)
        with pytest.raises(ValueError, match="share one orbital set"):
            Crowd([wfs[0], stranger], rngs)

    def test_requires_one_rng_per_walker(self):
        wfs, rngs = build_crowd(2)
        with pytest.raises(ValueError, match="one rng"):
            Crowd(wfs, rngs[:1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Crowd([], [])


class TestLockstepEquivalence:
    def test_crowd_matches_sequential_trajectories(self):
        """The decisive test: the crowd's batched schedule reproduces the
        sequential per-walker sweep exactly (same streams, same moves)."""
        wfs_crowd, rngs_crowd = build_crowd(3)
        wfs_seq, rngs_seq = build_crowd(3)

        crowd = Crowd(wfs_crowd, rngs_crowd)
        acc_c, att_c = crowd.sweep(tau=0.2)
        acc_s = 0
        for wf, rng in zip(wfs_seq, rngs_seq):
            a, _ = sweep(wf, 0.2, rng)
            acc_s += a

        assert acc_c == acc_s
        for wc, ws in zip(wfs_crowd, wfs_seq):
            # Bitwise, not approximate: every batched stage is row-wise
            # batch-invariant and the streams are consumed identically.
            np.testing.assert_array_equal(
                wc.electrons.positions, ws.electrons.positions
            )
            assert wc.log_value == ws.log_value

    def test_batched_call_count(self):
        wfs, rngs = build_crowd(2)
        crowd = Crowd(wfs, rngs)
        crowd.sweep(0.1)
        # One batched call per electron index per sweep, plus one drift
        # cache over all committed positions at the sweep start.
        assert crowd.n_batched_calls == crowd.n_electrons + 1

    def test_run_reports_acceptance(self):
        wfs, rngs = build_crowd(2)
        crowd = Crowd(wfs, rngs)
        acc = crowd.run(2, tau=0.1)
        assert 0.0 < acc <= 1.0

    def test_walkers_stay_consistent(self):
        wfs, rngs = build_crowd(2)
        crowd = Crowd(wfs, rngs)
        crowd.run(3, tau=0.25)
        for wf in wfs:
            lv = wf.log_value
            wf.recompute()
            assert np.isclose(wf.log_value, lv, atol=1e-7)
