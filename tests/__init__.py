"""Test package."""
