"""Documentation integrity: quickstarts run, references resolve.

Docs that drift from the code are worse than no docs; these tests pin
the README quickstart, the module-level quickstart, and the file
references in DESIGN.md / EXPERIMENTS.md to reality.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text()

    def test_quickstart_code_runs(self, readme):
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README must contain a python quickstart block"
        namespace = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
        # The quickstart leaves a populated SoA output behind.
        assert "out" in namespace
        assert namespace["out"].v.shape[0] == 64

    def test_examples_listed_exist(self, readme):
        for name in re.findall(r"examples/(\w+\.py)", readme):
            assert (REPO / "examples" / name).exists(), name

    def test_cli_targets_listed_exist(self, readme):
        from repro.reproduce import ALL_TARGETS

        for target in re.findall(r"python -m repro (\w+)", readme):
            # "dmc", "serve"/"serve-client", and "tune" are live-run
            # subcommands, not reproduction targets ("serve" also matches
            # the \w+ prefix of "serve-client").
            assert target in ALL_TARGETS or target in (
                "list",
                "all",
                "dmc",
                "serve",
                "tune",
            ), target


class TestPackageDocstring:
    def test_package_quickstart_runs(self):
        import repro

        match = re.search(r"Quickstart::\n\n(.*?)\n\"\"\"", repro.__doc__ or "",
                          re.DOTALL)
        # The docstring example is indented; dedent and run it.
        import textwrap

        block = repro.__doc__.split("Quickstart::")[1]
        code = textwrap.dedent(block).strip()
        namespace = {}
        exec(code, namespace)  # noqa: S102
        assert "out" in namespace


class TestDesignAndExperiments:
    def test_design_bench_targets_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for name in set(re.findall(r"benchmarks/(test_\w+\.py)", text)):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_design_modules_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        # Modules DESIGN.md explicitly describes as planned-then-folded
        # into other files (see the notes in sections 3.4 and 3.6).
        folded = {"profiling.py", "simd.py"}
        for name in set(re.findall(r"`(\w+\.py)`", text)) - folded:
            candidates = list((REPO / "src" / "repro").rglob(name))
            assert candidates, f"DESIGN.md references missing module {name}"

    def test_experiments_bench_files_exist(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for name in set(re.findall(r"benchmarks/(test_\w+\.py)", text)):
            assert (REPO / "benchmarks" / name).exists(), name

    def test_experiments_records_every_paper_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in (
            "Table I",
            "Table II",
            "Table III",
            "Table IV",
            "Fig. 7(a)",
            "Fig. 7(b)",
            "Fig. 7(c)",
            "Fig. 8",
            "Fig. 9",
            "Fig. 10",
            "4.5",
            "14x",
        ):
            assert artifact in text, artifact
