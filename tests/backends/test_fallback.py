"""Chaos: a missing compiled dependency degrades loudly, never silently.

The fallback contract (see ``repro.backends.registry``): with numba's
import poisoned,

* ``--backend auto`` / ``resolve_backend("auto")`` degrades toward the
  NumPy floor with a ``RuntimeWarning`` per skipped candidate and a
  ``backend_fallback_total`` counter sample;
* an explicit ``backend="numba"`` request **raises**
  :class:`BackendUnavailable` with the install hint (CLIs surface it as
  one clean actionable line, not a traceback);
* fleet-worker resolution (``fallback=True``, what
  :func:`build_walker_range` uses) degrades the explicit request to
  NumPy instead — warned and counted — and the run's numbers equal the
  NumPy run's bit for bit, because the fallback *is* the NumPy backend.

Poisoning ``sys.modules`` (not uninstalling) is what the live
``availability_error`` check is designed for: the same tests pass
whether or not numba is actually installed — both CI legs run them.
"""

import sys
import warnings

import numpy as np
import pytest

from repro.backends import (
    BackendUnavailable,
    get_backend,
    resolve_backend,
)
from repro.backends.registry import _reset_for_tests
from repro.obs import OBS
from repro.parallel.crowd import CrowdSpec, run_crowd_sequential


@pytest.fixture
def no_numba(monkeypatch):
    """Make ``import numba`` raise ImportError, even if it is installed."""
    monkeypatch.setitem(sys.modules, "numba", None)
    # Activation results are cached per process; a CI leg that already
    # activated numba must re-run the gate under the poisoned import.
    _reset_for_tests()
    yield
    _reset_for_tests()


@pytest.fixture
def no_compilers(no_numba, monkeypatch):
    """Additionally break the cc backend's toolchain discovery."""
    monkeypatch.setenv("REPRO_CC", "/nonexistent/compiler")
    yield


def test_poisoned_numba_reports_unavailable(no_numba):
    backend = get_backend("numba")
    assert not backend.is_available()
    err = backend.availability_error()
    assert "numba" in err and "pip install numba" in err


def test_explicit_numba_raises_actionable_error(no_numba):
    with pytest.raises(BackendUnavailable, match="pip install numba"):
        resolve_backend("numba")


def test_auto_degrades_with_warning_and_metric(no_compilers):
    OBS.reset()
    OBS.enable()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = resolve_backend("auto")
        assert backend.name == "numpy"
        skipped = {
            str(w.message).split("'")[1]
            for w in caught
            if issubclass(w.category, RuntimeWarning)
        }
        assert {"numba", "cc"} <= skipped
        for name in ("numba", "cc"):
            counter = OBS.registry.counter(
                "backend_fallback_total", requested="auto", skipped=name
            )
            assert counter.value >= 1
    finally:
        OBS.disable()
        OBS.reset()


def test_auto_without_numba_still_resolves(no_numba):
    """auto lands on the best remaining backend, warning about the skip."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = resolve_backend("auto")
    assert backend.name in ("cc", "numpy")
    assert any("numba" in str(w.message) for w in caught)


def test_worker_fallback_matches_numpy_bitwise(no_compilers):
    """A worker that degrades serves the exact-tier path — same bits."""
    spec = CrowdSpec(n_walkers=2, n_orbitals=2, grid_shape=(8, 8, 8), seed=5)
    OBS.reset()
    OBS.enable()
    try:
        with pytest.warns(RuntimeWarning, match="numba"):
            degraded = run_crowd_sequential(
                CrowdSpec(
                    n_walkers=2,
                    n_orbitals=2,
                    grid_shape=(8, 8, 8),
                    seed=5,
                    backend="numba",
                ),
                n_sweeps=2,
                tau=0.1,
            )
        counter = OBS.registry.counter(
            "backend_fallback_total", requested="numba", skipped="numba"
        )
        assert counter.value >= 1
    finally:
        OBS.disable()
        OBS.reset()
    reference = run_crowd_sequential(spec, n_sweeps=2, tau=0.1)
    np.testing.assert_array_equal(degraded.positions, reference.positions)
    np.testing.assert_array_equal(degraded.log_values, reference.log_values)


def test_dmc_cli_rejects_unavailable_backend_cleanly(no_numba, capsys):
    """`python -m repro dmc --backend numba` = one actionable line, exit 2."""
    from repro.__main__ import _dmc_main

    with pytest.raises(SystemExit) as excinfo:
        _dmc_main(["--walkers", "2", "--generations", "1", "--backend", "numba"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "pip install numba" in err
    assert "Traceback" not in err


def test_miniqmc_cli_rejects_unknown_backend_cleanly(capsys):
    from repro.miniqmc.app import main

    with pytest.raises(SystemExit) as excinfo:
        main(["--sweeps", "1", "--backend", "no-such-backend"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "no-such-backend" in err and "known backends" in err
