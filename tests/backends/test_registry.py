"""Registry semantics: capability validation, gating, resolution, the stub.

The registry's core promise: **no backend serves kernels before passing
the differential harness at its declared tier.**  These tests register
deliberately broken backends and watch the gate reject them — eagerly
at registration, or lazily at first resolution — plus the selection
policy details (env override, instance pass-through, kind envelope).
"""

import sys
import types

import numpy as np
import pytest

from repro.backends import (
    AUTO_ORDER,
    BackendCapability,
    BackendConformanceError,
    BackendCores,
    BackendUnavailable,
    ENV_VAR,
    KernelBackend,
    NumpyBackend,
    StubDeviceBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
    unregister_backend,
)
from repro.core.batched import BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind


class _OffByOneBackend(KernelBackend):
    """Claims the exact tier but perturbs every value — must be rejected."""

    capability = BackendCapability(
        name="off-by-one",
        tier="exact",
        description="deliberately wrong (test double)",
    )

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)

        def v_core(positions, v):
            engine._numpy_v_core(positions, v)
            v += 1e-3

        def vgh_core(positions, v, g, l, h):
            engine._numpy_vgh_core(positions, v, g, l, h)
            v += 1e-3

        return BackendCores(v=v_core, vgh=vgh_core)


class _VOnlyBackend(KernelBackend):
    """A legal partial backend: serves V, refuses VGL/VGH."""

    capability = BackendCapability(
        name="v-only",
        kinds=(Kind.V,),
        tier="exact",
        description="V-kernel-only (test double)",
    )

    def make_cores(self, engine) -> BackendCores:
        self._check_engine(engine)

        def refuse(*args):  # pragma: no cover - guarded upstream by _run
            raise AssertionError("vgh must never be dispatched to a V-only backend")

        return BackendCores(v=engine._numpy_v_core, vgh=refuse)


@pytest.fixture
def scratch_registry():
    """Track names registered in a test and drop them afterwards."""
    added = []
    yield added
    for name in added:
        unregister_backend(name)


class TestCapabilityValidation:
    def test_allclose_requires_tolerance_per_dtype(self):
        with pytest.raises(ValueError, match="must declare"):
            BackendCapability(
                name="x",
                tier="allclose",
                tolerances=(("float64", 1e-12, 1e-12),),  # float32 missing
            )

    def test_exact_forbids_tolerances(self):
        with pytest.raises(ValueError, match="must not declare"):
            BackendCapability(
                name="x", tier="exact", tolerances=(("float64", 1e-9, 0.0),)
            )

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="tier"):
            BackendCapability(name="x", tier="bitwise-ish")

    def test_tolerance_lookup(self):
        cap = BackendCapability(
            name="x",
            tier="allclose",
            tolerances=(("float64", 1e-12, 1e-13), ("float32", 1e-4, 1e-5)),
        )
        assert cap.tolerance_for(np.float32) == (1e-4, 1e-5)
        exact = BackendCapability(name="y", tier="exact")
        assert exact.tolerance_for(np.float64) == (0.0, 0.0)

    def test_supports_envelope(self):
        cap = BackendCapability(name="x", kinds=(Kind.V,), dtypes=("float64",))
        assert cap.supports(Kind.V, np.float64)
        assert not cap.supports(Kind.VGH, np.float64)
        assert not cap.supports(Kind.V, np.float32)


class TestRegistration:
    def test_builtins_registered_in_auto_order(self):
        names = registered_backends()
        assert names[: len(AUTO_ORDER)] == AUTO_ORDER
        assert "numpy" in available_backends()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_eager_registration_rejects_broken_backend(self):
        with pytest.raises(BackendConformanceError, match="off-by-one"):
            register_backend(_OffByOneBackend())
        assert "off-by-one" not in registered_backends()

    def test_lazy_gate_rejects_broken_backend_at_resolution(
        self, scratch_registry
    ):
        register_backend(_OffByOneBackend(), verify="lazy")
        scratch_registry.append("off-by-one")
        assert "off-by-one" in registered_backends()  # named, but gated
        with pytest.raises(BackendConformanceError):
            resolve_backend("off-by-one")
        # The verdict is cached: the second resolution fails identically
        # without re-running the harness.
        with pytest.raises(BackendConformanceError):
            resolve_backend("off-by-one")

    def test_conforming_backend_admitted_eagerly(self, scratch_registry):
        register_backend(_VOnlyBackend())
        scratch_registry.append("v-only")
        assert resolve_backend("v-only").name == "v-only"


class TestResolution:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"
        if get_backend("cc").is_available():
            monkeypatch.setenv(ENV_VAR, "cc")
            assert resolve_backend(None).name == "cc"

    def test_unknown_name_lists_known_backends(self):
        with pytest.raises(BackendUnavailable, match="known backends"):
            get_backend("tpu")

    def test_instance_passthrough(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_fallback_never_applies_to_numpy_itself(self, monkeypatch):
        # If even the floor is broken, fallback must raise, not loop.
        backend = get_backend("numpy")
        monkeypatch.setattr(
            type(backend), "availability_error", lambda self: "broken floor"
        )
        with pytest.raises(BackendUnavailable, match="broken floor"):
            resolve_backend("numpy", fallback=True)


class TestKindEnvelope:
    def test_engine_refuses_undeclared_kind(self, scratch_registry):
        register_backend(_VOnlyBackend())
        scratch_registry.append("v-only")
        rng = np.random.default_rng(0)
        grid = Grid3D(5, 5, 5, lengths=(1.0, 1.0, 1.0))
        table = rng.standard_normal((5, 5, 5, 4))
        eng = BsplineBatched(grid, table, backend="v-only")
        positions = np.asarray(list(grid.random_positions(3, rng)))
        out = eng.new_output(Kind.VGH, n=3)
        eng.v_batch(positions, out)  # declared kind works
        with pytest.raises(BackendUnavailable, match="does not serve"):
            eng.vgh_batch(positions, out)


class TestStubTemplate:
    def test_stub_is_not_registered(self):
        assert "stub-device" not in registered_backends()

    def test_stub_unavailable_without_cupy(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "cupy", None)
        stub = StubDeviceBackend()
        assert not stub.is_available()
        assert "cupy" in stub.availability_error()

    def test_stub_cores_raise_not_implemented(self, monkeypatch):
        # Satisfy the import requirement so make_cores proceeds to the
        # template closures, which must refuse to pretend they work.
        monkeypatch.setitem(sys.modules, "cupy", types.ModuleType("cupy"))
        stub = StubDeviceBackend()
        rng = np.random.default_rng(0)
        grid = Grid3D(4, 4, 4, lengths=(1.0, 1.0, 1.0))
        table = rng.standard_normal((4, 4, 4, 4))

        class _Engine:
            dtype = table.dtype

        cores = stub.make_cores(_Engine())
        with pytest.raises(NotImplementedError, match="template"):
            cores.v(np.zeros((1, 3)), np.zeros((1, 4)))
        with pytest.raises(NotImplementedError, match="template"):
            cores.vgh(np.zeros((1, 3)), None, None, None, None)
