"""Registry-parametrized differential conformance: every backend vs the oracle.

The suite parametrizes over :func:`repro.backends.registered_backends`
at collection time, so registering a new backend adds it to every test
here with **zero edits** — the promise the stub template relies on.
Unavailable backends (missing JIT/toolchain) skip with the backend's
own availability message.

Each backend is held to its *declared* tier: ``exact`` streams are
compared with ``assert_array_equal``, ``allclose`` streams with the
capability record's per-dtype ``(rtol, atol)`` — never an unstated test
constant.  The hypothesis property sweeps grid shapes, both dtypes,
chunk/tile configurations (including the width-1-adjacent tile the
engine's tiler must absorb), and positions biased onto the periodic
seams.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import TIER_EXACT, get_backend, registered_backends
from repro.backends.conformance import conformance_positions, verify_backend
from repro.core.batched import BsplineBatched
from repro.core.batched_reference import ReferenceBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind

BACKENDS = registered_backends()
DTYPES = ("float32", "float64")


def _require(name):
    backend = get_backend(name)
    if not backend.is_available():
        pytest.skip(backend.availability_error())
    return backend


def _assert_tier(backend, out, ref_out, kind, dtype):
    cap = backend.capability
    for stream in kind.streams:
        new, ref = getattr(out, stream), getattr(ref_out, stream)
        if cap.tier == TIER_EXACT:
            np.testing.assert_array_equal(
                new, ref, err_msg=f"{cap.name}:{kind.value}:{stream}"
            )
        else:
            rtol, atol = cap.tolerance_for(dtype)
            np.testing.assert_allclose(
                new,
                ref,
                rtol=rtol,
                atol=atol,
                err_msg=f"{cap.name}:{kind.value}:{stream} "
                f"(declared rtol={rtol}, atol={atol})",
            )


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestHarness:
    def test_full_harness_passes(self, backend_name):
        """The registration-time gate itself: all (dtype, kind) checks pass."""
        backend = _require(backend_name)
        report = verify_backend(backend)
        assert report.all_passed, report.summary()

    def test_harness_covers_every_declared_cell(self, backend_name):
        """One check per (dtype, kind) of the capability — nothing skipped."""
        backend = _require(backend_name)
        report = verify_backend(backend)
        cap = backend.capability
        assert len(report.checks) == len(cap.dtypes) * len(cap.kinds)
        labelled = {c.engine.split("[")[1].split(":")[0] for c in report.checks}
        assert labelled == set(cap.dtypes)


@pytest.mark.parametrize("dtype_name", DTYPES)
@pytest.mark.parametrize("backend_name", BACKENDS)
class TestDifferentialProperty:
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_matches_oracle_at_declared_tier(
        self, backend_name, dtype_name, data
    ):
        backend = _require(backend_name)
        cap = backend.capability
        if dtype_name not in cap.dtypes:
            pytest.skip(f"{backend_name} does not serve {dtype_name}")
        nx = data.draw(st.integers(4, 7), label="nx")
        ny = data.draw(st.integers(4, 7), label="ny")
        nz = data.draw(st.integers(4, 7), label="nz")
        n_splines = data.draw(st.integers(4, 9), label="n_splines")
        seed = data.draw(st.integers(0, 2**16), label="seed")
        chunk = data.draw(
            st.sampled_from([None, 1, 2, 5]), label="chunk_size"
        )
        # n_splines - 1 is the width-1-adjacent tile: its trailing
        # orphan column must be absorbed, not given a length-1 einsum.
        tile = data.draw(
            st.sampled_from([None, 2, n_splines - 1]), label="tile_size"
        )
        kind = data.draw(st.sampled_from(list(cap.kinds)), label="kind")

        rng = np.random.default_rng(seed)
        grid = Grid3D(nx, ny, nz, lengths=(1.9, 1.3, 2.4))
        table = rng.standard_normal((nx, ny, nz, n_splines)).astype(dtype_name)
        positions = conformance_positions(grid, rng, n_random=5)

        eng = BsplineBatched(
            grid, table, chunk_size=chunk, tile_size=tile, backend=backend
        )
        oracle = ReferenceBatched(grid, table)
        out = eng.new_output(kind, n=len(positions))
        ref_out = oracle.new_output(kind, n=len(positions))
        eng.evaluate_batch(kind, positions, out)
        oracle.evaluate_batch(kind, positions, ref_out)
        _assert_tier(backend, out, ref_out, kind, np.dtype(dtype_name))


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestEngineContracts:
    """Engine-level invariants must hold whichever backend serves the cores."""

    def _engine(self, backend_name, dtype="float64", **kwargs):
        backend = _require(backend_name)
        rng = np.random.default_rng(3)
        grid = Grid3D(5, 6, 4, lengths=(1.1, 1.7, 0.9))
        table = rng.standard_normal((5, 6, 4, 6)).astype(dtype)
        eng = BsplineBatched(grid, table, backend=backend, **kwargs)
        positions = conformance_positions(grid, rng, n_random=4)
        return eng, positions

    def test_stale_stream_poisoning(self, backend_name):
        """vgh then v on one buffer: unwritten streams go NaN, not stale."""
        eng, positions = self._engine(backend_name)
        out = eng.new_output(Kind.VGH, n=len(positions))
        eng.vgh_batch(positions, out)
        assert out.valid == {"v", "g", "l", "h"}
        eng.v_batch(positions, out)
        assert out.valid == {"v"}
        assert np.isnan(out.g).all() and np.isnan(out.h).all()
        assert np.isfinite(out.v).all()

    def test_output_dtype_follows_table(self, backend_name):
        eng, positions = self._engine(backend_name, dtype="float32")
        out = eng.new_output(Kind.VGH, n=len(positions))
        eng.vgh_batch(positions, out)
        assert out.v.dtype == np.float32

    def test_chunked_equals_unchunked_bitwise(self, backend_name):
        """Within one backend, chunking must never change a bit."""
        eng_whole, positions = self._engine(backend_name)
        eng_chunked, _ = self._engine(backend_name, chunk_size=2)
        a = eng_whole.new_output(Kind.VGH, n=len(positions))
        b = eng_chunked.new_output(Kind.VGH, n=len(positions))
        eng_whole.vgh_batch(positions, a)
        eng_chunked.vgh_batch(positions, b)
        for stream in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(
                getattr(a, stream), getattr(b, stream)
            )

    def test_engine_records_active_backend(self, backend_name):
        eng, _ = self._engine(backend_name)
        assert eng.backend.name == backend_name
