"""Parallel bit-identity, per backend: sharding must never change a bit.

The fleet contract extends to pluggable backends: every worker resolves
the spec's backend *name* independently (instances never cross a
process boundary), so a sharded run must be ``assert_array_equal``-
identical to the sequential run **with the same backend** — for any
worker count, under ``fork`` and ``spawn`` alike.

Cross-backend, the guarantee is tiered: only an ``exact``-tier backend
promises the same trajectory as the NumPy floor.  An ``allclose``-tier
backend's rounding differences flip Metropolis accepts, so its
trajectory legitimately diverges from NumPy's — comparing those would
test chaos, not correctness.  Hence: same-backend comparisons are
always bitwise; vs-NumPy comparisons only for exact-tier backends.

Parametrized over the live registry — a new backend is covered with
zero edits here.
"""

import multiprocessing as mp
from pathlib import Path

import numpy as np
import pytest

from repro.backends import TIER_EXACT, get_backend, registered_backends
from repro.parallel import (
    CrowdSpec,
    run_crowd_parallel,
    run_crowd_sequential,
    run_dmc_sharded,
)

GENS, TAU_DMC = 3, 0.04
N_SWEEPS, TAU_CROWD = 2, 0.1

BACKENDS = registered_backends()
START_METHODS = [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]

_SHM_DIR = Path("/dev/shm")


def _shm_segments() -> set[str]:
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.iterdir()}


@pytest.fixture
def shm_sentinel():
    """No test may leak a shared-memory segment, whatever the backend."""
    before = _shm_segments()
    yield
    leaked = _shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _require(name):
    backend = get_backend(name)
    if not backend.is_available():
        pytest.skip(backend.availability_error())
    return backend


def _dmc_spec(backend_name):
    return CrowdSpec(n_walkers=3, n_orbitals=2, seed=29, backend=backend_name)


# Sequential references are deterministic in the spec, so compute each
# backend's once and share it across the worker-count/start-method grid.
_DMC_REFERENCE = {}


def _dmc_reference(backend_name):
    if backend_name not in _DMC_REFERENCE:
        _DMC_REFERENCE[backend_name] = run_dmc_sharded(
            _dmc_spec(backend_name),
            n_workers=1,
            n_generations=GENS,
            tau=TAU_DMC,
        )
    return _DMC_REFERENCE[backend_name]


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.energy_trace, b.energy_trace)
    np.testing.assert_array_equal(a.population_trace, b.population_trace)
    np.testing.assert_array_equal(a.e_trial_trace, b.e_trial_trace)
    assert a.acceptance == b.acceptance


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestDmcSharded:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_sharded_matches_sequential_same_backend(
        self, backend_name, n_workers, start_method, shm_sentinel
    ):
        _require(backend_name)
        sharded = run_dmc_sharded(
            _dmc_spec(backend_name),
            n_workers=n_workers,
            n_generations=GENS,
            tau=TAU_DMC,
            start_method=start_method,
        )
        _assert_traces_equal(sharded, _dmc_reference(backend_name))

    def test_exact_tier_matches_numpy_trajectory(self, backend_name):
        """Exact-tier backends reproduce the NumPy floor's trajectory."""
        backend = _require(backend_name)
        if backend.capability.tier != TIER_EXACT:
            pytest.skip(
                f"{backend_name} is {backend.capability.tier}-tier: its "
                "trajectory may legitimately diverge from numpy's"
            )
        baseline = run_dmc_sharded(
            CrowdSpec(n_walkers=3, n_orbitals=2, seed=29),  # backend=None
            n_workers=1,
            n_generations=GENS,
            tau=TAU_DMC,
        )
        _assert_traces_equal(_dmc_reference(backend_name), baseline)


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestCrowdParallel:
    def test_parallel_matches_sequential_same_backend(
        self, backend_name, shm_sentinel
    ):
        _require(backend_name)
        spec = CrowdSpec(n_walkers=4, n_orbitals=2, seed=31, backend=backend_name)
        sequential = run_crowd_sequential(spec, n_sweeps=N_SWEEPS, tau=TAU_CROWD)
        parallel = run_crowd_parallel(
            spec, n_workers=2, n_sweeps=N_SWEEPS, tau=TAU_CROWD
        )
        np.testing.assert_array_equal(parallel.positions, sequential.positions)
        np.testing.assert_array_equal(parallel.log_values, sequential.log_values)
        assert parallel.accepted == sequential.accepted
        assert parallel.attempted == sequential.attempted
