"""Test package."""
