"""Tests for the roofline model and per-step analysis (paper Fig. 10)."""

import numpy as np
import pytest

from repro.hwsim import BDW, KNL
from repro.roofline import Roofline, roofline_points


class TestRoofline:
    def test_bandwidth_bound_region(self):
        r = Roofline(1000.0, {"DRAM": 100.0})
        assert r.attainable(1.0) == 100.0
        assert r.attainable(5.0) == 500.0

    def test_compute_bound_region(self):
        r = Roofline(1000.0, {"DRAM": 100.0})
        assert r.attainable(100.0) == 1000.0

    def test_ridge_point(self):
        r = Roofline(1000.0, {"DRAM": 100.0})
        assert r.ridge_point() == 10.0
        assert r.attainable(r.ridge_point()) == 1000.0

    def test_named_ceiling(self):
        r = Roofline(1000.0, {"MCDRAM": 490.0, "DDR": 90.0})
        assert r.attainable(1.0, "DDR") == 90.0
        assert r.attainable(1.0) == 490.0  # fastest by default

    def test_curve_vectorized(self):
        r = Roofline(1000.0, {"DRAM": 100.0})
        ai = np.array([0.1, 1.0, 100.0])
        np.testing.assert_allclose(r.curve(ai), [10.0, 100.0, 1000.0])

    def test_rejects_negative_ai(self):
        with pytest.raises(ValueError):
            Roofline(1.0, {"DRAM": 1.0}).attainable(-1.0)

    def test_for_machine_knl_has_both_memories(self):
        r = Roofline.for_machine(KNL)
        assert set(r.ceilings) == {"MCDRAM", "DDR"}
        assert r.peak_gflops == KNL.peak_sp_gflops

    def test_for_machine_bdw_has_llc_ceiling(self):
        r = Roofline.for_machine(BDW)
        assert "LLC" in r.ceilings and "DRAM" in r.ceilings

    def test_efficiency(self):
        r = Roofline(1000.0, {"DRAM": 100.0})
        assert r.efficiency(1.0, 50.0) == 0.5


class TestFig10Points:
    def test_knl_point_set(self):
        pts = {p.step.split("(")[0]: p for p in roofline_points(KNL)}
        assert {"AoS", "SoA", "AoSoA", "AoSoA-DDR"} == set(pts)

    def test_soa_improves_both_ai_and_gflops(self):
        # Paper: "The AoS-to-SoA transformation increases the AI as well
        # as GFLOPS".
        pts = roofline_points(KNL)
        aos = next(p for p in pts if p.step == "AoS")
        soa = next(p for p in pts if p.step == "SoA")
        assert soa.ai > aos.ai
        assert soa.gflops > aos.gflops

    def test_aosoa_improves_gflops(self):
        pts = roofline_points(KNL)
        soa = next(p for p in pts if p.step == "SoA")
        aosoa = next(p for p in pts if p.step.startswith("AoSoA(N"))
        assert aosoa.gflops > soa.gflops

    def test_ddr_caps_performance(self):
        # Paper: "the best 150 GFLOPS obtained on DDR with the AoSoA
        # version" — DDR must be several times below MCDRAM.
        pts = roofline_points(KNL)
        mcdram = next(p for p in pts if p.step.startswith("AoSoA(N"))
        ddr = next(p for p in pts if p.step.startswith("AoSoA-DDR"))
        assert ddr.gflops < 0.4 * mcdram.gflops
        assert 100 < ddr.gflops < 600

    def test_all_points_below_attainable(self):
        for machine in (KNL, BDW):
            for p in roofline_points(machine):
                assert p.gflops <= p.attainable_gflops * 1.0001

    def test_efficiency_in_unit_interval(self):
        for p in roofline_points(KNL):
            assert 0.0 < p.efficiency <= 1.0
