"""FleetSupervisor: recovery, journal replay, elasticity, observability.

The worker state here is a tiny counter object — the supervision
contracts (restart, replay, scale) are independent of what the workers
compute, and spawning real shards would only slow the suite down.
"""

import os
import signal
import time

import pytest

from repro.fleet import FleetConfig, FleetSupervisor
from repro.parallel import WorkerError
from repro.resilience.faults import FaultInjector


class _Counter:
    """Minimal stateful worker: deterministic init, mutable value."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.value = 0

    def whoami(self) -> int:
        return self.worker_id

    def add(self, n: int) -> int:
        self.value += n
        return self.value

    def get(self) -> int:
        return self.value


def _init_counter(worker_id: int) -> _Counter:
    return _Counter(worker_id)


class TestConfig:
    def test_rejects_bad_budgets(self):
        with pytest.raises(ValueError, match="worker_timeout"):
            FleetConfig(worker_timeout=0)
        with pytest.raises(ValueError, match="max_restarts"):
            FleetConfig(max_restarts=-1)
        with pytest.raises(ValueError, match="min_workers"):
            FleetConfig(min_workers=0)
        with pytest.raises(ValueError, match="max_workers"):
            FleetConfig(min_workers=3, max_workers=2)
        with pytest.raises(ValueError, match="latency_budget"):
            FleetConfig(latency_budget=-1.0)
        with pytest.raises(ValueError, match="rebalance_threshold"):
            FleetConfig(rebalance_threshold=-0.5)
        with pytest.raises(ValueError, match="heartbeat_every"):
            FleetConfig(heartbeat_every=-1)

    def test_elastic_requires_stateless(self):
        with pytest.raises(ValueError, match="stateless"):
            FleetSupervisor(
                1, _init_counter, config=FleetConfig(elastic=True), stateful=True
            )


class TestSupervisedCalls:
    def test_broadcast_gathers_in_worker_order(self):
        with FleetSupervisor(3, _init_counter) as sup:
            assert len(sup) == 3
            assert sup.broadcast("whoami") == [0, 1, 2]

    def test_sigkill_recovery_is_transparent(self):
        with FleetSupervisor(2, _init_counter) as sup:
            sup.arm_fault(1, "sigkill")
            assert sup.broadcast("whoami") == [0, 1]
            assert sup.restarts == [0, 1]
            assert len(sup.mttr_seconds) == 1
            restart = next(e for e in sup.events if e["kind"] == "restart")
            assert restart["worker"] == 1
            assert restart["reason"] == "crash"

    def test_hang_recovery_via_deadline(self):
        cfg = FleetConfig(worker_timeout=1.0)
        with FleetSupervisor(2, _init_counter, config=cfg) as sup:
            sup.arm_fault(0, "hang", seconds=30.0)
            assert sup.broadcast("whoami") == [0, 1]
            assert sup.restarts == [1, 0]
            restart = next(e for e in sup.events if e["kind"] == "restart")
            assert restart["reason"] == "hang"

    def test_stateful_journal_replays_after_crash(self):
        with FleetSupervisor(2, _init_counter, stateful=True) as sup:
            assert sup.broadcast("add", 5) == [5, 5]
            sup.arm_fault(0, "sigkill")
            # Worker 0 dies on this call; the restarted process replays
            # add(5) from the journal before the call is re-issued.
            assert sup.broadcast("add", 2) == [7, 7]
            assert sup.broadcast("get") == [7, 7]
            assert sup.restarts == [1, 0]

    def test_restart_budget_is_bounded(self):
        cfg = FleetConfig(max_restarts=0)
        with FleetSupervisor(1, _init_counter, config=cfg) as sup:
            sup.arm_fault(0, "sigkill")
            with pytest.raises(WorkerError, match="max_restarts"):
                sup.broadcast("whoami")

    def test_heartbeat_restarts_externally_killed_worker(self):
        with FleetSupervisor(2, _init_counter) as sup:
            os.kill(sup.pool.pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while sup.pool.alive(0) and time.monotonic() < deadline:
                time.sleep(0.05)
            assert sup.heartbeat() == [False, True]
            # The slot is healthy again after recovery.
            assert sup.broadcast("whoami") == [0, 1]
            assert sup.restarts == [1, 0]


class TestElasticity:
    def test_scale_to_grows_and_shrinks(self):
        cfg = FleetConfig(elastic=True, max_workers=3)
        with FleetSupervisor(1, _init_counter, config=cfg) as sup:
            assert sup.scale_to(3) == 3
            assert sup.broadcast("whoami") == [0, 1, 2]
            assert sup.scale_to(1) == 1
            assert sup.broadcast("whoami") == [0]
            assert sup.scale_events == 2
            assert len(sup.restarts) == 1

    def test_scale_clamps_to_bounds(self):
        cfg = FleetConfig(elastic=True, min_workers=1, max_workers=2)
        with FleetSupervisor(1, _init_counter, config=cfg) as sup:
            assert sup.scale_to(99) == 2
            assert sup.scale_to(0) == 1

    def test_stateful_fleet_refuses_to_scale(self):
        with FleetSupervisor(1, _init_counter, stateful=True) as sup:
            with pytest.raises(ValueError, match="stateful"):
                sup.scale_to(2)

    def test_autoscale_follows_latency_budget(self):
        cfg = FleetConfig(elastic=True, latency_budget=1.0, max_workers=2)
        with FleetSupervisor(1, _init_counter, config=cfg) as sup:
            assert sup.autoscale(2.0) == 2  # over budget: grow
            assert sup.autoscale(0.9) == 2  # inside hysteresis band: hold
            assert sup.autoscale(0.1) == 1  # ample slack: shrink

    def test_autoscale_is_a_no_op_when_not_elastic(self):
        with FleetSupervisor(1, _init_counter) as sup:
            assert sup.autoscale(1e9) == 1
            assert sup.scale_events == 0

    def test_rss_budget_forces_shrink(self):
        # Any live Python worker dwarfs a 0.001 MiB budget.
        cfg = FleetConfig(
            elastic=True, rss_budget_mb=0.001, latency_budget=1e-6, max_workers=2
        )
        with FleetSupervisor(2, _init_counter, config=cfg) as sup:
            assert sup.rss_mb() > 0.001
            # Latency says grow, memory says shrink: memory wins.
            assert sup.autoscale(1e9) == 1

    def test_rss_is_measured(self):
        with FleetSupervisor(1, _init_counter) as sup:
            assert sup.rss_mb() > 0.0


class TestInjectorAndObservability:
    def test_arm_injector_matches_generation_and_pool(self):
        inj = FaultInjector(seed=7)
        inj.sigkill_worker(worker=0, generation=0)
        inj.sigkill_worker(worker=1, generation=3)  # wrong generation
        inj.sigkill_worker(worker=9, generation=0)  # beyond the pool
        with FleetSupervisor(2, _init_counter) as sup:
            assert sup.arm_injector(inj, generation=0) == 1
            skipped = [e for e in sup.events if e["kind"] == "fault_skipped"]
            assert [e["worker"] for e in skipped] == [9]
            assert sup.broadcast("whoami") == [0, 1]
            assert sup.restarts == [1, 0]

    def test_arm_injector_none_is_a_no_op(self):
        with FleetSupervisor(1, _init_counter) as sup:
            assert sup.arm_injector(None) == 0

    def test_supervision_metrics_land_in_obs(self, obs):
        cfg = FleetConfig(elastic=True, max_workers=2)
        with FleetSupervisor(1, _init_counter, config=cfg) as sup:
            sup.arm_fault(0, "sigkill")
            sup.broadcast("whoami")
            sup.scale_to(2)
            sup.heartbeat()
            sup.merge_metrics()
        reg = obs.registry
        assert reg.counter("fleet_restarts_total", reason="crash").value == 1
        assert reg.counter("fleet_faults_armed_total", kind="sigkill").value == 1
        assert reg.counter("fleet_scale_events_total", direction="grow").value == 1
        assert reg.counter("worker_failures_total", worker="0").value == 1
        assert reg.histogram("fleet_recovery_seconds").count == 1
        assert reg.gauge("fleet_workers").value == 2

    def test_fleet_summary_shape(self):
        with FleetSupervisor(1, _init_counter) as sup:
            sup.arm_fault(0, "sigkill")
            sup.broadcast("whoami")
            summary = sup.fleet_summary()
        assert summary["restarts"] == 1
        assert summary["scale_events"] == 0
        assert summary["rebalances"] == 0
        assert summary["final_workers"] == 1
        assert len(summary["mttr_seconds"]) == 1
        assert any(e["kind"] == "restart" for e in summary["events"])
