"""Rebalance planning: deterministic, pure arithmetic, no processes."""

import pytest

from repro.fleet import (
    Move,
    balanced_sizes,
    plan_rebalance,
    shard_imbalance,
)


class TestBalancedSizes:
    def test_matches_contiguous_shard_split(self):
        # Same convention as shard_slices: the remainder lands on the
        # lowest-indexed shards.
        assert balanced_sizes(5, 2) == [3, 2]
        assert balanced_sizes(6, 3) == [2, 2, 2]
        assert balanced_sizes(7, 3) == [3, 2, 2]
        assert balanced_sizes(0, 4) == [0, 0, 0, 0]

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            balanced_sizes(4, 0)
        with pytest.raises(ValueError, match="total"):
            balanced_sizes(-1, 2)


class TestShardImbalance:
    def test_balanced_is_zero(self):
        assert shard_imbalance([3, 3, 3]) == 0.0

    def test_straggler_excess(self):
        # Heaviest shard carries double its fair share -> imbalance 1.0.
        assert shard_imbalance([4, 0]) == pytest.approx(1.0)
        assert shard_imbalance([4, 2, 2]) == pytest.approx(0.5)
        assert shard_imbalance([3, 2, 2]) == pytest.approx(2 / 7)

    def test_empty_population_is_balanced(self):
        assert shard_imbalance([]) == 0.0
        assert shard_imbalance([0, 0]) == 0.0


class TestPlanRebalance:
    def test_fresh_walkers_fill_shards_deterministically(self):
        plan = plan_rebalance([-1, -1, -1, -1], n_shards=2)
        assert plan.sizes_before == (0, 0)
        assert plan.sizes_after == (2, 2)
        # Ties break to the lowest shard, walkers placed in global order.
        assert plan.moves == (
            Move(walker=0, src=-1, dst=0),
            Move(walker=1, src=-1, dst=1),
            Move(walker=2, src=-1, dst=0),
            Move(walker=3, src=-1, dst=1),
        )
        assert plan.migrations == ()

    def test_evacuates_walkers_from_removed_shards(self):
        # Shard 2 was removed by an elastic shrink: its walkers must be
        # re-homed, and those moves count as real migrations.
        plan = plan_rebalance([0, 0, 1, 1, 2, 2], n_shards=2)
        assert plan.sizes_before == (2, 2)
        assert plan.sizes_after == (3, 3)
        assert plan.moves == (
            Move(walker=4, src=2, dst=0),
            Move(walker=5, src=2, dst=1),
        )
        assert plan.migrations == plan.moves

    def test_migrates_from_skewed_shard_above_threshold(self):
        # Imbalance (4-2.5)/2.5 = 0.6 > 0.25: the highest-indexed walker
        # of the surplus shard moves to the deficit shard.
        plan = plan_rebalance([0, 0, 0, 0, 1], n_shards=2, threshold=0.25)
        assert plan.sizes_before == (4, 1)
        assert plan.sizes_after == (3, 2)
        assert plan.moves == (Move(walker=3, src=0, dst=1),)

    def test_threshold_tolerates_mild_skew(self):
        plan = plan_rebalance([0, 0, 0, 0, 1], n_shards=2, threshold=1.0)
        assert plan.moves == ()
        assert plan.sizes_after == (4, 1)

    def test_threshold_none_places_but_never_migrates(self):
        plan = plan_rebalance([0, 0, 0, 0, -1], n_shards=2, threshold=None)
        # The fresh walker still gets a home (mandatory) ...
        assert plan.moves == (Move(walker=4, src=-1, dst=1),)
        # ... but the 4-vs-1 skew is left alone.
        assert plan.sizes_after == (4, 1)

    def test_threshold_zero_always_balances_fully(self):
        plan = plan_rebalance([0, 0, 0, 1, 1, 1, 1, 1], n_shards=2, threshold=0.0)
        assert plan.sizes_after == (4, 4)
        assert plan.moves == (Move(walker=7, src=1, dst=0),)

    def test_plan_is_deterministic(self):
        homes = [0, 1, 0, 0, -1, 3, 0, 1]
        a = plan_rebalance(homes, n_shards=3)
        b = plan_rebalance(homes, n_shards=3)
        assert a == b
        assert sorted(a.sizes_after, reverse=True) == balanced_sizes(len(homes), 3)

    def test_single_shard_takes_everything(self):
        plan = plan_rebalance([-1, 5, 0], n_shards=1)
        assert plan.sizes_after == (3,)
        assert all(m.dst == 0 for m in plan.moves)

    def test_validation(self):
        with pytest.raises(ValueError, match="n_shards"):
            plan_rebalance([0], n_shards=0)
        with pytest.raises(ValueError, match="threshold"):
            plan_rebalance([0], n_shards=1, threshold=-0.1)
