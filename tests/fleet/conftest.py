"""Fixtures for the fleet-supervision tests.

Same hygiene rules as ``tests/parallel``: no test may leak a
shared-memory segment or leave the global ``OBS`` enabled.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import OBS

_SHM_DIR = Path("/dev/shm")


def shm_segments() -> set[str]:
    """Names of live shared-memory segments (empty on non-Linux hosts)."""
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.iterdir()}


@pytest.fixture
def shm_sentinel():
    """Fail the test if it leaks any shared-memory segment."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def obs():
    """The global ``OBS``, enabled and empty; disabled and wiped after."""
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()


@pytest.fixture(autouse=True)
def _obs_stays_off():
    """Guard: no test in this package may leak an enabled OBS."""
    yield
    assert not OBS.enabled, "test left the global OBS enabled"
