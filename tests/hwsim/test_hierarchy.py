"""Tests for the multi-level cache hierarchy simulation."""

import numpy as np
import pytest

from repro.hwsim import BDW, KNL, CacheHierarchy, SetAssociativeCache, TraceBuilder


def small_hierarchy():
    return CacheHierarchy(
        [
            ("L1", SetAssociativeCache(1024, assoc=4)),
            ("L2", SetAssociativeCache(8 * 1024, assoc=8)),
        ]
    )


class TestBasics:
    def test_requires_levels(self):
        with pytest.raises(ValueError):
            CacheHierarchy([])

    def test_l1_hit_stays_in_l1(self):
        h = small_hierarchy()
        h.access_lines(np.array([0, 0, 0]))
        stats = {s.name: s for s in h.stats()}
        assert stats["L1"].hits == 2
        assert stats["L2"].accesses == 1  # only the first (cold) access

    def test_memory_fallthrough_counts(self):
        h = small_hierarchy()
        h.access_lines(np.arange(1000))  # far beyond both levels
        assert h.memory_accesses == 1000

    def test_l2_catches_l1_victims(self):
        h = small_hierarchy()
        lines = np.arange(64)  # 4 KB: exceeds L1 (1 KB), fits L2 (8 KB)
        h.access_lines(lines)
        h.access_lines(lines)  # second pass
        stats = {s.name: s for s in h.stats()}
        assert stats["L2"].hits > 0
        assert h.memory_accesses == 64  # only the cold pass reached memory

    def test_served_fraction_sums_to_one(self):
        h = small_hierarchy()
        rng = np.random.default_rng(0)
        h.access_lines(rng.integers(0, 128, 2000))
        total = (
            h.served_fraction("L1")
            + h.served_fraction("L2")
            + h.served_fraction("MEM")
        )
        assert np.isclose(total, 1.0)

    def test_served_fraction_unknown_level(self):
        with pytest.raises(KeyError):
            small_hierarchy().served_fraction("L3")

    def test_flush(self):
        h = small_hierarchy()
        h.access_lines(np.array([0, 0]))
        h.flush()
        assert h.memory_accesses == 0
        assert h.stats()[0].accesses == 0


class TestForMachine:
    def test_bdw_has_three_levels(self):
        h = CacheHierarchy.for_machine(BDW)
        assert [name for name, _ in h.levels] == ["L1", "L2", "LLC"]

    def test_knl_has_two_levels(self):
        h = CacheHierarchy.for_machine(KNL)
        assert [name for name, _ in h.levels] == ["L1", "L2"]

    def test_per_thread_budgets_shrink(self):
        h = CacheHierarchy.for_machine(KNL)
        l1 = h.levels[0][1]
        assert l1.size_bytes <= KNL.l1d_bytes // KNL.smt


class TestKernelResidency:
    """Level-resolved versions of the paper's working-set claims."""

    def test_small_tile_outputs_served_near_core(self, rng):
        # KNL per-thread view; VGH outputs for Nb=64 are 2.5 KB -> L1/L2.
        h = CacheHierarchy.for_machine(KNL)
        tb = TraceBuilder((8, 8, 8), 64, tile_size=64)
        idx = tb.random_position_indices(12, rng)
        h.access_lines(tb.walker_trace(idx, "vgh", "soa"))
        out_lines = tb.output_lines(0, "vgh", "soa")
        for _, cache in h.levels:
            cache.reset_stats()
        h.memory_accesses = 0
        h.access_lines(out_lines)
        assert h.memory_accesses == 0  # outputs never fell to memory

    def test_big_output_set_spills_past_l1(self, rng):
        # A per-thread output set far beyond the 8 KB L1 share must take
        # L2 (or worse) traffic during re-touch.
        h = CacheHierarchy.for_machine(KNL)
        tb = TraceBuilder((6, 6, 6), 2048, tile_size=2048)  # 80 KB outputs
        trace = tb.eval_trace(0, 3, 3, 3, "vgh", "soa")
        h.access_lines(trace)
        assert h.served_fraction("L1") < 0.9
