"""Tests for kernel address-trace generation and its cache behaviour."""

import numpy as np
import pytest

from repro.hwsim import SetAssociativeCache, TraceBuilder


class TestTraceStructure:
    def test_row_line_count(self):
        tb = TraceBuilder((8, 8, 8), 64)  # rows of 256 B = 4 lines
        lines = tb.read_lines_for_eval(0, 4, 4, 4)
        assert len(lines) == 64 * 4

    def test_rows_are_contiguous_lines(self):
        tb = TraceBuilder((8, 8, 8), 32)
        r = tb._row_lines(0, 1, 2, 3)
        assert (np.diff(r) == 1).all()

    def test_distinct_rows_for_distinct_points(self):
        tb = TraceBuilder((8, 8, 8), 16)
        a = set(tb._row_lines(0, 0, 0, 0))
        b = set(tb._row_lines(0, 0, 0, 1))
        assert not (a & b) or 16 * 4 < 64  # small rows may share a line

    def test_tiles_occupy_disjoint_regions(self):
        tb = TraceBuilder((8, 8, 8), 32, tile_size=16)
        a = tb.read_lines_for_eval(0, 4, 4, 4)
        b = tb.read_lines_for_eval(1, 4, 4, 4)
        assert not (set(a) & set(b))

    def test_output_region_above_table(self):
        tb = TraceBuilder((8, 8, 8), 32, tile_size=16)
        assert tb.output_lines(0, "vgh", "soa").min() * 64 >= tb.output_base

    def test_output_line_count_scales_with_streams(self):
        tb = TraceBuilder((8, 8, 8), 64)
        aos = tb.output_lines(0, "vgh", "aos")
        soa = tb.output_lines(0, "vgh", "soa")
        assert len(aos) > len(soa)  # 13 streams vs 10

    def test_rejects_nondivisor_tile(self):
        with pytest.raises(ValueError):
            TraceBuilder((8, 8, 8), 32, tile_size=5)

    def test_periodic_wrap_in_stencil(self):
        tb = TraceBuilder((8, 8, 8), 16)
        lines = tb.read_lines_for_eval(0, 0, 0, 0)  # stencil wraps low
        assert len(lines) == 64  # 16 splines * 4B = 64B = 1 line per row
        assert (lines >= 0).all()


class TestCacheBehaviour:
    """The headline validation: working-set cliffs appear where the
    paper's arithmetic says they should."""

    def test_repeated_tile_evals_hit_once_slab_cached(self, rng):
        grid = (6, 6, 6)
        nb = 16
        tb = TraceBuilder(grid, nb)
        slab_bytes = 6 * 6 * 6 * nb * 4  # 13.5 KB
        cache = SetAssociativeCache(32 * 1024, assoc=16)  # slab fits
        idx = tb.random_position_indices(40, rng)
        trace = tb.walker_trace(idx, "vgh", "soa")
        cache.access_lines(trace)
        # After the cold pass the slab is resident: hit rate must be high.
        assert cache.stats.hit_rate > 0.85

    def test_slab_too_big_thrashes(self, rng):
        grid = (8, 8, 8)
        nb = 64
        tb = TraceBuilder(grid, nb)
        slab_bytes = 8 * 8 * 8 * nb * 4  # 128 KB
        cache = SetAssociativeCache(16 * 1024, assoc=16)  # way too small
        idx = tb.random_position_indices(30, rng)
        trace = tb.walker_trace(idx, "vgh", "soa")
        cache.access_lines(trace)
        small_rate = cache.stats.hit_rate
        big = SetAssociativeCache(256 * 1024, assoc=16)  # slab fits
        big.access_lines(trace)
        assert big.stats.hit_rate > small_rate + 0.2

    def test_tiling_raises_hit_rate_at_fixed_cache(self, rng):
        """The Opt-B mechanism, observed mechanically: same total work,
        same cache, higher hit rate with a smaller active slab."""
        grid = (8, 8, 8)
        n_splines = 64
        cache_bytes = 64 * 1024
        rates = {}
        for nb in (64, 16):
            tb = TraceBuilder(grid, n_splines, tile_size=nb)
            cache = SetAssociativeCache(cache_bytes, assoc=16)
            idx = tb.random_position_indices(25, rng)
            cache.access_lines(tb.walker_trace(idx, "vgh", "soa"))
            rates[nb] = cache.stats.hit_rate
        assert rates[16] > rates[64]

    def test_outputs_stay_resident_for_small_tiles(self, rng):
        grid = (6, 6, 6)
        tb = TraceBuilder(grid, 32, tile_size=8)
        cache = SetAssociativeCache(8 * 1024, assoc=8)
        idx = tb.random_position_indices(10, rng)
        # Outputs of one tile: 10 streams * 8 splines * 4 B = 320 B.
        out_lines = tb.output_lines(0, "vgh", "soa")
        trace = tb.eval_trace(0, 3, 3, 3, "vgh", "soa")
        cache.access_lines(trace)
        cache.reset_stats()
        hits = cache.access_lines(out_lines)
        assert hits == len(out_lines)  # all output lines still resident
