"""Tests for the execution-time model, including paper-shape assertions.

The calibration tests assert the *shape* of the paper's results — who
wins, by roughly what factor, where the optima fall — with tolerances
documented in EXPERIMENTS.md (generally within ~1.4x of each Table IV
entry and exact optimal-tile positions).
"""

import numpy as np
import pytest

from repro.hwsim import (
    BDW,
    BGQ,
    KNC,
    KNL,
    MACHINES,
    BsplinePerfModel,
    max_accum_fitting_tile,
    max_llc_fitting_tile,
    working_set_report,
)

#: Paper Table IV, transcribed: (A, B, C) speedups at N=2048.
PAPER_TABLE_IV = {
    ("v", "BDW"): (None, 2.0, 3.4),
    ("v", "KNC"): (None, 1.2, 5.9),
    ("v", "KNL"): (None, 1.3, 18.7),
    ("v", "BGQ"): (None, 1.3, 2.0),
    ("vgl", "BDW"): (4.2, 10.2, 17.2),
    ("vgl", "KNC"): (4.0, 5.7, 42.1),
    ("vgl", "KNL"): (5.1, 5.6, 80.6),
    ("vgl", "BGQ"): (7.4, 9.5, 15.8),
    ("vgh", "BDW"): (1.7, 3.7, 6.4),
    ("vgh", "KNC"): (2.6, 5.2, 35.2),
    ("vgh", "KNL"): (1.7, 2.3, 33.1),
    ("vgh", "BGQ"): (1.9, 2.7, 5.2),
}

#: Paper Table IV bottom row: nth (Nb) used for Opt C per machine.
PAPER_NTH = {"BDW": 2, "KNC": 8, "KNL": 16, "BGQ": 2}


class TestBasicProperties:
    def test_result_fields_positive(self):
        res = BsplinePerfModel(KNL).evaluate("vgh", "soa", 2048)
        assert res.evals_per_sec > 0
        assert res.throughput == pytest.approx(res.evals_per_sec * 2048)
        assert res.t_eval == pytest.approx(
            res.t_compute + res.t_read + res.t_write
        )

    def test_bound_classification(self):
        res = BsplinePerfModel(BGQ).evaluate("vgh", "aos", 2048)
        assert res.bound in ("compute", "memory")

    def test_rejects_bad_layout(self):
        with pytest.raises(ValueError):
            BsplinePerfModel(KNL).evaluate("vgh", "simd", 2048)

    def test_rejects_nondivisor_tile(self):
        with pytest.raises(ValueError):
            BsplinePerfModel(KNL).evaluate("vgh", "aosoa", 2048, 300)

    def test_soa_never_slower_than_aos(self):
        for m in MACHINES.values():
            model = BsplinePerfModel(m)
            for kern in ("vgl", "vgh"):
                aos = model.evaluate(kern, "aos", 2048)
                soa = model.evaluate(kern, "soa", 2048)
                assert soa.evals_per_sec >= aos.evals_per_sec

    def test_spill_multiplier_monotone(self):
        model = BsplinePerfModel(KNL)
        mults = [
            model.write_spill_multiplier("vgh", "soa", nb)
            for nb in (128, 512, 2048, 8192)
        ]
        assert mults[0] == 1.0  # fits the budget
        assert all(a <= b for a, b in zip(mults, mults[1:]))

    def test_smt_capacity_monotone(self):
        model = BsplinePerfModel(KNL)
        caps = [model.node_cycle_capacity(t) for t in (1, 2, 4)]
        assert caps[0] < caps[1] < caps[2]


class TestOptimalTiles:
    """Fig. 7c: the model's optimal Nb matches the paper exactly."""

    def test_bdw_peak_at_64(self):
        nb, _ = BsplinePerfModel(BDW).best_tile_size("vgh", 2048)
        assert nb == 64

    def test_knc_peak_at_512(self):
        nb, _ = BsplinePerfModel(KNC).best_tile_size("vgh", 2048)
        assert nb == 512

    def test_knl_peak_at_512(self):
        nb, _ = BsplinePerfModel(KNL).best_tile_size("vgh", 2048)
        assert nb == 512

    def test_bgq_peak_at_64_or_128(self):
        # The modelled BG/Q curve is nearly flat across 32-128 (see
        # EXPERIMENTS.md); the paper reports 64.
        nb, sweep = BsplinePerfModel(BGQ).best_tile_size("vgh", 2048)
        assert nb in (32, 64, 128)
        assert sweep[64] > 0.9 * max(sweep.values())

    def test_bdw_cliff_at_128(self):
        # LLC fit lost between Nb=64 (28 MB) and Nb=128 (56 MB > 45 MB).
        _, sweep = BsplinePerfModel(BDW).best_tile_size("vgh", 2048)
        assert sweep[64] > 1.3 * sweep[128]

    def test_knl_declines_past_512(self):
        _, sweep = BsplinePerfModel(KNL).best_tile_size("vgh", 2048)
        assert sweep[512] > sweep[1024] > sweep[2048]

    def test_nested_requires_enough_tiles(self):
        nb, sweep = BsplinePerfModel(KNL).best_tile_size("vgh", 2048, nth=16)
        assert nb <= 2048 // 16
        assert all(2048 // n >= 16 for n in sweep)


class TestWorkingSetPredicates:
    def test_bdw_llc_fit_boundary(self):
        # Paper Sec. VI-B: 28 MB (Nb=64) fits the 45 MB L3; 56 MB does not.
        assert max_llc_fitting_tile(BDW, "vgh", 2048) == 64

    def test_bgq_llc_fit_boundary(self):
        assert max_llc_fitting_tile(BGQ, "vgh", 2048) in (32, 64)

    def test_no_llc_machines_return_none(self):
        assert max_llc_fitting_tile(KNL, "vgh", 2048) is None
        assert max_llc_fitting_tile(KNC, "vgh", 2048) is None

    def test_knl_accum_fit_is_512(self):
        # 40 bytes/spline output: 512 * 40 = 20 KB <= 24 KB budget; 1024
        # does not fit — the Fig. 7c peak position.
        assert max_accum_fitting_tile(KNL, "vgh", 2048) == 512

    def test_working_set_report_fields(self):
        rep = working_set_report(BDW, "vgh", 2048, 64)
        assert rep.input_ws == 4 * 48**3 * 64
        assert rep.fits_llc
        rep2 = working_set_report(BDW, "vgh", 2048, 128)
        assert not rep2.fits_llc


class TestPaperTableIV:
    """Model-vs-paper for every Table IV cell, within 1.45x."""

    TOL = 1.45

    @pytest.mark.parametrize("kern,mname", sorted(PAPER_TABLE_IV))
    def test_speedups_within_tolerance(self, kern, mname):
        model = BsplinePerfModel(MACHINES[mname])
        s = model.speedups(kern, 2048, PAPER_NTH[mname])
        pa, pb, pc = PAPER_TABLE_IV[(kern, mname)]
        if pa is not None:
            assert 1 / self.TOL < s["A"] / pa < self.TOL, f"A: {s['A']} vs {pa}"
        assert 1 / self.TOL < s["B"] / pb < self.TOL, f"B: {s['B']} vs {pb}"
        assert 1 / self.TOL < s["C"] / pc < self.TOL, f"C: {s['C']} vs {pc}"

    def test_speedup_ordering_vgl_largest(self):
        # On every machine the paper's VGL speedups dwarf VGH's (the
        # baseline VGL was the worst code).
        for mname, m in MACHINES.items():
            model = BsplinePerfModel(m)
            nth = PAPER_NTH[mname]
            vgl = model.speedups("vgl", 2048, nth)
            vgh = model.speedups("vgh", 2048, nth)
            assert vgl["B"] > vgh["B"]


class TestFig8And9:
    def test_fig8_knl_n4096_shape(self):
        # Paper Fig. 8 at N=4096: 1.85x (V), 6.4x (VGL), 2.5x (VGH).
        model = BsplinePerfModel(KNL)
        b = {k: model.speedups(k, 4096, 1)["B"] for k in ("v", "vgl", "vgh")}
        assert 1.3 < b["v"] < 2.4
        assert 4.5 < b["vgl"] < 10.5
        assert 1.9 < b["vgh"] < 3.6
        assert b["vgl"] > b["vgh"] > b["v"]  # the paper's ordering

    def test_fig9_knl_efficiency_above_80pct_at_16(self):
        # Paper: "parallel efficiency for nth=16 is greater than 90%".
        model = BsplinePerfModel(KNL)
        eff = model.nested_efficiency("vgh", 2048, 16)
        assert eff > 0.80

    def test_fig9_efficiency_decreases_with_threads(self):
        model = BsplinePerfModel(KNL)
        effs = [model.nested_efficiency("vgh", 2048, n) for n in (2, 4, 8, 16)]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_bdw_limited_to_2_threads(self):
        # Paper Sec. VI-C: BDW/BGQ scale to only ~2 threads at 80% eff.
        model = BsplinePerfModel(BDW)
        assert model.nested_efficiency("vgh", 2048, 2) > 0.7
        assert model.nested_efficiency("vgh", 2048, 8) < model.nested_efficiency(
            "vgh", 2048, 2
        )


class TestFig7Shapes:
    def test_fig7a_soa_gain_fades_at_large_n_on_knl(self):
        # "Almost no speedup is obtained on KNC and KNL at N=2048 and 4096"
        # relative to the small-N gain.
        model = BsplinePerfModel(KNL)

        def a_gain(n):
            return (
                model.evaluate("vgh", "soa", n).evals_per_sec
                / model.evaluate("vgh", "aos", n).evals_per_sec
            )

        assert a_gain(256) > a_gain(4096)

    def test_fig7b_tiling_restores_large_n_throughput(self):
        # Tiled throughput at N=4096 within 25% of the N=256 level (the
        # "sustained throughput across problem sizes" claim).
        model = BsplinePerfModel(KNL)
        t_small = model.evaluate("vgh", "aosoa", 256, 256).throughput
        nb, _ = model.best_tile_size("vgh", 4096)
        t_large = model.evaluate("vgh", "aosoa", 4096, nb).throughput
        assert t_large > 0.75 * t_small

    def test_untiled_throughput_collapses_with_n(self):
        model = BsplinePerfModel(KNL)
        t256 = model.evaluate("vgh", "soa", 256).throughput
        t4096 = model.evaluate("vgh", "soa", 4096).throughput
        assert t4096 < 0.8 * t256
