"""Tests for the application-level profile model (Tables II/III)."""

import numpy as np
import pytest

from repro.hwsim import BDW, KNC, KNL, MACHINES, AppWorkload, MiniQmcProfileModel


class TestWorkload:
    def test_coral_defaults(self):
        w = AppWorkload()
        assert w.n_orbitals == 128
        assert w.n_electrons == 256
        assert w.n_ions == 64
        assert w.entries_per_move == 320


class TestComponentTimes:
    def test_all_positive(self):
        t = MiniQmcProfileModel(KNL).component_times()
        assert set(t) == {"bspline", "distance_tables", "jastrow", "rest"}
        assert all(v > 0 for v in t.values())

    def test_soa_tables_faster(self):
        m = MiniQmcProfileModel(KNL)
        aos = m.component_times("aos", "aos")
        soa = m.component_times("aos", "soa")
        assert soa["distance_tables"] < aos["distance_tables"]
        assert soa["jastrow"] < aos["jastrow"]
        assert soa["bspline"] == aos["bspline"]  # untouched group

    def test_aosoa_bspline_fastest(self):
        m = MiniQmcProfileModel(KNL)
        t_aos = m.component_times("aos")["bspline"]
        t_soa = m.component_times("soa")["bspline"]
        t_tiled = m.component_times("aosoa")["bspline"]
        assert t_tiled < t_soa < t_aos


class TestTable2:
    def test_shares_sum_to_100(self):
        for m in MACHINES.values():
            shares = MiniQmcProfileModel(m).table2_profile()
            assert np.isclose(sum(shares.values()), 100.0)

    def test_three_groups_dominate(self):
        # Paper: "Their total amounts to 60%-80% across the platforms".
        for m in MACHINES.values():
            s = MiniQmcProfileModel(m).table2_profile()
            known = s["bspline"] + s["distance_tables"] + s["jastrow"]
            assert 45.0 < known < 90.0

    def test_bdw_knl_within_paper_ballpark(self):
        # The two calibration anchors stay near Table II.
        paper = {"BDW": (18, 30, 13), "KNL": (21, 34, 19)}
        for name, (pb, pd, pj) in paper.items():
            s = MiniQmcProfileModel(MACHINES[name]).table2_profile()
            assert abs(s["bspline"] - pb) < 10
            assert abs(s["distance_tables"] - pd) < 10
            assert abs(s["jastrow"] - pj) < 10


class TestTable3:
    def test_bspline_dominates_after_dt_jastrow_optimization(self):
        # Paper: "B-spline routines consume more than 55% of run time".
        for name in ("KNL", "BDW"):
            s = MiniQmcProfileModel(MACHINES[name]).table3_profile()
            assert s["bspline"] > 55.0

    def test_knl_close_to_paper(self):
        s = MiniQmcProfileModel(KNL).table3_profile()
        paper = {"bspline": 68.5, "distance_tables": 20.3, "jastrow": 11.2}
        for k, v in paper.items():
            assert abs(s[k] - v) < 8.0

    def test_shares_renormalized_over_three_groups(self):
        s = MiniQmcProfileModel(KNC).table3_profile()
        assert set(s) == {"bspline", "distance_tables", "jastrow"}
        assert np.isclose(sum(s.values()), 100.0)

    def test_transition_from_table2(self):
        # The central qualitative claim: optimizing DT/Jastrow raises the
        # B-spline share on every machine.
        for m in MACHINES.values():
            model = MiniQmcProfileModel(m)
            t2 = model.table2_profile()
            t3 = model.table3_profile()
            assert t3["bspline"] > t2["bspline"]
