"""Tests for the multi-node strong-scaling model (the 16-KNL-node claim)."""

import numpy as np
import pytest

from repro.hwsim import BDW, KNL, recovery_overhead_curve, strong_scaling_curve


class TestStrongScaling:
    def test_sixteen_knl_nodes_reduce_time_over_13x(self):
        # Paper Sec. I: "more than 14x reduction in the time-to-solution
        # on 16 KNL nodes"; the model lands at ~13.5x (Fig. 9 residual).
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        final = pts[-1]
        assert final.n_nodes == 16
        assert final.time_reduction > 13.0

    def test_monotone_in_nodes(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        reductions = [p.time_reduction for p in pts]
        assert all(a < b for a, b in zip(reductions, reductions[1:]))

    def test_one_node_is_unity(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048, node_counts=(1,))
        assert np.isclose(pts[0].time_reduction, 1.0)
        assert np.isclose(pts[0].parallel_efficiency, 1.0)

    def test_efficiency_declines(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        effs = [p.parallel_efficiency for p in pts]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_tile_size_shrinks_with_nodes(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        assert pts[-1].tile_size <= pts[0].tile_size
        assert pts[-1].tile_size <= 2048 // 16

    def test_bdw_scales_worse_than_knl(self):
        # Paper Sec. VI-C: Xeon scaling limited by the LLC input set.
        knl = strong_scaling_curve(KNL, "vgh", 2048, node_counts=(4,))[0]
        bdw = strong_scaling_curve(BDW, "vgh", 2048, node_counts=(4,))[0]
        assert bdw.parallel_efficiency < knl.parallel_efficiency


class TestRecoveryOverhead:
    def test_one_node_run_is_the_reference(self):
        pts = recovery_overhead_curve(
            KNL, mttr_seconds=0.5, single_node_run_seconds=3600.0
        )
        assert pts[0].n_nodes == 1
        assert np.isclose(pts[0].run_seconds, 3600.0)
        assert np.isclose(pts[0].time_reduction, 1.0)

    def test_run_shrinks_along_the_scaling_curve(self):
        pts = recovery_overhead_curve(
            KNL, mttr_seconds=0.5, single_node_run_seconds=3600.0
        )
        runs = [p.run_seconds for p in pts]
        assert all(a > b for a, b in zip(runs, runs[1:]))

    def test_effective_reduction_pays_for_recovery(self):
        pts = recovery_overhead_curve(
            KNL, mttr_seconds=30.0, single_node_run_seconds=3600.0
        )
        for p in pts:
            assert 0.0 < p.effective_time_reduction <= p.time_reduction
            assert np.isclose(
                p.effective_time_reduction,
                p.time_reduction / (1.0 + p.recovery_overhead),
            )

    def test_zero_mttr_recovers_the_ideal_curve(self):
        pts = recovery_overhead_curve(
            KNL, mttr_seconds=0.0, single_node_run_seconds=3600.0
        )
        for p in pts:
            assert p.recovery_overhead == 0.0
            assert p.effective_time_reduction == p.time_reduction

    def test_expected_failures_follow_node_hours(self):
        pts = recovery_overhead_curve(
            KNL,
            mttr_seconds=1.0,
            single_node_run_seconds=3600.0,
            node_mtbf_hours=100.0,
        )
        for p in pts:
            assert np.isclose(
                p.expected_failures,
                p.n_nodes * p.run_seconds / (100.0 * 3600.0),
            )
        # 1 node-hour at MTBF=100h: 0.01 failures expected.
        assert np.isclose(pts[0].expected_failures, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError, match="mttr_seconds"):
            recovery_overhead_curve(KNL, -1.0, 100.0)
        with pytest.raises(ValueError, match="single_node_run_seconds"):
            recovery_overhead_curve(KNL, 1.0, 0.0)
        with pytest.raises(ValueError, match="node_mtbf_hours"):
            recovery_overhead_curve(KNL, 1.0, 100.0, node_mtbf_hours=0.0)
