"""Tests for the multi-node strong-scaling model (the 16-KNL-node claim)."""

import numpy as np
import pytest

from repro.hwsim import BDW, KNL, strong_scaling_curve


class TestStrongScaling:
    def test_sixteen_knl_nodes_reduce_time_over_13x(self):
        # Paper Sec. I: "more than 14x reduction in the time-to-solution
        # on 16 KNL nodes"; the model lands at ~13.5x (Fig. 9 residual).
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        final = pts[-1]
        assert final.n_nodes == 16
        assert final.time_reduction > 13.0

    def test_monotone_in_nodes(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        reductions = [p.time_reduction for p in pts]
        assert all(a < b for a, b in zip(reductions, reductions[1:]))

    def test_one_node_is_unity(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048, node_counts=(1,))
        assert np.isclose(pts[0].time_reduction, 1.0)
        assert np.isclose(pts[0].parallel_efficiency, 1.0)

    def test_efficiency_declines(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        effs = [p.parallel_efficiency for p in pts]
        assert all(a >= b - 1e-9 for a, b in zip(effs, effs[1:]))

    def test_tile_size_shrinks_with_nodes(self):
        pts = strong_scaling_curve(KNL, "vgh", 2048)
        assert pts[-1].tile_size <= pts[0].tile_size
        assert pts[-1].tile_size <= 2048 // 16

    def test_bdw_scales_worse_than_knl(self):
        # Paper Sec. VI-C: Xeon scaling limited by the LLC input set.
        knl = strong_scaling_curve(KNL, "vgh", 2048, node_counts=(4,))[0]
        bdw = strong_scaling_curve(BDW, "vgh", 2048, node_counts=(4,))[0]
        assert bdw.parallel_efficiency < knl.parallel_efficiency
