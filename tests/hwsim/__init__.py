"""Test package."""
