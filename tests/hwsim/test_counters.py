"""Tests for kernel operation counts — pinned to paper Sec. IV / VII."""

import pytest

from repro.hwsim import kernel_counts


class TestReadsAndWrites:
    def test_64N_reads_every_layout(self):
        # "64 input streams are issued to access N coefficient values."
        for kern in ("v", "vgl", "vgh"):
            for layout in ("aos", "soa"):
                assert kernel_counts(kern, layout, 100).read_values == 6400

    def test_vgh_soa_writes_10N(self):
        # Sec. VII: "64N reads and 10N writes".
        assert kernel_counts("vgh", "soa", 100).write_values == 1000

    def test_vgh_aos_writes_13N(self):
        # Sec. IV: "13N mixed-strided accumulations".
        assert kernel_counts("vgh", "aos", 100).write_values == 1300

    def test_vgl_writes_5N(self):
        assert kernel_counts("vgl", "soa", 100).write_values == 500

    def test_v_writes_N(self):
        assert kernel_counts("v", "soa", 100).write_values == 100

    def test_accumulations(self):
        c = kernel_counts("vgh", "aos", 10)
        assert c.accumulations == 64 * 13 * 10

    def test_strided_streams(self):
        assert kernel_counts("vgh", "aos", 1).strided_streams == 12
        assert kernel_counts("vgl", "aos", 1).strided_streams == 3
        assert kernel_counts("v", "aos", 1).strided_streams == 0
        assert kernel_counts("vgh", "soa", 1).strided_streams == 0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            kernel_counts("vg", "soa", 10)


class TestFlopsAndAI:
    def test_useful_flops_layout_independent(self):
        # Redundant symmetric Hessian entries are traffic, not useful work.
        assert (
            kernel_counts("vgh", "aos", 256).flops
            == kernel_counts("vgh", "soa", 256).flops
        )

    def test_flops_scale_linearly(self):
        f1 = kernel_counts("vgh", "soa", 1000).flops
        f2 = kernel_counts("vgh", "soa", 2000).flops
        assert abs(f2 - 2 * f1) < f1 * 0.01

    def test_vgh_dominant_term(self):
        # 2 flops x 64 points x 10 streams = 1280 flops per spline.
        f = kernel_counts("vgh", "soa", 10000).flops
        assert abs(f / 10000 - 1280) < 1

    def test_ai_is_low(self):
        # Paper Sec. IV: "arithmetic intensity is low at 1 FMA per
        # accumulation"; cache-aware AI for VGH/SoA is
        # 1280N / (74N * 4 bytes) ~ 4.3 flops/byte.
        ai = kernel_counts("vgh", "soa", 2048).arithmetic_intensity()
        assert 4.0 < ai < 4.6

    def test_aos_ai_below_soa_ai(self):
        # More traffic, same useful flops (paper Fig. 10 ordering).
        ai_aos = kernel_counts("vgh", "aos", 2048).arithmetic_intensity()
        ai_soa = kernel_counts("vgh", "soa", 2048).arithmetic_intensity()
        assert ai_aos < ai_soa

    def test_byte_helpers(self):
        c = kernel_counts("v", "soa", 8)
        assert c.read_bytes(4) == 64 * 8 * 4
        assert c.write_bytes(4) == 8 * 4
        assert c.ideal_bytes(4) == c.read_bytes(4) + c.write_bytes(4)
