"""Tests for machine specs — pinned to paper Table I."""

import pytest

from repro.hwsim import BDW, BGQ, KNC, KNL, MACHINES, PAPER_CORES_USED, PAPER_WALKERS


class TestTableI:
    """Every Table-I number, pinned."""

    def test_cores(self):
        assert BDW.cores == 18
        assert KNC.cores == 61
        assert KNL.cores == 68
        assert BGQ.cores == 16

    def test_smt(self):
        assert BDW.smt == 2
        assert KNC.smt == KNL.smt == BGQ.smt == 4

    def test_simd_width(self):
        assert BDW.simd_bits == 256
        assert KNC.simd_bits == KNL.simd_bits == 512
        assert BGQ.simd_bits == 256

    def test_frequency(self):
        assert BDW.freq_ghz == 2.3
        assert KNC.freq_ghz == 1.238
        assert KNL.freq_ghz == 1.4
        assert BGQ.freq_ghz == 1.6

    def test_l1(self):
        assert BDW.l1d_bytes == KNC.l1d_bytes == KNL.l1d_bytes == 32 * 1024
        assert BGQ.l1d_bytes == 16 * 1024

    def test_l2(self):
        assert BDW.l2_bytes == 256 * 1024
        assert KNC.l2_bytes == 512 * 1024
        assert KNL.l2_bytes == 1024 * 1024 and KNL.l2_cores_per_domain == 2
        assert BGQ.l2_bytes == 32 * 1024 * 1024

    def test_llc(self):
        assert BDW.llc_bytes == 45 * 1024 * 1024
        assert KNC.llc_bytes == KNL.llc_bytes == 0
        assert BGQ.llc_bytes == 32 * 1024 * 1024

    def test_stream_bandwidth(self):
        assert BDW.stream_bw == 64e9
        assert KNC.stream_bw == 177e9
        assert KNL.stream_bw == 490e9
        assert BGQ.stream_bw == 28e9


class TestDerived:
    def test_sp_lanes(self):
        assert BDW.sp_lanes == 8
        assert KNC.sp_lanes == KNL.sp_lanes == 16
        assert BGQ.sp_lanes == 4  # QPX stays 4-wide in SP

    def test_hw_threads(self):
        assert KNL.hw_threads == 272
        assert BGQ.hw_threads == 64

    def test_peak_flops_ordering(self):
        # KNL > KNC > BDW > BGQ in SP peak, as in the paper's intro.
        assert KNL.peak_sp_gflops > KNC.peak_sp_gflops > BDW.peak_sp_gflops
        assert BDW.peak_sp_gflops > BGQ.peak_sp_gflops

    def test_knl_peak_magnitude(self):
        # 68 cores x 1.4 GHz x 16 lanes x 2 FMA x 2 ports ~ 6 TF.
        assert 5500 < KNL.peak_sp_gflops < 6500

    def test_shared_llc_flags(self):
        assert BDW.has_shared_llc and BGQ.has_shared_llc
        assert not KNC.has_shared_llc and not KNL.has_shared_llc

    def test_l2_total(self):
        assert KNL.l2_total_bytes == 34 * 1024 * 1024
        assert BGQ.l2_total_bytes == 32 * 1024 * 1024

    def test_machines_registry(self):
        assert set(MACHINES) == {"BDW", "KNC", "KNL", "BGQ"}

    def test_paper_run_parameters(self):
        # Sec. VI: Nw = 36/240/256/64, one walker per hardware thread used.
        assert PAPER_WALKERS == {"BDW": 36, "KNC": 240, "KNL": 256, "BGQ": 64}
        assert PAPER_CORES_USED == {"BDW": 18, "KNC": 60, "KNL": 64, "BGQ": 16}

    def test_knl_ddr_slower_than_mcdram(self):
        assert KNL.ddr_bw < KNL.stream_bw
