"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.hwsim import SetAssociativeCache


class TestBasics:
    def test_geometry(self):
        c = SetAssociativeCache(1024, assoc=4, line_bytes=64)
        assert c.n_sets == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, assoc=4, line_bytes=64)
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64 * 4, assoc=4, line_bytes=64)  # 3 sets
        with pytest.raises(ValueError):
            SetAssociativeCache(0)

    def test_cold_miss_then_hit(self):
        c = SetAssociativeCache(1024, assoc=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_stats(self):
        c = SetAssociativeCache(1024, assoc=2)
        c.access(0)
        c.access(0)
        assert c.stats.hits == 1
        assert c.stats.misses == 1
        assert c.stats.hit_rate == 0.5

    def test_flush(self):
        c = SetAssociativeCache(1024, assoc=2)
        c.access(0)
        c.flush()
        assert not c.access(0)
        assert c.stats.accesses == 1


class TestLru:
    def test_lru_eviction_order(self):
        # 2-way, 64B lines, 2 sets => lines mapping to set 0: 0, 2, 4, ...
        c = SetAssociativeCache(4 * 64, assoc=2)
        c.access_lines(np.array([0, 2]))  # fill set 0
        c.access_lines(np.array([0]))  # touch line 0 (now MRU)
        c.access_lines(np.array([4]))  # evicts line 2 (LRU)
        c.reset_stats()
        assert c.access_lines(np.array([0])) == 1  # still resident
        assert c.access_lines(np.array([2])) == 0  # was evicted

    def test_working_set_fits(self):
        c = SetAssociativeCache(64 * 64, assoc=8)  # 64 lines
        lines = np.arange(32)
        c.access_lines(lines)
        c.reset_stats()
        for _ in range(4):
            c.access_lines(lines)
        assert c.stats.hit_rate == 1.0

    def test_working_set_exceeds_capacity(self):
        c = SetAssociativeCache(16 * 64, assoc=16)  # fully assoc., 16 lines
        lines = np.arange(32)  # 2x capacity, cyclic => LRU pathological
        for _ in range(4):
            c.access_lines(lines)
        assert c.stats.hits == 0  # classic LRU cyclic-thrash result

    def test_hit_count_monotone_in_capacity(self, rng):
        trace = rng.integers(0, 256, 4000)
        rates = []
        for lines in (16, 64, 256):
            c = SetAssociativeCache(lines * 64, assoc=lines)  # fully assoc
            c.access_lines(trace)
            rates.append(c.stats.hit_rate)
        assert rates[0] <= rates[1] <= rates[2]

    def test_fully_associative_beats_direct_mapped_on_conflict_trace(self):
        # Two lines mapping to the same set thrash a direct-mapped cache.
        direct = SetAssociativeCache(8 * 64, assoc=1)  # 8 sets
        full = SetAssociativeCache(8 * 64, assoc=8)  # 1 set, 8 ways
        trace = np.array([0, 8, 0, 8, 0, 8, 0, 8])  # same set in direct
        direct.access_lines(trace)
        full.access_lines(trace)
        assert full.stats.hits > direct.stats.hits

    def test_access_lines_equals_scalar_access(self, rng):
        trace = rng.integers(0, 64, 500)
        a = SetAssociativeCache(32 * 64, assoc=4)
        b = SetAssociativeCache(32 * 64, assoc=4)
        a.access_lines(trace)
        for line in trace:
            b.access(int(line) * 64)
        assert a.stats.hits == b.stats.hits
