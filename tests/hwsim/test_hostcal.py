"""Tests for host calibration measurements."""

import numpy as np
import pytest

from repro.hwsim.hostcal import (
    HostProfile,
    measure_dispatch_overhead,
    measure_stream_bandwidth,
    predict_fused_vgh_seconds,
    profile_host,
)


class TestMeasurements:
    def test_bandwidth_plausible(self):
        bw = measure_stream_bandwidth(size_mb=8, repeats=2)
        # Anything from an SD card to an HBM stack.
        assert 1e8 < bw < 1e13

    def test_dispatch_overhead_plausible(self):
        o = measure_dispatch_overhead(repeats=2000)
        assert 1e-8 < o < 1e-3

    def test_profile_host_fields(self):
        h = profile_host()
        assert h.stream_bw > 0
        assert h.dispatch_overhead > 0


class TestPrediction:
    def test_scales_linearly_at_large_n(self):
        h = HostProfile(stream_bw=10e9, dispatch_overhead=1e-6)
        t1 = predict_fused_vgh_seconds(4096, h)
        t2 = predict_fused_vgh_seconds(8192, h)
        # Traffic dominates at large N: close to proportional.
        assert 1.8 < t2 / t1 < 2.1

    def test_overhead_floor_at_small_n(self):
        h = HostProfile(stream_bw=1e12, dispatch_overhead=1e-6)
        t = predict_fused_vgh_seconds(1, h)
        assert t >= 28 * 1e-6  # the dispatch floor

    def test_faster_memory_reduces_time(self):
        slow = HostProfile(stream_bw=5e9, dispatch_overhead=1e-6)
        fast = HostProfile(stream_bw=50e9, dispatch_overhead=1e-6)
        assert predict_fused_vgh_seconds(2048, fast) < predict_fused_vgh_seconds(
            2048, slow
        )
