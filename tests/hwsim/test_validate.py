"""Tests for the model-vs-trace validation battery."""

import pytest

from repro.hwsim import (
    validate_all,
    validate_slab_residency,
    validate_tiling_benefit,
)


class TestValidationBattery:
    def test_all_cases_pass(self):
        cases = validate_all()
        assert len(cases) >= 4
        for c in cases:
            assert c.passed, c

    def test_slab_residency_covers_both_outcomes(self):
        cases = validate_slab_residency()
        fits = {c.predicted_fits for c in cases}
        assert fits == {True, False}  # the battery spans the boundary

    def test_marginal_band_excluded(self):
        cases = validate_slab_residency()
        for c in cases:
            ratio = c.slab_bytes / c.cache_bytes
            assert ratio < 0.5 or ratio > 2.0

    def test_tiling_benefit_positive(self):
        c = validate_tiling_benefit()
        assert c.passed
        assert c.hit_rate > 0  # stores the rate *difference*

    def test_deterministic(self):
        a = validate_tiling_benefit(seed=7)
        b = validate_tiling_benefit(seed=7)
        assert a.hit_rate == b.hit_rate
