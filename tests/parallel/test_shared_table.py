"""SharedTable: zero-copy attachment and the segment lifetime rules."""

import pickle

import numpy as np
import pytest

from repro.parallel import SharedTable


@pytest.fixture
def array(rng):
    return rng.standard_normal((4, 3, 5, 6))


class TestRoundTrip:
    def test_create_holds_the_bytes(self, array, shm_sentinel):
        with SharedTable.create(array) as shared:
            np.testing.assert_array_equal(shared.array, array)
            assert shared.owner
            assert shared.nbytes == array.nbytes
            assert shared.shape == array.shape

    def test_attach_sees_identical_bits(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                np.testing.assert_array_equal(attached.array, array)
                assert not attached.owner
            finally:
                attached.close()

    def test_spec_survives_pickling(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            assert pickle.loads(pickle.dumps(owner.spec)) == owner.spec

    def test_f32_dtype_round_trips(self, shm_sentinel):
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        with SharedTable.create(arr) as shared:
            assert shared.array.dtype == np.float32
            np.testing.assert_array_equal(shared.array, arr)


class TestReadOnly:
    def test_owner_view_rejects_writes(self, array, shm_sentinel):
        with SharedTable.create(array) as shared:
            with pytest.raises(ValueError):
                shared.array[0, 0, 0, 0] = 1.0

    def test_attached_view_rejects_writes(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                with pytest.raises(ValueError):
                    attached.array[...] = 0.0
            finally:
                attached.close()


class TestLifetime:
    def test_attacher_may_not_unlink(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                with pytest.raises(ValueError, match="creating process"):
                    attached.unlink()
            finally:
                attached.close()

    def test_close_is_idempotent_and_invalidates_array(self, array, shm_sentinel):
        shared = SharedTable.create(array)
        shared.close()
        shared.close()
        with pytest.raises(ValueError, match="closed"):
            shared.array
        shared.unlink()

    def test_context_manager_removes_the_segment(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            spec = owner.spec
        with pytest.raises(FileNotFoundError):
            SharedTable.attach(spec)

    def test_refuses_empty_array(self):
        with pytest.raises(ValueError, match="empty"):
            SharedTable.create(np.empty((0, 3)))


class TestSpecValidation:
    """Regression: a stale or mismatched spec must fail loudly and early.

    Pre-fix, ``attach`` mapped ``np.ndarray(shape, dtype, buffer=shm.buf)``
    unchecked, so an oversized spec surfaced as a cryptic numpy
    ``TypeError`` deep inside a worker; and ``create`` leaked the fresh
    segment when the staging copy raised.
    """

    def test_attach_rejects_oversized_shape(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            spec = dict(owner.spec, shape=[100, 100, 100, 100])
            with pytest.raises(ValueError) as exc_info:
                SharedTable.attach(spec)
        msg = str(exc_info.value)
        assert owner.name in msg                      # names the segment
        assert str(array.nbytes) in msg               # actual bytes
        assert str(100**4 * array.itemsize) in msg    # expected bytes

    def test_attach_rejects_wider_dtype(self, shm_sentinel):
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        with SharedTable.create(arr) as owner:
            spec = dict(owner.spec, dtype="<f8")  # f4 segment, f8 spec
            with pytest.raises(ValueError, match="stale or mismatched"):
                SharedTable.attach(spec)

    def test_attach_failure_does_not_leak_an_attachment(self, array):
        # After the rejected attach, the owner must still be able to
        # close and unlink cleanly (no dangling attachment keeps a
        # mapping alive inside this process).
        owner = SharedTable.create(array)
        spec = dict(owner.spec, shape=[10**6])
        with pytest.raises(ValueError):
            SharedTable.attach(spec)
        owner.close()
        owner.unlink()

    def test_create_unlinks_segment_when_staging_fails(
        self, array, monkeypatch, shm_sentinel
    ):
        import repro.parallel.shared_table as mod

        def exploding_stage(shm, arr):
            raise RuntimeError("staging exploded on purpose")

        monkeypatch.setattr(mod, "_stage_copy", exploding_stage)
        with pytest.raises(RuntimeError, match="staging exploded"):
            SharedTable.create(array)
        # shm_sentinel asserts no /dev/shm segment was left behind.
