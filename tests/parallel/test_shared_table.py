"""SharedTable: zero-copy attachment and the segment lifetime rules."""

import pickle

import numpy as np
import pytest

from repro.parallel import SharedTable


@pytest.fixture
def array(rng):
    return rng.standard_normal((4, 3, 5, 6))


class TestRoundTrip:
    def test_create_holds_the_bytes(self, array, shm_sentinel):
        with SharedTable.create(array) as shared:
            np.testing.assert_array_equal(shared.array, array)
            assert shared.owner
            assert shared.nbytes == array.nbytes
            assert shared.shape == array.shape

    def test_attach_sees_identical_bits(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                np.testing.assert_array_equal(attached.array, array)
                assert not attached.owner
            finally:
                attached.close()

    def test_spec_survives_pickling(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            assert pickle.loads(pickle.dumps(owner.spec)) == owner.spec

    def test_f32_dtype_round_trips(self, shm_sentinel):
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        with SharedTable.create(arr) as shared:
            assert shared.array.dtype == np.float32
            np.testing.assert_array_equal(shared.array, arr)


class TestReadOnly:
    def test_owner_view_rejects_writes(self, array, shm_sentinel):
        with SharedTable.create(array) as shared:
            with pytest.raises(ValueError):
                shared.array[0, 0, 0, 0] = 1.0

    def test_attached_view_rejects_writes(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                with pytest.raises(ValueError):
                    attached.array[...] = 0.0
            finally:
                attached.close()


class TestLifetime:
    def test_attacher_may_not_unlink(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            attached = SharedTable.attach(owner.spec)
            try:
                with pytest.raises(ValueError, match="creating process"):
                    attached.unlink()
            finally:
                attached.close()

    def test_close_is_idempotent_and_invalidates_array(self, array, shm_sentinel):
        shared = SharedTable.create(array)
        shared.close()
        shared.close()
        with pytest.raises(ValueError, match="closed"):
            shared.array
        shared.unlink()

    def test_context_manager_removes_the_segment(self, array, shm_sentinel):
        with SharedTable.create(array) as owner:
            spec = owner.spec
        with pytest.raises(FileNotFoundError):
            SharedTable.attach(spec)

    def test_refuses_empty_array(self):
        with pytest.raises(ValueError, match="empty"):
            SharedTable.create(np.empty((0, 3)))
