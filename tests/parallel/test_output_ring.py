"""The :class:`SharedOutputRing`: zero-copy V/VGL/VGH output buffers.

Lifetime rules mirror the PR3 :class:`SharedTable` contract (owner
unlinks, attachers only close); on top of that, the ring's layout must
round-trip values exactly through an attach in another "process" (here
the same process, which exercises the identical mapping path) and its
spec must fail loudly when it does not match the segment.
"""

import pickle

import numpy as np
import pytest

from repro.parallel.orbital import SharedOutputRing

pytestmark = pytest.mark.usefixtures("shm_sentinel")


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
def test_round_trip_through_attach(dtype):
    with SharedOutputRing.create(2, 8, 6, dtype) as ring:
        rng = np.random.default_rng(5)
        ring.positions(1)[:] = rng.random((8, 3))
        views = ring.views(1)
        for name in ("v", "g", "l", "h"):
            views[name][:] = rng.random(views[name].shape).astype(dtype)
        attached = SharedOutputRing.attach(ring.spec)
        try:
            np.testing.assert_array_equal(
                attached.positions(1), ring.positions(1)
            )
            got = attached.views(1)
            for name in ("v", "g", "l", "h"):
                assert got[name].dtype == np.dtype(dtype)
                np.testing.assert_array_equal(got[name], views[name])
        finally:
            attached.close()


def test_stream_shapes_and_alignment():
    with SharedOutputRing.create(1, 5, 7, np.float64) as ring:
        views = ring.views(0)
        assert views["v"].shape == (5, 7)
        assert views["g"].shape == (5, 3, 7)
        assert views["l"].shape == (5, 7)
        assert views["h"].shape == (5, 6, 7)
        for offset, _, _ in ring._layout.values():
            assert offset % 16 == 0


def test_windowed_views_alias_the_rectangle():
    with SharedOutputRing.create(1, 6, 10, np.float64) as ring:
        rect = ring.views(0, rows=(2, 5), spline_range=(4, 8))
        assert rect["v"].shape == (3, 4)
        rect["v"][:] = 7.0
        full = ring.views(0)
        assert np.all(full["v"][2:5, 4:8] == 7.0)
        assert np.count_nonzero(full["v"]) == 12


def test_output_writes_land_in_shared_views():
    with SharedOutputRing.create(1, 4, 8, np.float64) as ring:
        out = ring.output(0, rows=(1, 3), spline_range=(2, 6))
        assert out.v.shape == (2, 4)
        out.v[:] = 3.0
        out.h[:] = 9.0
        full = ring.views(0)
        assert np.all(full["v"][1:3, 2:6] == 3.0)
        assert np.all(full["h"][1:3, :, 2:6] == 9.0)


def test_spec_is_picklable_and_positions_stay_float64():
    with SharedOutputRing.create(1, 3, 4, np.float32) as ring:
        spec = pickle.loads(pickle.dumps(ring.spec))
        assert spec == ring.spec
        assert ring.positions(0).dtype == np.float64
        assert ring.views(0)["v"].dtype == np.float32


def test_attach_rejects_mismatched_spec():
    with SharedOutputRing.create(1, 4, 4, np.float64) as ring:
        bad = dict(ring.spec, max_positions=4096)
        with pytest.raises(ValueError, match="stale or mismatched"):
            SharedOutputRing.attach(bad)


def test_attacher_cannot_unlink():
    with SharedOutputRing.create(1, 2, 4, np.float64) as ring:
        attached = SharedOutputRing.attach(ring.spec)
        try:
            with pytest.raises(ValueError, match="creating process"):
                attached.unlink()
        finally:
            attached.close()


def test_closed_ring_refuses_access():
    ring = SharedOutputRing.create(1, 2, 4, np.float64)
    ring.close()
    with pytest.raises(ValueError, match="closed"):
        ring.positions(0)
    ring.close()  # idempotent
    ring.unlink()


def test_invalid_slot_and_sizes():
    with pytest.raises(ValueError):
        SharedOutputRing.create(0, 2, 4, np.float64)
    with pytest.raises(ValueError):
        SharedOutputRing.create(1, 0, 4, np.float64)
    with pytest.raises(ValueError):
        SharedOutputRing.create(1, 2, 0, np.float64)
    with SharedOutputRing.create(2, 2, 4, np.float64) as ring:
        with pytest.raises(ValueError, match="no slot"):
            ring.views(2)
