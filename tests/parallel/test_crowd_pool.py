"""Crowd over processes vs the sequential crowd: bit-identical, any K."""

from dataclasses import replace

import numpy as np
import pytest

from repro.parallel import CrowdSpec, run_crowd_parallel, run_crowd_sequential

N_SWEEPS = 2
TAU = 0.35


@pytest.fixture(scope="module")
def reference(spec, table):
    return run_crowd_sequential(spec, n_sweeps=N_SWEEPS, tau=TAU, table=table)


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_parallel_matches_sequential(
        self, spec, table, reference, n_workers, shm_sentinel
    ):
        par = run_crowd_parallel(
            spec, n_workers=n_workers, n_sweeps=N_SWEEPS, tau=TAU, table=table
        )
        np.testing.assert_array_equal(par.positions, reference.positions)
        np.testing.assert_array_equal(par.log_values, reference.log_values)
        assert par.accepted == reference.accepted
        assert par.attempted == reference.attempted
        assert par.n_workers == n_workers

    def test_soa_engine_also_bit_identical(self, spec, table, shm_sentinel):
        soa = replace(spec, engine="soa")
        seq = run_crowd_sequential(soa, n_sweeps=1, tau=TAU, table=table)
        par = run_crowd_parallel(soa, n_workers=2, n_sweeps=1, tau=TAU, table=table)
        np.testing.assert_array_equal(par.positions, seq.positions)
        np.testing.assert_array_equal(par.log_values, seq.log_values)

    def test_more_workers_than_walkers(self, spec, table, shm_sentinel):
        # Idle workers (empty shards) must not perturb the merged result.
        small = replace(spec, n_walkers=2)
        seq = run_crowd_sequential(small, n_sweeps=1, tau=TAU, table=table)
        par = run_crowd_parallel(small, n_workers=4, n_sweeps=1, tau=TAU, table=table)
        np.testing.assert_array_equal(par.positions, seq.positions)
        np.testing.assert_array_equal(par.log_values, seq.log_values)
        assert par.attempted == seq.attempted


class TestResultShape:
    def test_result_accounting(self, spec, reference):
        n_el = 2 * spec.n_orbitals
        assert reference.positions.shape == (spec.n_walkers, n_el, 3)
        assert reference.attempted == spec.n_walkers * n_el * N_SWEEPS
        assert 0.0 < reference.acceptance <= 1.0
        assert reference.walkers_per_second > 0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="n_walkers"):
            CrowdSpec(n_walkers=0)
        with pytest.raises(ValueError, match="engine"):
            CrowdSpec(n_walkers=1, engine="cuda")

    def test_crowd_metrics_reach_parent(self, spec, table, obs, shm_sentinel):
        run_crowd_parallel(spec, n_workers=2, n_sweeps=1, tau=TAU, table=table)
        assert obs.registry.counter("crowd_sweeps_total").value == 2  # 1 per shard
        n_el = 2 * spec.n_orbitals
        assert (
            obs.registry.counter("crowd_moves_total").value
            == spec.n_walkers * n_el
        )
        assert obs.registry.gauge("crowd_pool_workers").value == 2


class TestStepModeParity:
    """The batched default and the per-walker fallback share one trajectory."""

    def test_sequential_walker_mode_matches_batched(
        self, spec, table, reference
    ):
        walk = run_crowd_sequential(
            spec, n_sweeps=N_SWEEPS, tau=TAU, table=table, step_mode="walker"
        )
        np.testing.assert_array_equal(walk.positions, reference.positions)
        np.testing.assert_array_equal(walk.log_values, reference.log_values)
        assert walk.accepted == reference.accepted
        assert walk.attempted == reference.attempted

    def test_parallel_walker_mode_matches_batched(
        self, spec, table, reference, shm_sentinel
    ):
        par = run_crowd_parallel(
            spec,
            n_workers=2,
            n_sweeps=N_SWEEPS,
            tau=TAU,
            table=table,
            step_mode="walker",
        )
        np.testing.assert_array_equal(par.positions, reference.positions)
        np.testing.assert_array_equal(par.log_values, reference.log_values)
        assert par.accepted == reference.accepted

    def test_rejects_unknown_step_mode(self, spec, table):
        with pytest.raises(ValueError, match="step_mode"):
            run_crowd_sequential(
                spec, n_sweeps=1, tau=TAU, table=table, step_mode="turbo"
            )
        with pytest.raises(ValueError, match="step_mode"):
            run_crowd_parallel(
                spec, n_workers=1, n_sweeps=1, tau=TAU, table=table,
                step_mode="turbo",
            )
