"""Chaos suite: injected process faults must not perturb a single bit.

The acceptance contract of the fleet layer (see ``repro.fleet``): a DMC
run whose worker is SIGKILL'd or hung mid-generation — under ``fork``
*and* ``spawn``, at multiple worker counts — produces traces
``assert_array_equal``-identical to the unfaulted sequential run, and
the supervision outcome (restarts, MTTR) is reported on the result.
"""

import multiprocessing as mp
import time

import numpy as np
import pytest

from repro.fleet import FleetConfig
from repro.parallel import (
    CrowdSpec,
    run_crowd_parallel,
    run_crowd_sequential,
    run_dmc_sharded,
    run_vmc_population,
)
from repro.resilience.faults import FaultInjector

GENS, TAU_DMC = 4, 0.04
N_STEPS, N_WARMUP, TAU_VMC = 4, 2, 0.3
N_SWEEPS = 2

START_METHODS = [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]


@pytest.fixture(scope="module")
def dmc_spec():
    return CrowdSpec(n_walkers=3, n_orbitals=2, seed=23)


@pytest.fixture(scope="module")
def dmc_reference(dmc_spec):
    """The unfaulted, unsupervised sequential run (one worker, no fleet)."""
    return run_dmc_sharded(dmc_spec, n_workers=1, n_generations=GENS, tau=TAU_DMC)


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.energy_trace, b.energy_trace)
    np.testing.assert_array_equal(a.population_trace, b.population_trace)
    np.testing.assert_array_equal(a.e_trial_trace, b.e_trial_trace)
    assert a.acceptance == b.acceptance


class TestDmcChaos:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("n_workers", [2, 3])
    def test_sigkill_mid_run_is_bit_identical(
        self, dmc_spec, dmc_reference, n_workers, start_method, shm_sentinel
    ):
        injector = FaultInjector(seed=11)
        injector.sigkill_worker(worker=1, generation=1)
        faulted = run_dmc_sharded(
            dmc_spec,
            n_workers=n_workers,
            n_generations=GENS,
            tau=TAU_DMC,
            start_method=start_method,
            fleet=FleetConfig(),
            injector=injector,
        )
        _assert_traces_equal(faulted, dmc_reference)
        assert faulted.fleet is not None
        assert faulted.fleet["restarts"] >= 1
        assert len(faulted.fleet["mttr_seconds"]) >= 1

    def test_hang_is_detected_and_replayed(
        self, dmc_spec, dmc_reference, shm_sentinel
    ):
        injector = FaultInjector(seed=11)
        injector.hang_worker(worker=0, generation=2, seconds=30.0)
        faulted = run_dmc_sharded(
            dmc_spec,
            n_workers=2,
            n_generations=GENS,
            tau=TAU_DMC,
            fleet=FleetConfig(worker_timeout=1.5),
            injector=injector,
        )
        _assert_traces_equal(faulted, dmc_reference)
        assert faulted.fleet["restarts"] >= 1
        hangs = [
            e
            for e in faulted.fleet["events"]
            if e["kind"] == "restart" and e["reason"] == "hang"
        ]
        assert hangs

    def test_supervision_without_faults_changes_nothing(
        self, dmc_spec, dmc_reference, shm_sentinel
    ):
        supervised = run_dmc_sharded(
            dmc_spec,
            n_workers=2,
            n_generations=GENS,
            tau=TAU_DMC,
            fleet=FleetConfig(),
        )
        _assert_traces_equal(supervised, dmc_reference)
        assert supervised.fleet["restarts"] == 0

    def test_elastic_growth_keeps_traces(
        self, dmc_spec, dmc_reference, shm_sentinel
    ):
        # A microscopic latency budget makes every generation "too slow",
        # so the fleet grows one worker per generation up to the cap.
        grown = run_dmc_sharded(
            dmc_spec,
            n_workers=1,
            n_generations=GENS,
            tau=TAU_DMC,
            fleet=FleetConfig(elastic=True, latency_budget=1e-9, max_workers=3),
        )
        _assert_traces_equal(grown, dmc_reference)
        assert grown.fleet["scale_events"] >= 1
        assert grown.fleet["final_workers"] == 3

    def test_elastic_shrink_keeps_traces(
        self, dmc_spec, dmc_reference, shm_sentinel
    ):
        # A huge budget means ample slack: the fleet drains to min_workers.
        shrunk = run_dmc_sharded(
            dmc_spec,
            n_workers=3,
            n_generations=GENS,
            tau=TAU_DMC,
            fleet=FleetConfig(elastic=True, latency_budget=1e9, max_workers=3),
        )
        _assert_traces_equal(shrunk, dmc_reference)
        assert shrunk.fleet["final_workers"] == 1

    def test_aggressive_rebalancing_keeps_traces(
        self, dmc_spec, dmc_reference, shm_sentinel
    ):
        # threshold=0 migrates on any skew — moving walkers between
        # shards every generation must never touch the trajectories.
        balanced = run_dmc_sharded(
            dmc_spec,
            n_workers=2,
            n_generations=GENS,
            tau=TAU_DMC,
            fleet=FleetConfig(rebalance_threshold=0.0),
        )
        _assert_traces_equal(balanced, dmc_reference)

    def test_injector_requires_fleet(self, dmc_spec):
        injector = FaultInjector(seed=11)
        injector.sigkill_worker(worker=0, generation=0)
        with pytest.raises(ValueError, match="fleet"):
            run_dmc_sharded(
                dmc_spec, n_workers=2, n_generations=1, injector=injector
            )


class TestStatefulChaos:
    """VMC and crowd shards are stateful: recovery means journal replay."""

    def test_vmc_survives_sigkill(self, spec, table, shm_sentinel):
        reference = run_vmc_population(
            spec,
            n_steps=N_STEPS,
            n_warmup=N_WARMUP,
            tau=TAU_VMC,
            table=table,
            processes=False,
        )
        injector = FaultInjector(seed=11)
        injector.sigkill_worker(worker=0, generation=0)
        faulted = run_vmc_population(
            spec,
            n_workers=2,
            n_steps=N_STEPS,
            n_warmup=N_WARMUP,
            tau=TAU_VMC,
            table=table,
            fleet=FleetConfig(),
            injector=injector,
        )
        np.testing.assert_array_equal(faulted.energies, reference.energies)
        assert faulted.acceptance == reference.acceptance

    def test_crowd_survives_sigkill(self, spec, table, shm_sentinel):
        reference = run_crowd_sequential(
            spec, n_sweeps=N_SWEEPS, tau=TAU_VMC, table=table
        )
        injector = FaultInjector(seed=11)
        injector.sigkill_worker(worker=1, generation=0)
        faulted = run_crowd_parallel(
            spec,
            n_workers=2,
            n_sweeps=N_SWEEPS,
            tau=TAU_VMC,
            table=table,
            fleet=FleetConfig(),
            injector=injector,
        )
        np.testing.assert_array_equal(faulted.positions, reference.positions)
        np.testing.assert_array_equal(faulted.log_values, reference.log_values)

    def test_vmc_injector_requires_fleet(self, spec, table):
        injector = FaultInjector(seed=11)
        injector.sigkill_worker(worker=0, generation=0)
        with pytest.raises(ValueError, match="fleet"):
            run_vmc_population(
                spec, n_workers=2, table=table, injector=injector
            )
        with pytest.raises(ValueError, match="fleet"):
            run_crowd_parallel(
                spec,
                n_workers=2,
                n_sweeps=1,
                tau=TAU_VMC,
                table=table,
                injector=injector,
            )


# -- hung-initializer recovery (regression: the init handshake must honor
# -- its deadline; pre-fix, restart_worker/add_worker passed timeout=None
# -- and a replacement that hung during init wedged recovery forever) ----


def _hang_on_flag_init(worker_id: int, flag_dir: str):
    """Initializer that hangs when its worker's flag file exists.

    The first spawn of each worker finds no flag and comes up normally;
    arming the fault is just touching ``hang-<worker_id>`` — so the
    *replacement* (or a grown worker) is the one that hangs, exercising
    the initializer leg of the recovery path.
    """
    import os
    import time

    if os.path.exists(os.path.join(flag_dir, f"hang-{worker_id}")):
        time.sleep(60.0)

    class _Idle:
        def whoami(self):
            return worker_id

    return _Idle()


class TestHungInitializerRecovery:
    def test_restart_worker_honors_its_deadline(self, tmp_path):
        from repro.parallel import ProcessCrowdPool, WorkerTimeout

        with ProcessCrowdPool(2, _hang_on_flag_init, (str(tmp_path),)) as pool:
            assert pool.broadcast("whoami") == [0, 1]
            (tmp_path / "hang-0").touch()
            t0 = time.monotonic()
            with pytest.raises(WorkerTimeout, match="initializer"):
                pool.restart_worker(0, timeout=0.5)
            elapsed = time.monotonic() - t0
            assert elapsed < 10.0, (
                f"restart_worker ignored its deadline ({elapsed:.1f}s)"
            )
            # The stuck replacement was killed, not left hanging around.
            assert not pool.alive(0)
            # The rest of the pool still serves.
            pool.start_call(1, "whoami")
            assert pool.finish_call(1, timeout=5.0) == 1
            # Disarm and recover the slot for real.
            (tmp_path / "hang-0").unlink()
            pool.restart_worker(0, timeout=10.0)
            assert pool.broadcast("whoami") == [0, 1]

    def test_add_worker_honors_its_deadline(self, tmp_path):
        from repro.parallel import ProcessCrowdPool, WorkerTimeout

        with ProcessCrowdPool(1, _hang_on_flag_init, (str(tmp_path),)) as pool:
            (tmp_path / "hang-1").touch()
            t0 = time.monotonic()
            with pytest.raises(WorkerTimeout, match="initializer"):
                pool.add_worker(timeout=0.5)
            assert time.monotonic() - t0 < 10.0
            # The failed growth left the pool at its previous size, with
            # no zombie replacement process behind it.
            assert len(pool) == 1
            assert len(pool._procs) == 1
            assert pool.broadcast("whoami") == [0]
            (tmp_path / "hang-1").unlink()
            assert pool.add_worker(timeout=10.0) == 1
            assert pool.broadcast("whoami") == [0, 1]
