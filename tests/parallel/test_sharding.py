"""Deterministic sharding and per-walker streams — the bit-identity base."""

import numpy as np
import pytest

from repro.parallel import shard_slices, walker_rng, walker_seed_sequence


class TestShardSlices:
    def test_contiguous_in_order(self):
        assert shard_slices(10, 3) == [slice(0, 4), slice(4, 7), slice(7, 10)]

    def test_covers_every_item_exactly_once(self):
        for n_items in range(9):
            for n_shards in range(1, 6):
                slices = shard_slices(n_items, n_shards)
                assert len(slices) == n_shards
                merged = [i for sl in slices for i in range(sl.start, sl.stop)]
                assert merged == list(range(n_items))

    def test_extra_items_go_to_leading_shards(self):
        assert [sl.stop - sl.start for sl in shard_slices(7, 4)] == [2, 2, 2, 1]

    def test_more_shards_than_items_leaves_empties(self):
        assert [sl.stop - sl.start for sl in shard_slices(2, 4)] == [1, 1, 0, 0]

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError, match="n_items"):
            shard_slices(-1, 2)
        with pytest.raises(ValueError, match="n_shards"):
            shard_slices(3, 0)


class TestWalkerStreams:
    def test_stream_is_a_function_of_identity_only(self):
        a = walker_rng(7, 3, stream=1).random(4)
        b = walker_rng(7, 3, stream=1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_walkers_and_streams_are_distinct(self):
        draws = {
            (w, s): tuple(walker_rng(7, w, stream=s).random(2))
            for w in range(4)
            for s in range(2)
        }
        assert len(set(draws.values())) == len(draws)

    def test_spawn_key_encodes_walker_and_stream(self):
        ss = walker_seed_sequence(11, 5, stream=1)
        assert ss.entropy == 11
        assert ss.spawn_key == (5, 1)

    def test_rejects_negative_walker(self):
        with pytest.raises(ValueError, match="walker"):
            walker_seed_sequence(1, -1)
