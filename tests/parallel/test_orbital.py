"""Opt C orbital-axis sharding: the bitwise fan-out contract.

The tentpole promise of the orbital shard layer is absolute: for every
shard count the planner realizes, every kernel, both start methods and
both dtypes, the concatenated block results are
``assert_array_equal``-identical to the single full-width engine — and
the drivers that mount the fan-out (`run_crowd_parallel`,
`run_vmc_population`, `run_dmc_sharded` with ``split="orbitals"``)
propagate trajectories bit-identical to their sequential references.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.config import SOURCE_TUNED, RunConfig
from repro.core.batched import BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.obs import kernel_bytes_moved
from repro.parallel import (
    CrowdSpec,
    plan_orbital_blocks,
    resolve_split,
    run_crowd_parallel,
    run_crowd_sequential,
    run_dmc_sharded,
    run_vmc_population,
)
from repro.parallel.orbital import OrbitalEvaluator, choose_split

START_METHODS = [m for m in ("fork", "spawn") if m in mp.get_all_start_methods()]

N_SPLINES = 7  # prime: N % shards != 0 for every tested shard count
GRID = (8, 8, 8)


def _problem(dtype, n_splines=N_SPLINES, batch=5):
    rng = np.random.default_rng(314)
    table = rng.standard_normal((*GRID, n_splines)).astype(dtype)
    grid = Grid3D(*GRID, (1.0, 1.0, 1.0))
    positions = np.random.default_rng(27).random((batch, 3))
    return grid, table, positions


class TestFanoutBitIdentity:
    @pytest.mark.parametrize("start_method", START_METHODS)
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_all_kernels_match_single_engine(
        self, shards, dtype, start_method, shm_sentinel
    ):
        grid, table, positions = _problem(dtype)
        reference = BsplineBatched(grid, table)
        with OrbitalEvaluator(
            grid, table, orbital_shards=shards, start_method=start_method
        ) as fanned:
            assert fanned.n_blocks == len(
                plan_orbital_blocks(N_SPLINES, shards)
            )
            for kind in (Kind.V, Kind.VGL, Kind.VGH):
                want = reference.new_output(kind, n=len(positions))
                reference.evaluate_batch(kind, positions, want)
                got = fanned.new_output(kind, n=len(positions))
                fanned.evaluate_batch(kind, positions, got)
                for stream in kind.streams:
                    np.testing.assert_array_equal(
                        getattr(got, stream), getattr(want, stream)
                    )

    def test_row_groups_and_streaming_through_small_ring(self, shm_sentinel):
        # processes > shards adds row groups; a batch larger than the
        # ring slot streams through in pieces — both bitwise-free.
        grid, table, positions = _problem("float64", n_splines=8, batch=11)
        reference = BsplineBatched(grid, table)
        want = reference.new_output(Kind.VGH, n=11)
        reference.evaluate_batch(Kind.VGH, positions, want)
        with OrbitalEvaluator(
            grid, table, processes=4, orbital_shards=2, max_positions=3
        ) as fanned:
            assert (fanned.n_row_groups, fanned.n_blocks) == (2, 2)
            got = fanned.new_output(Kind.VGH, n=11)
            fanned.evaluate_batch(Kind.VGH, positions, got)
        for stream in Kind.VGH.streams:
            np.testing.assert_array_equal(
                getattr(got, stream), getattr(want, stream)
            )

    def test_pipe_gather_baseline_matches_ring(self, shm_sentinel):
        grid, table, positions = _problem("float64")
        with OrbitalEvaluator(grid, table, orbital_shards=2) as fanned:
            ring_out = fanned.new_output(Kind.VGH, n=len(positions))
            fanned.evaluate_batch(Kind.VGH, positions, ring_out)
            pipe_out = fanned.new_output(Kind.VGH, n=len(positions))
            fanned.evaluate_batch_pipe(Kind.VGH, positions, pipe_out)
        for stream in Kind.VGH.streams:
            np.testing.assert_array_equal(
                getattr(pipe_out, stream), getattr(ring_out, stream)
            )

    def test_engine_protocol_delegation(self, shm_sentinel):
        grid, table, _ = _problem("float64")
        with OrbitalEvaluator(grid, table, orbital_shards=2) as fanned:
            assert fanned.n_splines == N_SPLINES
            assert fanned.dtype == np.dtype("float64")
            out = fanned.new_output(Kind.V, n=2)
            assert out.v.shape == (2, N_SPLINES)
            with pytest.raises(AttributeError):
                fanned._no_such_private_attr

    def test_rejects_undersized_pool_and_closed_use(self, shm_sentinel):
        grid, table, positions = _problem("float64", n_splines=8)
        with pytest.raises(ValueError, match="cannot serve"):
            OrbitalEvaluator(grid, table, processes=1, orbital_shards=2)
        fanned = OrbitalEvaluator(grid, table, orbital_shards=2)
        fanned.close()
        fanned.close()  # idempotent
        out = BsplineBatched(grid, table).new_output(Kind.V, n=len(positions))
        with pytest.raises(RuntimeError, match="closed"):
            fanned.evaluate_batch(Kind.V, positions, out)


class TestSupervisedChaos:
    def test_sigkill_mid_block_recovers_bit_identical(self, shm_sentinel):
        grid, table, positions = _problem("float64")
        reference = BsplineBatched(grid, table)
        want = reference.new_output(Kind.VGH, n=len(positions))
        reference.evaluate_batch(Kind.VGH, positions, want)
        with OrbitalEvaluator(
            grid, table, orbital_shards=2, supervise=True
        ) as fanned:
            fanned.arm_fault(1, "sigkill")
            got = fanned.new_output(Kind.VGH, n=len(positions))
            fanned.evaluate_batch(Kind.VGH, positions, got)
            fleet = fanned.fleet
            assert fleet["restarts"] == 1
        for stream in Kind.VGH.streams:
            np.testing.assert_array_equal(
                getattr(got, stream), getattr(want, stream)
            )


class TestSplitPolicy:
    def test_walkers_policy_is_literal(self):
        assert resolve_split(4, 8, 48, split="walkers") == ("walkers", 1)
        with pytest.raises(ValueError, match="cannot honour"):
            resolve_split(4, 8, 48, split="walkers", orbital_shards=2)

    def test_explicit_kwarg_count_wins(self):
        mode, shards = resolve_split(2, 8, 48, split="auto", orbital_shards=3)
        assert (mode, shards) == ("orbitals", 3)
        # Clamped through the planner, never wider than N // 2.
        mode, shards = resolve_split(2, 8, 5, split="orbitals", orbital_shards=8)
        assert (mode, shards) == ("orbitals", 2)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError, match="split must be"):
            resolve_split(2, 4, 48, split="diagonal")
        with pytest.raises(ValueError, match="must be positive"):
            resolve_split(2, 4, 48, split="auto", orbital_shards=0)

    def test_auto_prefers_walkers_when_pool_is_full(self):
        assert choose_split(8, 8, 48, split="auto") == ("walkers", 1)
        assert choose_split(2, 1, 48, split="auto") == ("walkers", 1)
        assert choose_split(1, 4, 2, split="auto") == ("walkers", 1)

    def test_auto_upgrades_underfilled_pool(self):
        class GoModel:
            def nested_efficiency(self, kernel, n_splines, shards):
                return 0.9

        mode, shards = choose_split(2, 8, 48, split="auto", model=GoModel())
        assert mode == "orbitals" and shards == 4

    def test_auto_honours_perfmodel_veto(self):
        class VetoModel:
            def nested_efficiency(self, kernel, n_splines, shards):
                return 0.1

        assert choose_split(2, 8, 48, split="auto", model=VetoModel()) == (
            "walkers",
            1,
        )

    def test_auto_adopts_kwarg_provenance_config(self):
        cfg = RunConfig.from_env(orbital_shards=3)
        assert cfg.source_of("orbital_shards") == "kwarg"
        assert choose_split(8, 8, 48, split="auto", config=cfg) == (
            "orbitals",
            3,
        )

    def test_auto_adopts_env_provenance_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORBITAL_SHARDS", "2")
        cfg = RunConfig.from_env()
        assert cfg.source_of("orbital_shards") == "env"
        assert choose_split(8, 8, 48, split="auto", config=cfg) == (
            "orbitals",
            2,
        )

    def test_auto_adopts_tuned_provenance_config(self):
        cfg = RunConfig(
            orbital_shards=4,
            provenance=(("orbital_shards", SOURCE_TUNED),),
        )
        assert choose_split(8, 8, 48, split="auto", config=cfg) == (
            "orbitals",
            4,
        )

    def test_heuristic_fill_does_not_force_orbitals(self):
        # resolved_for's rung-4 fill (shards=1, heuristic) must leave the
        # auto planner free — and never trigger Opt C by itself.
        cfg = RunConfig().resolved_for(48, batch=8, dtype="float64")
        assert cfg.orbital_shards == 1
        assert cfg.source_of("orbital_shards") == "heuristic"
        assert choose_split(8, 8, 48, split="auto", config=cfg) == (
            "walkers",
            1,
        )


class TestDriverSplits:
    """Every driver's orbital path against its sequential reference."""

    SPEC = dict(n_walkers=2, n_orbitals=4, grid_shape=(8, 8, 8), seed=11)
    TAU = 0.3

    def test_crowd_orbitals_bit_identical(self, shm_sentinel):
        spec = CrowdSpec(**self.SPEC)
        want = run_crowd_sequential(spec, n_sweeps=2, tau=self.TAU)
        got = run_crowd_parallel(
            spec, n_workers=2, n_sweeps=2, tau=self.TAU, split="orbitals"
        )
        np.testing.assert_array_equal(got.positions, want.positions)
        np.testing.assert_array_equal(got.log_values, want.log_values)
        assert got.accepted == want.accepted

    def test_crowd_auto_with_explicit_shards(self, shm_sentinel):
        spec = CrowdSpec(**self.SPEC)
        want = run_crowd_sequential(spec, n_sweeps=2, tau=self.TAU)
        got = run_crowd_parallel(
            spec,
            n_workers=2,
            n_sweeps=2,
            tau=self.TAU,
            split="auto",
            orbital_shards=2,
        )
        np.testing.assert_array_equal(got.positions, want.positions)

    def test_vmc_orbitals_bit_identical(self, shm_sentinel):
        spec = CrowdSpec(**self.SPEC)
        want = run_vmc_population(
            spec, n_workers=0, n_steps=3, n_warmup=1, processes=False
        )
        got = run_vmc_population(
            spec, n_workers=2, n_steps=3, n_warmup=1, split="orbitals"
        )
        np.testing.assert_array_equal(got.energies, want.energies)
        assert got.acceptance == want.acceptance

    def test_dmc_orbitals_bit_identical(self, shm_sentinel):
        spec = CrowdSpec(**self.SPEC)
        want = run_dmc_sharded(spec, n_workers=1, n_generations=3, tau=0.05)
        got = run_dmc_sharded(
            spec, n_workers=2, n_generations=3, tau=0.05, split="orbitals"
        )
        np.testing.assert_array_equal(got.energy_trace, want.energy_trace)
        np.testing.assert_array_equal(
            got.population_trace, want.population_trace
        )
        assert got.acceptance == want.acceptance
        assert got.fleet["split"] == "orbitals"
        assert got.fleet["orbital_shards"] == 2

    def test_orbital_split_rejects_fault_injector(self, shm_sentinel):
        from repro.fleet import FleetConfig
        from repro.resilience.faults import FaultInjector

        spec = CrowdSpec(**self.SPEC)
        injector = FaultInjector(seed=1)
        injector.sigkill_worker(worker=0, generation=0)
        with pytest.raises(ValueError, match="arm_fault"):
            run_crowd_parallel(
                spec,
                n_workers=2,
                n_sweeps=1,
                tau=self.TAU,
                split="orbitals",
                injector=injector,
                fleet=FleetConfig(),
            )


class TestBlockSizedAccounting:
    """The PR10 OBS fix: modeled bytes scale with the block width."""

    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    @pytest.mark.parametrize("n_splines,shards", [(48, 4), (7, 3), (33, 8)])
    def test_sharded_bytes_sum_to_unsharded_total(
        self, kind, n_splines, shards
    ):
        itemsize = 8
        blocks = plan_orbital_blocks(n_splines, shards)
        sharded = sum(
            kernel_bytes_moved(kind, "soa", b.stop - b.start, itemsize)
            for b in blocks
        )
        assert sharded == kernel_bytes_moved(kind, "soa", n_splines, itemsize)

    def test_worker_records_block_width_not_full_width(self, obs, shm_sentinel):
        grid, table, positions = _problem("float64", n_splines=8, batch=4)
        with OrbitalEvaluator(grid, table, orbital_shards=2) as fanned:
            out = fanned.new_output(Kind.VGH, n=len(positions))
            # The pipe spelling runs _observe in-worker too, but fork
            # isolates worker-side counters; account parent-side via the
            # model instead and assert the fan-out counters we do see.
            fanned.evaluate_batch(Kind.VGH, positions, out)
            calls = obs.registry.counter(
                "orbital_fanout_calls_total", kernel="vgh", shards="2"
            )
            assert calls.value == 1
