"""Fixtures for the process-parallel tests.

The populations here are deliberately tiny (a handful of walkers, a
couple of sweeps): the contracts under test are *bitwise*, not
statistical, so one sweep already distinguishes a correct shard from a
broken one, and process spawn/join dominates the wall time anyway.

``shm_sentinel`` enforces the ISSUE's lifetime rule directly: no test
may leave a ``shared_memory`` segment behind in ``/dev/shm``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import OBS
from repro.parallel import CrowdSpec, solve_spec_table

_SHM_DIR = Path("/dev/shm")


def shm_segments() -> set[str]:
    """Names of live shared-memory segments (empty on non-Linux hosts)."""
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.iterdir()}


@pytest.fixture
def shm_sentinel():
    """Fail the test if it leaks any shared-memory segment."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture
def obs():
    """The global ``OBS``, enabled and empty; disabled and wiped after."""
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()


@pytest.fixture(autouse=True)
def _obs_stays_off():
    """Guard: no test in this package may leak an enabled OBS."""
    yield
    assert not OBS.enabled, "test left the global OBS enabled"


@pytest.fixture(scope="package")
def spec():
    """Five walkers so 2/4-worker shards are uneven (5 = 2+1+1+1)."""
    return CrowdSpec(n_walkers=5, n_orbitals=2, seed=97)


@pytest.fixture(scope="package")
def table(spec):
    """The spec's coefficient table, solved once for the whole package."""
    return solve_spec_table(spec)
