"""Workers inherit the parent's *resolved* config, never their own env.

The PR9 contract for sharded runs: the parent resolves the RunConfig
once (tuned DB or heuristic, concretized to ints) before sharding, and
every worker's batched engine runs the parent's exact plan — even if the
worker's own environment or tuning DB says otherwise.  The observable is
``_CrowdShard.plan()``: the chunk/tile/backend the engine actually built
with, plus the config dict it inherited.
"""

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.coeffs import pad_table_3d
from repro.parallel.crowd import (
    CrowdSpec,
    _init_crowd_shard,
    solve_spec_table,
)
from repro.parallel.pool import ProcessCrowdPool
from repro.parallel.shared_table import SharedTable
from repro.tune.db import TuneDB, TunedConfig, TuneShape

pytestmark = pytest.mark.usefixtures("shm_sentinel")

SPEC_KW = dict(n_walkers=4, n_orbitals=2, grid_shape=(8, 8, 8), seed=3)


def _worker_plans(spec, n_workers=2):
    """Spawn a crowd pool over the spec and gather every shard's plan."""
    table = solve_spec_table(spec)
    shared = SharedTable.create(pad_table_3d(table))
    try:
        table_spec = dict(shared.spec, n_workers=n_workers)
        with ProcessCrowdPool(n_workers, _init_crowd_shard, (spec, table_spec)) as pool:
            return pool.broadcast("plan")
    finally:
        shared.close()
        shared.unlink()


class TestInheritance:
    def test_workers_run_the_parents_resolved_plan(self):
        spec = CrowdSpec(**SPEC_KW, config=RunConfig.from_env()).resolved()
        cfg = spec.config
        assert cfg.is_resolved  # parent-side resolution happened
        for plan in _worker_plans(spec):
            assert plan["chunk"] == cfg.chunk_size
            assert plan["tile"] == cfg.tile_size
            assert plan["config"] == cfg.as_dict()

    def test_worker_env_cannot_override_shipped_config(self, monkeypatch):
        """Env set *after* parent-side resolution is inherited by the
        spawned workers — and must be ignored, because the shipped
        config already carries concrete values (rung 1 beats rung 2)."""
        spec = CrowdSpec(
            **SPEC_KW, config=RunConfig.from_env(chunk_size=3, tile_size=2)
        ).resolved()
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "7")
        monkeypatch.setenv("REPRO_TILE_SIZE", "1")
        for plan in _worker_plans(spec):
            assert plan["chunk"] == 3
            assert plan["tile"] == 2

    def test_tuned_winner_reaches_every_worker(self, monkeypatch, tmp_path):
        """End-to-end rung 3: a DB winner resolved parent-side shows up
        bit-identically in each worker's engine plan."""
        db_path = tmp_path / "db.json"
        monkeypatch.setenv("REPRO_TUNE_DB", str(db_path))
        TuneDB(path=db_path).put(
            TuneShape(2, 4, "float64", "vgh"), TunedConfig(chunk=3, tile=2)
        )
        spec = CrowdSpec(**SPEC_KW, config=RunConfig.from_env()).resolved()
        assert (spec.config.chunk_size, spec.config.tile_size) == (3, 2)
        assert spec.config.source_of("chunk_size") == "tuned"
        # Point workers at an empty DB: they must not need (or touch) it.
        monkeypatch.setenv("REPRO_TUNE_DB", str(tmp_path / "other.json"))
        plans = _worker_plans(spec)
        assert all(p["chunk"] == 3 and p["tile"] == 2 for p in plans)
        assert not (tmp_path / "other.json").exists()

    def test_all_workers_identical(self):
        spec = CrowdSpec(**SPEC_KW, config=RunConfig.from_env()).resolved()
        plans = _worker_plans(spec, n_workers=3)
        # n_walkers=4 over 3 workers: every populated shard, same plan.
        populated = [p for p in plans if p]
        assert len(populated) == 3
        assert all(p == populated[0] for p in populated[1:])

    def test_resolved_folds_deprecated_fields_into_config(self):
        with pytest.warns(DeprecationWarning):
            spec = CrowdSpec(**SPEC_KW, chunk_size=3, tile_size=2)
        resolved = spec.resolved()
        assert (resolved.chunk_size, resolved.tile_size) == (None, None)
        assert (resolved.config.chunk_size, resolved.config.tile_size) == (3, 2)
        # The resolved spec round-trips through pickle without warning
        # (what actually happens on dispatch to a spawned worker).
        import pickle

        clone = pickle.loads(pickle.dumps(resolved))
        assert clone.config == resolved.config


class TestTraceInvariance:
    def test_vmc_trace_identical_under_any_config(self):
        """Blocking is an execution detail: two different resolved
        configs must produce bitwise-identical VMC populations."""
        from repro.parallel.vmc import run_vmc_population

        def run(config):
            spec = CrowdSpec(**SPEC_KW, config=config)
            return run_vmc_population(
                spec, n_steps=2, n_warmup=1, processes=False
            )

        a = run(RunConfig.from_env(chunk_size=2, tile_size=1))
        b = run(RunConfig.from_env(chunk_size=64, tile_size=2))
        np.testing.assert_array_equal(a.energies, b.energies)
        assert a.acceptance == b.acceptance
