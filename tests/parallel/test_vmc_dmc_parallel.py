"""Sharded VMC/DMC population drivers: worker-count invariance and resume."""

import numpy as np
import pytest

from repro.parallel import CrowdSpec, run_dmc_sharded, run_vmc_population
from repro.resilience.checkpoint import CheckpointError

N_STEPS, N_WARMUP, TAU_VMC = 4, 2, 0.3
GENS, TAU_DMC = 4, 0.04


@pytest.fixture(scope="module")
def vmc_reference(spec, table):
    """The in-process (no pool) walker loop — what workers must reproduce."""
    return run_vmc_population(
        spec,
        n_steps=N_STEPS,
        n_warmup=N_WARMUP,
        tau=TAU_VMC,
        table=table,
        processes=False,
    )


class TestVmcPopulation:
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_matches_in_process_reference(
        self, spec, table, vmc_reference, n_workers, shm_sentinel
    ):
        par = run_vmc_population(
            spec,
            n_workers=n_workers,
            n_steps=N_STEPS,
            n_warmup=N_WARMUP,
            tau=TAU_VMC,
            table=table,
        )
        np.testing.assert_array_equal(par.energies, vmc_reference.energies)
        assert par.acceptance == vmc_reference.acceptance
        assert par.n_workers == n_workers

    def test_result_statistics(self, spec, vmc_reference):
        assert vmc_reference.energies.shape == (spec.n_walkers, N_STEPS)
        assert np.all(np.isfinite(vmc_reference.energies))
        assert np.isclose(
            vmc_reference.energy_mean, np.mean(vmc_reference.energies)
        )
        assert vmc_reference.energy_error > 0


@pytest.fixture(scope="module")
def dmc_spec():
    return CrowdSpec(n_walkers=3, n_orbitals=2, seed=23)


@pytest.fixture(scope="module")
def dmc_reference(dmc_spec):
    return run_dmc_sharded(dmc_spec, n_workers=1, n_generations=GENS, tau=TAU_DMC)


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.energy_trace, b.energy_trace)
    np.testing.assert_array_equal(a.population_trace, b.population_trace)
    np.testing.assert_array_equal(a.e_trial_trace, b.e_trial_trace)
    assert a.acceptance == b.acceptance


class TestDmcSharded:
    def test_worker_count_invariance(self, dmc_spec, dmc_reference, shm_sentinel):
        par = run_dmc_sharded(
            dmc_spec, n_workers=2, n_generations=GENS, tau=TAU_DMC
        )
        _assert_traces_equal(par, dmc_reference)

    def test_checkpoint_resume_across_worker_counts(
        self, dmc_spec, dmc_reference, tmp_path, shm_sentinel
    ):
        # Checkpoint a 2-worker run halfway, resume it with 1 worker:
        # the stitched trace must equal the uninterrupted reference.
        ckpt = tmp_path / "dmc"
        run_dmc_sharded(
            dmc_spec,
            n_workers=2,
            n_generations=GENS // 2,
            tau=TAU_DMC,
            checkpoint_every=GENS // 2,
            checkpoint_path=ckpt,
        )
        resumed = run_dmc_sharded(
            dmc_spec, n_workers=1, n_generations=GENS, tau=TAU_DMC, resume=ckpt
        )
        _assert_traces_equal(resumed, dmc_reference)

    def test_resume_rejects_parameter_mismatch(
        self, dmc_spec, tmp_path, shm_sentinel
    ):
        ckpt = tmp_path / "dmc"
        run_dmc_sharded(
            dmc_spec,
            n_workers=1,
            n_generations=2,
            tau=TAU_DMC,
            checkpoint_every=2,
            checkpoint_path=ckpt,
        )
        with pytest.raises(CheckpointError, match="mismatch"):
            run_dmc_sharded(
                dmc_spec,
                n_workers=1,
                n_generations=GENS,
                tau=TAU_DMC * 2,
                resume=ckpt,
            )

    def test_argument_validation(self, dmc_spec):
        with pytest.raises(ValueError, match="n_generations"):
            run_dmc_sharded(dmc_spec, n_generations=0)
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_dmc_sharded(dmc_spec, n_generations=1, checkpoint_every=1)


class TestStepModeParity:
    """Batched and per-walker step modes are bit-identical for the
    population drivers, for any worker count."""

    def test_vmc_walker_mode_in_process(self, spec, table, vmc_reference):
        walk = run_vmc_population(
            spec,
            n_steps=N_STEPS,
            n_warmup=N_WARMUP,
            tau=TAU_VMC,
            table=table,
            processes=False,
            step_mode="walker",
        )
        np.testing.assert_array_equal(walk.energies, vmc_reference.energies)
        assert walk.acceptance == vmc_reference.acceptance

    def test_vmc_walker_mode_sharded(
        self, spec, table, vmc_reference, shm_sentinel
    ):
        walk = run_vmc_population(
            spec,
            n_workers=2,
            n_steps=N_STEPS,
            n_warmup=N_WARMUP,
            tau=TAU_VMC,
            table=table,
            step_mode="walker",
        )
        np.testing.assert_array_equal(walk.energies, vmc_reference.energies)
        assert walk.acceptance == vmc_reference.acceptance

    def test_dmc_walker_mode(self, dmc_spec, dmc_reference, shm_sentinel):
        walk = run_dmc_sharded(
            dmc_spec,
            n_workers=2,
            n_generations=GENS,
            tau=TAU_DMC,
            step_mode="walker",
        )
        _assert_traces_equal(walk, dmc_reference)

    def test_rejects_unknown_step_mode(self, spec, dmc_spec, table):
        with pytest.raises(ValueError, match="step_mode"):
            run_vmc_population(spec, table=table, step_mode="turbo")
        with pytest.raises(ValueError, match="step_mode"):
            run_dmc_sharded(dmc_spec, n_generations=1, step_mode="turbo")
