"""ProcessCrowdPool: scatter/gather order, worker errors, metrics merge."""

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.obs import OBS
from repro.parallel import ProcessCrowdPool, WorkerError, WorkerTimeout


class _Echo:
    """Minimal worker state exercising calls, persistence and metrics."""

    def __init__(self, worker_id: int, bias: int = 0):
        self.worker_id = worker_id
        self.bias = bias

    def whoami(self) -> int:
        return self.worker_id

    def add(self, a, b=0):
        return self.worker_id * 100 + a + b + self.bias

    def bump(self) -> int:
        self.bias += 1
        return self.bias

    def boom(self):
        raise RuntimeError("worker kaboom")

    def record(self, n: int) -> None:
        OBS.count("pool_test_total", n)
        OBS.gauge("pool_test_last_worker", self.worker_id)
        OBS.observe("pool_test_hist", float(n))


def _init_echo(worker_id: int, bias: int = 0) -> _Echo:
    return _Echo(worker_id, bias)


def _init_fail(worker_id: int):
    raise ValueError("init exploded on purpose")


class TestScatterGather:
    def test_broadcast_gathers_in_worker_order(self):
        with ProcessCrowdPool(3, _init_echo) as pool:
            assert len(pool) == 3
            assert pool.broadcast("whoami") == [0, 1, 2]

    def test_call_scatters_per_worker_args_and_kwargs(self):
        with ProcessCrowdPool(2, _init_echo, (7,)) as pool:
            assert pool.call("add", [(1,), (2,)], b=10) == [18, 119]

    def test_call_rejects_wrong_arity(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            with pytest.raises(ValueError, match="argument tuples"):
                pool.call("whoami", [()])

    def test_worker_state_persists_between_calls(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            assert pool.broadcast("bump") == [1, 1]
            assert pool.broadcast("bump") == [2, 2]


class TestErrors:
    def test_worker_exception_carries_its_traceback(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            with pytest.raises(WorkerError) as exc_info:
                pool.broadcast("boom")
        msg = str(exc_info.value)
        assert "worker 0 failed" in msg
        assert "RuntimeError: worker kaboom" in msg

    def test_initializer_failure_propagates(self):
        with pytest.raises(WorkerError, match="init exploded on purpose"):
            ProcessCrowdPool(2, _init_fail)

    def test_rejects_nonpositive_worker_count(self):
        with pytest.raises(ValueError, match="n_workers"):
            ProcessCrowdPool(0, _init_echo)

    def test_closed_pool_refuses_calls(self):
        pool = ProcessCrowdPool(1, _init_echo)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.broadcast("whoami")

    def test_workers_exit_when_parent_is_killed(self, tmp_path):
        # Regression: a SIGKILL'd parent can never send "stop", and under
        # fork each worker inherits a copy of its own parent pipe end, so
        # EOFError alone would never fire.  The orphan guard must notice
        # the dead parent, exit the workers, and thereby let the resource
        # tracker reclaim the shared table segment.
        src = str(Path(__file__).resolve().parents[2] / "src")
        script = tmp_path / "orphan_parent.py"
        script.write_text(textwrap.dedent(f"""
            import os, signal, sys
            sys.path.insert(0, {src!r})
            import numpy as np
            from repro.parallel import ProcessCrowdPool, SharedTable

            def init(worker_id, spec):
                table = SharedTable.attach(spec)
                class Holder:
                    def close(self):
                        try:
                            table.close()
                        except BufferError:
                            pass
                return Holder()

            if __name__ == "__main__":
                shared = SharedTable.create(np.ones((2, 2, 2, 2)))
                pool = ProcessCrowdPool(2, init, (shared.spec,))
                print(",".join(str(p.pid) for p in pool._procs), flush=True)
                print(shared.name, flush=True)
                os.kill(os.getpid(), signal.SIGKILL)
        """))
        proc = subprocess.run(
            [sys.executable, str(script)], capture_output=True, text=True, timeout=60
        )
        assert proc.returncode == -9  # the self-SIGKILL, not a crash
        pid_line, segment = proc.stdout.strip().splitlines()
        pids = [int(p) for p in pid_line.split(",")]
        assert len(pids) == 2
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            alive = []
            for pid in pids:
                try:
                    os.kill(pid, 0)
                    alive.append(pid)
                except ProcessLookupError:
                    pass
            if not alive:
                break
            time.sleep(0.25)
        assert not alive, f"orphaned workers survived parent death: {alive}"
        shm_path = Path("/dev/shm") / segment
        if shm_path.parent.is_dir():
            while shm_path.exists() and time.monotonic() < deadline:
                time.sleep(0.25)
            assert not shm_path.exists(), "crashed run leaked its table segment"


class TestStructuredErrors:
    def test_worker_error_carries_structured_fields(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            with pytest.raises(WorkerError) as exc_info:
                pool.broadcast("boom")
        err = exc_info.value
        assert err.worker_id == 0
        assert err.method == "boom"
        assert "RuntimeError: worker kaboom" in err.remote_traceback
        assert err.exitcode is None

    def test_dead_worker_raises_named_error_not_pipe_error(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            pool.arm_chaos(0, "sigkill")
            with pytest.raises(WorkerError, match="worker 0 died without replying"):
                pool.broadcast("whoami")
            err = None
            try:
                pool.broadcast("whoami")  # now the pipe is already broken
            except WorkerError as e:
                err = e
            assert err is not None and err.worker_id == 0
            assert err.exitcode == -9

    def test_failures_are_counted_per_worker(self, obs):
        with ProcessCrowdPool(2, _init_echo) as pool:
            pool.arm_chaos(1, "sigkill")
            with pytest.raises(WorkerError):
                pool.broadcast("whoami")
        counter = obs.registry.counter("worker_failures_total", worker="1")
        assert counter.value >= 1

    def test_hang_surfaces_as_timeout_and_close_never_wedges(self):
        pool = ProcessCrowdPool(2, _init_echo)
        try:
            pool.arm_chaos(0, "hang", seconds=30.0)
            pool.start_call(0, "whoami")
            with pytest.raises(WorkerTimeout, match="deadline"):
                pool.finish_call(0, timeout=0.3, method="whoami")
        finally:
            t0 = time.monotonic()
            pool.close(timeout=2.0)
        # The sleeping worker was killed, not waited out.
        assert time.monotonic() - t0 < 10.0
        assert not any(proc.is_alive() for proc in pool._procs)

    def test_rejects_unknown_chaos_kind(self):
        with ProcessCrowdPool(1, _init_echo) as pool:
            with pytest.raises(ValueError, match="chaos kind"):
                pool.arm_chaos(0, "meteor")


class TestLifecycle:
    def test_ping_round_trips(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            assert pool.ping(0) is True
            assert pool.alive(0) and pool.alive(1)

    def test_restart_worker_rebuilds_state_from_initializer(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            pool.broadcast("bump")
            old_pid = pool.pids[1]
            pool.restart_worker(1)
            assert pool.pids[1] != old_pid
            # Worker 1's state was rebuilt (bias reset); worker 0 kept its.
            assert pool.broadcast("bump") == [2, 1]

    def test_restart_replaces_a_sigkilled_worker(self):
        with ProcessCrowdPool(2, _init_echo) as pool:
            pool.arm_chaos(0, "sigkill")
            with pytest.raises(WorkerError):
                pool.broadcast("whoami")
            pool.restart_worker(0)
            assert pool.broadcast("whoami") == [0, 1]

    def test_add_and_remove_worker(self):
        with ProcessCrowdPool(1, _init_echo) as pool:
            assert pool.add_worker() == 1
            assert len(pool) == 2
            assert pool.broadcast("whoami") == [0, 1]
            assert pool.remove_worker() == 1
            assert len(pool) == 1
            assert pool.broadcast("whoami") == [0]

    def test_cannot_shrink_below_one_worker(self):
        with ProcessCrowdPool(1, _init_echo) as pool:
            with pytest.raises(ValueError, match="below one worker"):
                pool.remove_worker()

    def test_restart_rejects_unknown_worker(self):
        with ProcessCrowdPool(1, _init_echo) as pool:
            with pytest.raises(ValueError, match="no worker"):
                pool.restart_worker(5)

    def test_start_method_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        with ProcessCrowdPool(1, _init_echo) as pool:
            assert pool._ctx.get_start_method() == "spawn"
            assert pool.broadcast("whoami") == [0]

    def test_start_method_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_START_METHOD", "telepathy")
        with pytest.raises(ValueError, match="REPRO_START_METHOD"):
            ProcessCrowdPool(1, _init_echo)


class TestMetricsMerge:
    def test_worker_metrics_fold_into_parent(self, obs):
        with ProcessCrowdPool(2, _init_echo) as pool:
            pool.call("record", [(3,), (4,)])
            pool.merge_metrics()
        assert obs.registry.counter("pool_test_total").value == 7
        hist = obs.registry.histogram("pool_test_hist")
        assert hist.count == 2
        assert hist.sum == 7.0
        assert obs.registry.gauge("crowd_pool_workers").value == 2

    def test_merge_is_a_no_op_when_disabled(self):
        OBS.reset()
        with ProcessCrowdPool(1, _init_echo) as pool:
            pool.call("record", [(5,)])
            pool.merge_metrics()
        assert len(OBS.registry) == 0
