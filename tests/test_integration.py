"""End-to-end integration tests across all subsystems.

Each test exercises a full pipeline rather than one module:
orbitals -> coefficient solve -> engines -> QMC -> estimators,
and the model/trace consistency of the hardware substrate.
"""

import numpy as np
import pytest

from repro.core import (
    BsplineAoSoA,
    BsplineBatched,
    Grid3D,
    Kind,
    NestedEvaluator,
    solve_coefficients_3d,
)
from repro.hwsim import (
    KNL,
    BsplinePerfModel,
    SetAssociativeCache,
    TraceBuilder,
    working_set_report,
)
from repro.lattice import Cell, PlaneWaveOrbitalSet, graphite_unit_cell
from repro.miniqmc import build_app, run_profiled
from repro.qmc import LocalEnergy, WalkerRngPool, run_vmc
from tests.qmc.test_wavefunction import build_wf


class TestOrbitalPipeline:
    def test_spline_qmc_energy_close_to_analytic_orbital_energy(self, rng):
        """The decisive cross-subsystem test: a QMC local energy computed
        through the *spline* pipeline must agree with the same quantity
        computed from the analytic orbitals the spline was fitted to.
        """
        cell = Cell.cubic(6.0)
        n_orb = 4
        pw = PlaneWaveOrbitalSet(cell, n_orb)

        # Independent analytic evaluation of grad/lap log det at the
        # current configuration via the exact orbitals.
        from repro.qmc import ParticleSet, SplineOrbitalSet, SlaterDet

        spos = SplineOrbitalSet.from_orbital_functions(
            cell, pw, (20, 20, 20), engine="fused", dtype=np.float64
        )
        electrons = ParticleSet.random("e", cell, 2 * n_orb, rng)
        det = SlaterDet(spos, electrons)

        # Analytic Slater matrix for the same electrons.
        A_up = pw.evaluate(electrons.positions[:n_orb])
        sign, logdet = np.linalg.slogdet(A_up)
        assert np.isclose(det.dets[0].log_det, logdet, atol=5e-3)

        # Per-electron gradient of log det via both routes.
        g_spline, _ = det.grad_lap(0)
        v, g, lap = pw.evaluate_vgl(electrons.positions[:1])
        ainv = np.linalg.inv(A_up)
        g_analytic = g[0] @ ainv[:, 0]
        np.testing.assert_allclose(g_spline, g_analytic, atol=5e-2)

    def test_vmc_energy_insensitive_to_engine(self):
        """Same seed, same physics: the local energy after a fixed VMC
        trajectory must be engine-independent (fused vs soa)."""
        energies = {}
        for engine in ("soa", "fused"):
            rng = np.random.default_rng(123)
            wf = build_wf(rng)  # always fused internally; rebuild manually
            # build_wf fixes engine; instead compare trajectories of the
            # same wavefunction class with different engines:
            from repro.lattice import PlaneWaveOrbitalSet, wigner_seitz_radius
            from repro.qmc import (
                ParticleSet,
                SlaterJastrow,
                SplineOrbitalSet,
                make_polynomial_radial,
            )

            rng = np.random.default_rng(123)
            cell = Cell.cubic(6.0)
            pw = PlaneWaveOrbitalSet(cell, 4)
            spos = SplineOrbitalSet.from_orbital_functions(
                cell, pw, (14, 14, 14), engine=engine, dtype=np.float64
            )
            ions = ParticleSet("ion", cell, cell.frac_to_cart(rng.random((2, 3))))
            els = ParticleSet.random("e", cell, 8, rng)
            rcut = 0.9 * 3.0
            wf = SlaterJastrow(
                els, ions, spos,
                make_polynomial_radial(0.4, rcut),
                make_polynomial_radial(0.6, rcut),
            )
            res = run_vmc(wf, np.random.default_rng(7), n_steps=3, n_warmup=1, tau=0.2)
            energies[engine] = res.energies
        np.testing.assert_allclose(energies["soa"], energies["fused"], atol=1e-6)


class TestEngineInteroperability:
    def test_nested_tiled_batched_all_agree(self, rng):
        grid = Grid3D(10, 10, 10)
        samples = rng.standard_normal((10, 10, 10, 32))
        P = solve_coefficients_3d(samples, dtype=np.float64)
        positions = grid.random_positions(5, rng)

        batched = BsplineBatched(grid, P)
        b_out = batched.new_output(5)
        batched.vgh_batch(positions, b_out)

        tiled = BsplineAoSoA(grid, P, 8)
        t_out = tiled.new_output(Kind.VGH)
        with NestedEvaluator(tiled, 3) as nested:
            nested.evaluate(Kind.VGH, positions, t_out)
        # Nested leaves the last position's results in the tiles.
        np.testing.assert_allclose(
            t_out.as_canonical()["v"], b_out.v[-1], atol=1e-9
        )
        np.testing.assert_allclose(
            t_out.as_canonical()["h"][0, 1], b_out.h[-1, 1], atol=1e-8
        )


class TestModelTraceConsistency:
    def test_model_llc_claim_verified_by_simulation(self, rng):
        """The model says a BDW Nb=64 slab fits the LLC while Nb=128 does
        not; scale the claim down 64x and verify with the real LRU cache."""
        # Scaled problem: grid 12^3, LLC-analog of 45MB/64 ~ 720KB.
        cache_bytes = 1 << 20  # 1 MB, power-of-two for the simulator
        grid = (12, 12, 12)
        fits, thrashes = {}, {}
        for nb, store in ((32, fits), (512, thrashes)):
            slab = 12**3 * nb * 4
            tb = TraceBuilder(grid, nb)
            cache = SetAssociativeCache(cache_bytes, assoc=16)
            idx = tb.random_position_indices(60, rng)
            cache.access_lines(tb.walker_trace(idx, "vgh", "soa"))
            store["slab"] = slab
            store["rate"] = cache.stats.hit_rate
        assert fits["slab"] < cache_bytes < thrashes["slab"]
        assert fits["rate"] > thrashes["rate"] + 0.15

    def test_working_set_report_matches_model_fit_decision(self):
        model = BsplinePerfModel(KNL)
        rep = working_set_report(KNL, "vgh", 2048, 512)
        # KNL has no LLC: the report and the model must agree on that.
        assert not rep.fits_llc
        assert not model.slab_fits_llc(512, 256, "vgh", "soa", 1)


class TestFullApplication:
    def test_profiled_app_runs_and_energy_is_finite(self):
        app = build_app(n_orbitals=6, grid_shape=(10, 10, 10))
        run_profiled(app, n_sweeps=2)
        est = LocalEnergy(app.wf)
        assert np.isfinite(est.total())

    def test_walker_pool_feeds_independent_apps(self):
        pool = WalkerRngPool(9)
        apps = [build_app(n_orbitals=4, grid_shape=(8, 8, 8), seed=s)
                for s in (1, 2)]
        e = []
        for app in apps:
            run_profiled(app, n_sweeps=1)
            e.append(app.wf.log_value)
        assert e[0] != e[1]
