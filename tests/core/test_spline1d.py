"""Unit tests for the bounded 1D cubic B-spline (Jastrow radials)."""

import numpy as np
import pytest

from repro.core import CubicBspline1D


class TestInterpolation:
    def test_reproduces_samples_at_knots(self):
        rng = np.random.default_rng(8)
        samples = rng.standard_normal(10)
        sp = CubicBspline1D(samples, rcut=2.0)
        r = np.linspace(0.0, 2.0, 10)[:-1]  # last knot is the cutoff => 0
        np.testing.assert_allclose(sp.evaluate(r), samples[:-1], atol=1e-10)

    def test_scalar_and_array_apis_agree(self):
        sp = CubicBspline1D(np.arange(6.0), rcut=1.0)
        assert np.isclose(sp.evaluate(0.3), sp.evaluate(np.array([0.3]))[0])

    def test_zero_beyond_cutoff(self):
        sp = CubicBspline1D(np.ones(6), rcut=1.0)
        v, dv, d2v = sp.evaluate_vgl(np.array([1.0, 1.5, 100.0]))
        assert not v.any() and not dv.any() and not d2v.any()

    def test_negative_radius_is_zero(self):
        sp = CubicBspline1D(np.ones(6), rcut=1.0)
        assert sp.evaluate(-0.1) == 0.0

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            CubicBspline1D(np.ones(3), 1.0)

    def test_rejects_bad_bc(self):
        with pytest.raises(ValueError, match="bc"):
            CubicBspline1D(np.ones(6), 1.0, bc="periodic")

    def test_rejects_nonpositive_rcut(self):
        with pytest.raises(ValueError):
            CubicBspline1D(np.ones(6), 0.0)


class TestDerivatives:
    def test_vgl_matches_finite_differences(self):
        sp = CubicBspline1D.fit_function(
            lambda r: np.exp(-r), rcut=3.0, n_knots=20
        )
        r = np.array([0.5, 1.0, 2.2])
        v, dv, d2v = sp.evaluate_vgl(r)
        eps = 1e-6
        fd1 = (sp.evaluate(r + eps) - sp.evaluate(r - eps)) / (2 * eps)
        fd2 = (sp.evaluate(r + eps) - 2 * v + sp.evaluate(r - eps)) / eps**2
        np.testing.assert_allclose(dv, fd1, atol=1e-7)
        np.testing.assert_allclose(d2v, fd2, atol=2e-3)

    def test_natural_bc_second_derivative_zero_at_origin(self):
        sp = CubicBspline1D(np.random.default_rng(9).standard_normal(12), 2.0)
        _, _, d2v = sp.evaluate_vgl(1e-12)
        assert abs(d2v) < 1e-6

    def test_clamped_bc_first_derivative(self):
        sp = CubicBspline1D(
            np.linspace(1.0, 0.0, 8), 2.0, bc="clamped", deriv0=-3.0, deriv1=0.0
        )
        _, dv0, _ = sp.evaluate_vgl(1e-12)
        assert np.isclose(dv0, -3.0, atol=1e-8)

    def test_fit_function_accuracy(self):
        sp = CubicBspline1D.fit_function(
            lambda r: np.cos(r), rcut=1.5, n_knots=24
        )
        r = np.linspace(0.05, 1.4, 20)
        np.testing.assert_allclose(sp.evaluate(r), np.cos(r), atol=5e-4)
