"""Unit tests for tiling arithmetic, candidates, autotuning and wisdom."""

import numpy as np
import pytest

from repro.core import (
    Grid3D,
    Wisdom,
    autotune_tile_size,
    candidate_tile_sizes,
    input_working_set_bytes,
    output_working_set_bytes,
    split_table,
)


class TestSplitTable:
    def test_tiles_are_contiguous_copies(self, small_table):
        tiles = split_table(small_table, 8)
        assert len(tiles) == 3
        for t in tiles:
            assert t.shape == (12, 10, 14, 8)
            assert t.flags["C_CONTIGUOUS"]
            assert t.base is None or t.base is not small_table

    def test_content_preserved(self, small_table):
        tiles = split_table(small_table, 6)
        rebuilt = np.concatenate(tiles, axis=3)
        np.testing.assert_array_equal(rebuilt, small_table)

    def test_rejects_nondivisor(self, small_table):
        with pytest.raises(ValueError, match="divide"):
            split_table(small_table, 5)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            split_table(np.zeros((4, 4, 4)), 2)


class TestWorkingSets:
    def test_input_ws_matches_paper_formula(self):
        # Paper Sec. V-B: input working set = 4 * Ng * Nb bytes (SP).
        ng = 48 * 48 * 48
        assert input_working_set_bytes(ng, 64) == 4 * ng * 64

    def test_input_ws_scales_with_threads(self):
        assert input_working_set_bytes(1000, 64, 4, 4) == 4 * input_working_set_bytes(
            1000, 64, 4, 1
        )

    def test_output_ws_vgh_soa_is_40NwNb(self):
        # Paper: "full SP output working set size in bytes for VGH is 40N Nw".
        assert output_working_set_bytes("vgh", "soa", 256, 512) == 40 * 256 * 512

    def test_output_ws_vgh_aos_is_52NwNb(self):
        # 13 streams x 4 bytes for the AoS baseline.
        assert output_working_set_bytes("vgh", "aos", 10, 8) == 52 * 10 * 8

    def test_output_ws_strong_scaling_invariant(self):
        # Nw/nth walkers x nth threads keeps the output set constant
        # (paper Sec. V-C).
        base = output_working_set_bytes("vgh", "soa", 256, 512, nth=1)
        scaled = output_working_set_bytes("vgh", "soa", 256 // 8, 512, nth=8)
        assert base == scaled

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            output_working_set_bytes("vg", "soa", 1, 1)


class TestCandidates:
    def test_paper_sweep(self):
        # "Starting at Nb = 16 ... in the multiple of two till Nb = N".
        assert candidate_tile_sizes(2048) == [16, 32, 64, 128, 256, 512, 1024, 2048]

    def test_only_divisors(self):
        assert candidate_tile_sizes(96) == [16, 32]
        assert all(96 % nb == 0 for nb in candidate_tile_sizes(96))

    def test_small_n_falls_back_to_n(self):
        assert candidate_tile_sizes(8) == [8]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            candidate_tile_sizes(0)


class TestAutotuneAndWisdom:
    def test_autotune_returns_valid_candidate(self, rng):
        grid = Grid3D(8, 8, 8)
        P = rng.standard_normal((8, 8, 8, 16)).astype(np.float32)
        best, timings = autotune_tile_size(
            grid, P, "vgh", candidates=[4, 8, 16], n_samples=2, repeats=1
        )
        assert best in (4, 8, 16)
        assert set(timings) == {4, 8, 16}
        assert all(t > 0 for t in timings.values())

    def test_wisdom_roundtrip(self, tmp_path):
        w = Wisdom(tmp_path / "wisdom.json")
        assert w.lookup("vgh", 2048, 48**3) is None
        w.record("vgh", 2048, 48**3, 512)
        assert w.lookup("vgh", 2048, 48**3) == 512
        # A fresh instance reads the persisted file.
        w2 = Wisdom(tmp_path / "wisdom.json")
        assert w2.lookup("vgh", 2048, 48**3) == 512

    def test_wisdom_keys_are_specific(self, tmp_path):
        w = Wisdom(tmp_path / "w.json")
        w.record("vgh", 2048, 48**3, 512)
        assert w.lookup("vgl", 2048, 48**3) is None
        assert w.lookup("vgh", 1024, 48**3) is None
        assert w.lookup("vgh", 2048, 48**3, dtype="float64") is None
