"""The curated API reference cannot silently drift from the packages.

``docs/API.md`` is the map of the public surface; these tests pin it to
the actual ``__all__`` of the core packages in both directions a doc can
rot: a symbol exported but never documented, and an ``__all__`` entry
that does not actually resolve.
"""

import importlib
import re
from pathlib import Path

import pytest

DOC = Path(__file__).resolve().parents[2] / "docs" / "API.md"
PACKAGES = (
    "repro.core",
    "repro.qmc",
    "repro.parallel",
    "repro.fleet",
    "repro.backends",
    "repro.serve",
    "repro.config",
    "repro.tune",
)


@pytest.fixture(scope="module")
def api_doc() -> str:
    return DOC.read_text()


@pytest.mark.parametrize("package", PACKAGES)
def test_every_public_symbol_is_documented(package, api_doc):
    mod = importlib.import_module(package)
    missing = [name for name in mod.__all__ if name not in api_doc]
    assert not missing, (
        f"{package} exports symbols absent from docs/API.md: {missing} — "
        f"document them (or drop them from __all__)"
    )


@pytest.mark.parametrize("package", PACKAGES)
def test_all_entries_resolve(package):
    mod = importlib.import_module(package)
    unresolved = [name for name in mod.__all__ if not hasattr(mod, name)]
    assert not unresolved, f"{package}.__all__ names missing attributes: {unresolved}"


def test_documented_backends_exist_in_registry(api_doc):
    """Every backend the docs name must actually be registered.

    The "Choose a kernel backend" section lists backends as table rows
    whose first cell is the registry name in backticks; a doc row for a
    backend that was renamed or removed is a lie readers will paste into
    ``--backend``.
    """
    from repro.backends import registered_backends

    parts = api_doc.split("## Choose a kernel backend", 1)
    assert len(parts) == 2, "docs/API.md lost its backend section"
    section = parts[1].split("\n## ", 1)[0]
    documented = re.findall(r"^\|\s*`([a-z][\w-]*)`", section, re.MULTILINE)
    assert documented, "backend section documents no backends"
    registry = set(registered_backends())
    ghosts = [name for name in documented if name not in registry]
    assert not ghosts, (
        f"docs/API.md documents backends not in the registry: {ghosts}"
    )


@pytest.mark.parametrize("package", PACKAGES)
def test_no_duplicate_all_entries(package):
    mod = importlib.import_module(package)
    seen, dupes = set(), []
    for name in mod.__all__:
        if name in seen:
            dupes.append(name)
        seen.add(name)
    assert not dupes, f"{package}.__all__ lists duplicates: {dupes}"
