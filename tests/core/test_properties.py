"""Property-based tests (hypothesis) for the core data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Grid3D,
    VectorSoA3D,
    WalkerTiled,
    bspline_d2weights,
    bspline_dweights,
    bspline_weights,
    candidate_tile_sizes,
    pad_spline_count,
    solve_coefficients_1d,
)

fractions = st.floats(min_value=0.0, max_value=1.0, exclude_max=True)
coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestBasisProperties:
    @given(t=fractions)
    def test_partition_of_unity(self, t):
        assert np.isclose(bspline_weights(t).sum(), 1.0, atol=1e-12)

    @given(t=fractions)
    def test_derivative_weights_sum_zero(self, t):
        assert np.isclose(bspline_dweights(t).sum(), 0.0, atol=1e-12)
        assert np.isclose(bspline_d2weights(t).sum(), 0.0, atol=1e-11)

    @given(t=fractions)
    def test_weights_nonnegative_and_bounded(self, t):
        w = bspline_weights(t)
        assert (w >= -1e-15).all()
        assert (w <= 4.0 / 6.0 + 1e-12).all()

    @given(t=fractions, c=st.floats(-10, 10), d=st.floats(-10, 10))
    def test_linear_reproduction(self, t, c, d):
        # Coefficients p_j = c*j + d must interpolate exactly to c*t + d + c*0.
        offsets = np.array([-1.0, 0.0, 1.0, 2.0])
        p = c * offsets + d
        val = float(bspline_weights(t) @ p)
        assert np.isclose(val, c * t + d, atol=1e-9 * (1 + abs(c) + abs(d)))


class TestGridProperties:
    @given(x=coords, y=coords, z=coords)
    @settings(max_examples=50)
    def test_locate_invariants(self, x, y, z):
        g = Grid3D(7, 9, 5, (1.3, 2.1, 0.7))
        i0, j0, k0, tx, ty, tz = g.locate(x, y, z)
        assert 0 <= i0 < 7 and 0 <= j0 < 9 and 0 <= k0 < 5
        assert 0.0 <= tx < 1.0 and 0.0 <= ty < 1.0 and 0.0 <= tz < 1.0

    @given(x=coords)
    @settings(max_examples=30)
    def test_locate_periodic(self, x):
        g = Grid3D(8, 8, 8, (2.0, 2.0, 2.0))
        a = g.locate(x, 0.0, 0.0)
        b = g.locate(x + 2.0, 0.0, 0.0)
        assert a[0] == b[0]
        assert np.isclose(a[3], b[3], atol=1e-6)


class TestSolveProperties:
    @given(
        data=st.lists(
            st.floats(min_value=-100, max_value=100), min_size=4, max_size=32
        )
    )
    @settings(max_examples=40)
    def test_solve_satisfies_interpolation_stencil(self, data):
        f = np.asarray(data)
        p = solve_coefficients_1d(f)
        recon = (np.roll(p, 1) + 4 * p + np.roll(p, -1)) / 6.0
        np.testing.assert_allclose(recon, f, atol=1e-8 * max(1.0, np.abs(f).max()))


class TestTilingProperties:
    @given(n=st.integers(min_value=1, max_value=1 << 16))
    def test_pad_is_multiple_and_minimal(self, n):
        padded = pad_spline_count(n, 16)
        assert padded % 16 == 0
        assert padded >= n
        assert padded - n < 16

    @given(n=st.integers(min_value=16, max_value=1 << 14))
    def test_candidates_divide_n(self, n):
        for nb in candidate_tile_sizes(n):
            assert n % nb == 0
            assert nb <= n


class TestContainerProperties:
    @given(
        rows=st.lists(
            st.tuples(
                st.floats(-1e6, 1e6), st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_aos_roundtrip(self, rows):
        aos = np.asarray(rows)
        v = VectorSoA3D.from_aos(aos)
        np.testing.assert_array_equal(v.to_aos(), aos)
        for i, row in enumerate(rows):
            np.testing.assert_array_equal(v[i], row)

    @given(
        n_tiles=st.integers(min_value=1, max_value=8),
        tile=st.integers(min_value=1, max_value=16),
    )
    def test_walker_tiled_shapes(self, n_tiles, tile):
        w = WalkerTiled(n_tiles * tile, tile)
        assert len(w) == n_tiles
        c = w.as_canonical()
        assert c["v"].shape == (n_tiles * tile,)
        assert c["g"].shape == (3, n_tiles * tile)
        assert c["h"].shape == (3, 3, n_tiles * tile)
