"""Unit tests for the 1D cubic B-spline basis (paper Eq. 5, Fig. 2a)."""

import numpy as np
import pytest

from repro.core.basis import (
    BSPLINE_A,
    BSPLINE_D2A,
    BSPLINE_DA,
    bspline_all_weights,
    bspline_d2weights,
    bspline_dweights,
    bspline_weights,
    bspline_weights_batch,
)


class TestWeightValues:
    def test_partition_of_unity_at_zero(self):
        w = bspline_weights(0.0)
        assert w.shape == (4,)
        assert np.isclose(w.sum(), 1.0)

    def test_weights_at_zero_are_basis_knot_values(self):
        # At a grid point the stencil weights are exactly (1/6, 4/6, 1/6, 0).
        w = bspline_weights(0.0)
        np.testing.assert_allclose(w, [1 / 6, 4 / 6, 1 / 6, 0.0], atol=1e-15)

    def test_weights_at_t_close_to_one(self):
        # Approaching the next knot the stencil shifts by one.
        w = bspline_weights(1.0 - 1e-12)
        np.testing.assert_allclose(w, [0.0, 1 / 6, 4 / 6, 1 / 6], atol=1e-9)

    def test_all_weights_nonnegative(self):
        t = np.linspace(0.0, 1.0, 101)
        w = bspline_weights(t)
        assert (w >= -1e-15).all()

    def test_matches_closed_forms(self):
        t = 0.37
        w = bspline_weights(t)
        assert np.isclose(w[0], (1 - t) ** 3 / 6)
        assert np.isclose(w[1], (3 * t**3 - 6 * t**2 + 4) / 6)
        assert np.isclose(w[2], (-3 * t**3 + 3 * t**2 + 3 * t + 1) / 6)
        assert np.isclose(w[3], t**3 / 6)

    def test_symmetry(self):
        # b(t) reversed equals b(1-t): the basis is symmetric.
        t = 0.23
        np.testing.assert_allclose(
            bspline_weights(t), bspline_weights(1.0 - t)[::-1], atol=1e-15
        )


class TestDerivatives:
    def test_derivative_weights_sum_to_zero(self):
        t = np.linspace(0.0, 1.0, 51)
        np.testing.assert_allclose(bspline_dweights(t).sum(axis=-1), 0.0, atol=1e-13)

    def test_second_derivative_weights_sum_to_zero(self):
        t = np.linspace(0.0, 1.0, 51)
        np.testing.assert_allclose(bspline_d2weights(t).sum(axis=-1), 0.0, atol=1e-12)

    def test_first_derivative_matches_finite_difference(self):
        t, eps = 0.4321, 1e-6
        fd = (bspline_weights(t + eps) - bspline_weights(t - eps)) / (2 * eps)
        np.testing.assert_allclose(bspline_dweights(t), fd, atol=1e-8)

    def test_second_derivative_matches_finite_difference(self):
        t, eps = 0.61, 1e-5
        fd = (
            bspline_weights(t + eps) - 2 * bspline_weights(t) + bspline_weights(t - eps)
        ) / eps**2
        np.testing.assert_allclose(bspline_d2weights(t), fd, atol=1e-5)

    def test_linear_reproduction(self):
        # Cubic B-splines reproduce linears: sum of (i-1..i+2)*w = t + 1
        # for coefficients p_j = j at stencil offsets (-1, 0, 1, 2).
        t = 0.77
        w = bspline_weights(t)
        offsets = np.array([-1.0, 0.0, 1.0, 2.0])
        assert np.isclose((w * offsets).sum(), t)

    def test_derivative_of_linear_is_one(self):
        t = 0.13
        dw = bspline_dweights(t)
        offsets = np.array([-1.0, 0.0, 1.0, 2.0])
        assert np.isclose((dw * offsets).sum(), 1.0)

    def test_second_derivative_of_quadratic(self):
        # p_j = j^2 => f(t) = t^2 + t + c'' contributions; f'' = 2 exactly.
        t = 0.5
        d2w = bspline_d2weights(t)
        offsets = np.array([-1.0, 0.0, 1.0, 2.0])
        assert np.isclose((d2w * offsets**2).sum(), 2.0)


class TestMatricesAndBatch:
    def test_matrix_rows_sum_to_unity_polynomial(self):
        # Column sums of A give the coefficients of the constant 1.
        np.testing.assert_allclose(BSPLINE_A.sum(axis=0), [0, 0, 0, 1], atol=1e-15)

    def test_da_is_derivative_of_a(self):
        # dA columns should be the polynomial derivative of A's columns.
        # d/dt [t^3, t^2, t, 1] -> [3t^2, 2t, 1, 0].
        deriv = np.zeros_like(BSPLINE_A)
        deriv[:, 1] = 3 * BSPLINE_A[:, 0]
        deriv[:, 2] = 2 * BSPLINE_A[:, 1]
        deriv[:, 3] = BSPLINE_A[:, 2]
        np.testing.assert_allclose(BSPLINE_DA, deriv, atol=1e-15)

    def test_d2a_is_derivative_of_da(self):
        deriv = np.zeros_like(BSPLINE_DA)
        deriv[:, 2] = 2 * BSPLINE_DA[:, 1]
        deriv[:, 3] = BSPLINE_DA[:, 2]
        np.testing.assert_allclose(BSPLINE_D2A, deriv, atol=1e-15)

    def test_all_weights_consistent_with_individual(self):
        t = 0.3
        a, da, d2a = bspline_all_weights(t)
        np.testing.assert_allclose(a, bspline_weights(t))
        np.testing.assert_allclose(da, bspline_dweights(t))
        np.testing.assert_allclose(d2a, bspline_d2weights(t))

    def test_batch_shapes(self):
        t = np.zeros((5, 7))
        assert bspline_weights_batch(t, 0).shape == (5, 7, 4)

    @pytest.mark.parametrize("order", [0, 1, 2])
    def test_batch_matches_scalar(self, order):
        t = np.array([0.1, 0.5, 0.9])
        batch = bspline_weights_batch(t, order)
        scalar_fn = [bspline_weights, bspline_dweights, bspline_d2weights][order]
        for i, ti in enumerate(t):
            np.testing.assert_allclose(batch[i], scalar_fn(ti))

    def test_batch_rejects_bad_order(self):
        with pytest.raises(ValueError, match="order"):
            bspline_weights_batch(np.array([0.5]), 3)
