"""Test package."""
