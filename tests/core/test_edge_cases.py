"""Edge cases: thread/tile mismatches, degenerate tilings, boundary positions."""

import numpy as np
import pytest

from repro.core import (
    BsplineAoSoA,
    BsplineSoA,
    NestedEvaluator,
    partition_tiles,
    refimpl,
)


class TestPartitionTilesOversubscribed:
    def test_more_threads_than_tiles(self):
        ranges = partition_tiles(n_tiles=3, n_threads=8)
        assert len(ranges) == 8
        # The first three threads get one tile each; the rest idle.
        assert [len(r) for r in ranges] == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_coverage_is_exact_and_ordered(self):
        for n_tiles in (1, 3, 7):
            for n_threads in (1, 2, 5, 16):
                ranges = partition_tiles(n_tiles, n_threads)
                flat = [t for r in ranges for t in r]
                assert flat == list(range(n_tiles)), (n_tiles, n_threads)

    def test_single_tile_many_threads(self):
        ranges = partition_tiles(1, 4)
        assert [len(r) for r in ranges] == [1, 0, 0, 0]

    def test_nested_evaluator_with_idle_threads(self, small_grid, small_table):
        # 24 splines / 12 per tile = 2 tiles, but 6 threads: 4 idle workers
        # must not corrupt results or deadlock.
        eng = BsplineAoSoA(small_grid, small_table, tile_size=12)
        positions = [(0.3, 0.4, 0.5)]
        with NestedEvaluator(eng, n_threads=6) as nested:
            out = eng.new_output("vgh")
            nested.evaluate("vgh", positions, out)
        ref = eng.new_output("vgh")
        eng.vgh(*positions[0], ref)
        got, want = out.as_canonical(), ref.as_canonical()
        for key in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(got[key], want[key])


class TestSingleTileAoSoA:
    def test_one_tile_layout(self, small_grid, small_table):
        eng = BsplineAoSoA(small_grid, small_table, tile_size=24)
        assert eng.n_tiles == 1
        out = eng.new_output("vgh")
        assert out.n_tiles == 1
        assert out.tiles[0].n_splines == 24

    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    def test_one_tile_matches_soa_bitwise(self, small_grid, small_table, kind):
        # With Nb == N the tiled engine is exactly one SoA engine; the
        # outputs must match bit-for-bit, not just to tolerance.
        tiled = BsplineAoSoA(small_grid, small_table, tile_size=24)
        soa = BsplineSoA(small_grid, small_table)
        t_out = tiled.new_output(kind)
        s_out = soa.new_output(kind)
        for xyz in [(0.1, 0.2, 0.3), (-4.0, 7.7, 0.0), (1.999, 1.499, 2.499)]:
            getattr(tiled, kind)(*xyz, t_out)
            getattr(soa, kind)(*xyz, s_out)
            got, want = t_out.as_canonical(), s_out.as_canonical()
            for key in got:
                np.testing.assert_array_equal(got[key], want[key], err_msg=key)


class TestBoundaryPositions:
    """Positions exactly on grid planes — where locate()'s wrap can bite."""

    def boundary_positions(self, grid):
        lx, ly, lz = (
            grid.nx * grid.deltas[0],
            grid.ny * grid.deltas[1],
            grid.nz * grid.deltas[2],
        )
        return [
            (0.0, 0.0, 0.0),  # the origin corner
            (lx, ly, lz),  # the far corner (wraps to the origin)
            (3 * grid.deltas[0], 2 * grid.deltas[1], 5 * grid.deltas[2]),
            (-1e-16, -1e-16, -1e-16),  # the % rounding trap
            (lx / 2, 0.0, lz),  # mixed: interior, plane, wrap
        ]

    def test_locate_stays_in_range(self, small_grid):
        for x, y, z in self.boundary_positions(small_grid):
            i0, j0, k0, tx, ty, tz = small_grid.locate(x, y, z)
            assert 0 <= i0 < small_grid.nx
            assert 0 <= j0 < small_grid.ny
            assert 0 <= k0 < small_grid.nz
            assert 0.0 <= tx < 1.0 and 0.0 <= ty < 1.0 and 0.0 <= tz < 1.0

    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    def test_engines_match_reference_on_boundaries(
        self, small_grid, small_table, kind
    ):
        eng = BsplineSoA(small_grid, small_table)
        for x, y, z in self.boundary_positions(small_grid):
            out = eng.new_output(kind)
            getattr(eng, kind)(x, y, z, out)
            got = out.as_canonical()
            if kind == "v":
                ref = {"v": refimpl.reference_v(small_grid, small_table, x, y, z)}
            elif kind == "vgl":
                v, g, lap = refimpl.reference_vgl(small_grid, small_table, x, y, z)
                ref = {"v": v, "g": g, "l": lap}
            else:
                v, g, h = refimpl.reference_vgh(small_grid, small_table, x, y, z)
                ref = {"v": v, "g": g, "h": h}
            for key, want in ref.items():
                np.testing.assert_allclose(
                    got[key],
                    want,
                    rtol=1e-9,
                    atol=1e-11,
                    err_msg=f"{key} at ({x}, {y}, {z})",
                )

    def test_periodic_seam_is_continuous(self, small_grid, small_table):
        # phi(L - eps) -> phi(0) as eps -> 0: no jump across the wrap.
        eng = BsplineSoA(small_grid, small_table)
        lx = small_grid.nx * small_grid.deltas[0]
        out_a, out_b = eng.new_output("v"), eng.new_output("v")
        eng.v(lx - 1e-9, 0.4, 0.6, out_a)
        eng.v(0.0, 0.4, 0.6, out_b)
        np.testing.assert_allclose(out_a.v, out_b.v, rtol=1e-6, atol=1e-8)
