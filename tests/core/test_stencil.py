"""Tests for the shared stencil machinery (views vs copies, weights)."""

import numpy as np
import pytest

from repro.core import Grid3D
from repro.core.refimpl import reference_v
from repro.core.stencil import EvalPoint, gather_block, locate_and_weights


class TestLocateAndWeights:
    def test_scaled_derivative_weights(self):
        # Derivative weights must carry 1/delta per order.
        g = Grid3D(10, 10, 10, (2.0, 2.0, 2.0))  # delta = 0.2
        pt = locate_and_weights(g, 0.31, 0.0, 0.0)
        a, da, d2a = pt.wx
        from repro.core.basis import bspline_all_weights

        raw_a, raw_da, raw_d2a = bspline_all_weights(0.31 / 0.2 - 1)
        np.testing.assert_allclose(a, raw_a, atol=1e-12)
        np.testing.assert_allclose(da, raw_da * 5.0, atol=1e-12)
        np.testing.assert_allclose(d2a, raw_d2a * 25.0, atol=1e-12)

    def test_indices_match_grid_locate(self, small_grid):
        pt = locate_and_weights(small_grid, 0.77, 0.31, 1.9)
        i0, j0, k0, *_ = small_grid.locate(0.77, 0.31, 1.9)
        assert (pt.i0, pt.j0, pt.k0) == (i0, j0, k0)


class TestGatherBlock:
    def test_interior_returns_view(self, small_grid, small_table):
        pt = locate_and_weights(small_grid, 1.0, 0.75, 1.25)  # interior
        block = gather_block(small_grid, small_table, pt)
        assert block.base is small_table or block.base is small_table.base

    def test_boundary_returns_copy(self, small_grid, small_table):
        pt = locate_and_weights(small_grid, 0.0, 0.0, 0.0)  # wraps low
        block = gather_block(small_grid, small_table, pt)
        assert block.shape == (4, 4, 4, small_table.shape[3])
        # Fancy-indexed: owns its data (or at least not a view of P).
        assert block.base is not small_table

    def test_block_contents_match_manual_gather(self, small_grid, small_table):
        for pos in [(0.02, 0.02, 0.02), (1.0, 0.7, 1.2), (1.95, 1.45, 2.45)]:
            pt = locate_and_weights(small_grid, *pos)
            block = gather_block(small_grid, small_table, pt)
            ix = small_grid.stencil_indices(pt.i0, 0)
            jy = small_grid.stencil_indices(pt.j0, 1)
            kz = small_grid.stencil_indices(pt.k0, 2)
            for a in range(4):
                for b in range(4):
                    for c in range(4):
                        np.testing.assert_array_equal(
                            block[a, b, c], small_table[ix[a], jy[b], kz[c]]
                        )

    def test_view_path_and_copy_path_agree(self, small_grid, small_table):
        # A value computed through both paths (same physical point, once
        # interior once wrapped by a lattice translation) must agree.
        v_in = reference_v(small_grid, small_table, 1.0, 0.75, 1.25)
        lx, ly, lz = small_grid.lengths
        v_out = reference_v(small_grid, small_table, 1.0 - lx, 0.75 + ly, 1.25)
        np.testing.assert_allclose(v_in, v_out, atol=1e-12)

    def test_evalpoint_slots(self):
        pt = EvalPoint(1, 2, 3, None, None, None)
        with pytest.raises(AttributeError):
            pt.extra = 1
