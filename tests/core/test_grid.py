"""Unit tests for Grid3D index arithmetic."""

import numpy as np
import pytest

from repro.core import Grid3D


class TestConstruction:
    def test_shape_and_spacings(self):
        g = Grid3D(10, 20, 40, (1.0, 2.0, 4.0))
        assert g.shape == (10, 20, 40)
        np.testing.assert_allclose(g.deltas, (0.1, 0.1, 0.1))
        np.testing.assert_allclose(g.inv_deltas, (10.0, 10.0, 10.0))

    def test_npoints(self):
        assert Grid3D(4, 5, 6).npoints == 120

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError, match="4 points"):
            Grid3D(3, 10, 10)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError, match="positive"):
            Grid3D(8, 8, 8, (1.0, 0.0, 1.0))


class TestLocate:
    def test_locate_at_grid_point(self):
        g = Grid3D(10, 10, 10)
        i0, j0, k0, tx, ty, tz = g.locate(0.3, 0.5, 0.7)
        assert (i0, j0, k0) == (3, 5, 7)
        assert abs(tx) < 1e-12 and abs(ty) < 1e-12 and abs(tz) < 1e-12

    def test_locate_interior(self):
        g = Grid3D(10, 10, 10)
        i0, _, _, tx, _, _ = g.locate(0.234, 0.0, 0.0)
        assert i0 == 2
        assert np.isclose(tx, 0.34)

    def test_locate_wraps_negative(self):
        g = Grid3D(10, 10, 10)
        i0, j0, k0, tx, *_ = g.locate(-0.05, 1.25, 2.0)
        assert i0 == 9  # -0.05 wraps to 0.95
        assert np.isclose(tx, 0.5)
        assert j0 == 2  # 1.25 wraps to 0.25
        assert k0 == 0  # 2.0 wraps to 0.0

    def test_fraction_always_in_unit_interval(self):
        g = Grid3D(12, 10, 14, (2.0, 1.5, 2.5))
        rng = np.random.default_rng(0)
        for p in rng.uniform(-10, 10, (200, 3)):
            _, _, _, tx, ty, tz = g.locate(*p)
            assert 0.0 <= tx < 1.0
            assert 0.0 <= ty < 1.0
            assert 0.0 <= tz < 1.0

    def test_indices_always_in_range(self):
        g = Grid3D(12, 10, 14, (2.0, 1.5, 2.5))
        rng = np.random.default_rng(1)
        for p in rng.uniform(-10, 10, (200, 3)):
            i0, j0, k0, *_ = g.locate(*p)
            assert 0 <= i0 < 12 and 0 <= j0 < 10 and 0 <= k0 < 14


class TestLocateBatch:
    def test_matches_scalar(self):
        g = Grid3D(12, 10, 14, (2.0, 1.5, 2.5))
        rng = np.random.default_rng(2)
        pos = rng.uniform(-5, 5, (50, 3))
        idx, frac = g.locate_batch(pos)
        for n in range(50):
            i0, j0, k0, tx, ty, tz = g.locate(*pos[n])
            assert tuple(idx[n]) == (i0, j0, k0)
            np.testing.assert_allclose(frac[n], (tx, ty, tz), atol=1e-12)

    def test_rejects_bad_shape(self):
        g = Grid3D(8, 8, 8)
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            g.locate_batch(np.zeros((5, 2)))


class TestStencilAndRandom:
    def test_stencil_interior(self):
        g = Grid3D(10, 10, 10)
        np.testing.assert_array_equal(g.stencil_indices(5, 0), [4, 5, 6, 7])

    def test_stencil_wraps_low(self):
        g = Grid3D(10, 10, 10)
        np.testing.assert_array_equal(g.stencil_indices(0, 0), [9, 0, 1, 2])

    def test_stencil_wraps_high(self):
        g = Grid3D(10, 12, 10)
        np.testing.assert_array_equal(g.stencil_indices(11, 1), [10, 11, 0, 1])

    def test_random_positions_inside_box(self):
        g = Grid3D(8, 8, 8, (2.0, 3.0, 4.0))
        pos = g.random_positions(100, np.random.default_rng(3))
        assert pos.shape == (100, 3)
        assert (pos >= 0).all()
        assert (pos < [2.0, 3.0, 4.0]).all()
