"""Tests for the batched multi-position engine."""

import numpy as np
import pytest

from repro.core import BsplineBatched, BsplineFused, Grid3D
from repro.core.batched import BatchedOutput


@pytest.fixture
def batched(small_grid, small_table):
    return BsplineBatched(small_grid, small_table)


@pytest.fixture
def fused(small_grid, small_table):
    return BsplineFused(small_grid, small_table)


@pytest.fixture
def positions(small_grid, rng):
    # Include wrap-prone points alongside random ones.
    pos = small_grid.random_positions(6, rng)
    pos[0] = (0.01, 0.01, 0.01)
    pos[1] = (1.99, 1.49, 2.49)
    return pos


class TestAgreementWithPerPosition:
    def test_v(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.v_batch(positions, out)
        single = fused.new_output("v")
        for s, (x, y, z) in enumerate(positions):
            fused.v(x, y, z, single)
            np.testing.assert_allclose(out.v[s], single.v, atol=1e-10)

    def test_vgl(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.vgl_batch(positions, out)
        single = fused.new_output("vgl")
        for s, (x, y, z) in enumerate(positions):
            fused.vgl(x, y, z, single)
            np.testing.assert_allclose(out.v[s], single.v, atol=1e-10)
            np.testing.assert_allclose(out.g[s], single.g, atol=1e-10)
            np.testing.assert_allclose(out.l[s], single.l, atol=1e-9)

    def test_vgh(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        single = fused.new_output("vgh")
        for s, (x, y, z) in enumerate(positions):
            fused.vgh(x, y, z, single)
            np.testing.assert_allclose(out.h[s], single.h, atol=1e-9)

    def test_vgh_fills_laplacian(self, batched, positions):
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        np.testing.assert_allclose(
            out.l, out.h[:, 0] + out.h[:, 3] + out.h[:, 5], atol=1e-9
        )


class TestStreamValidity:
    """Reusing one output across kernels must never serve stale numbers.

    Regression for the headline bug: ``vgh_batch`` followed by
    ``v_batch`` on the same buffer used to leave the old gradients /
    Hessians readable as if current.
    """

    def test_fresh_output_starts_with_nothing_valid(self, batched):
        assert batched.new_output(3).valid == frozenset()

    def test_each_kernel_declares_its_streams(self, batched, positions):
        out = batched.new_output(len(positions))
        batched.v_batch(positions, out)
        assert out.valid == {"v"}
        batched.vgl_batch(positions, out)
        assert out.valid == {"v", "g", "l"}
        batched.vgh_batch(positions, out)
        assert out.valid == {"v", "g", "l", "h"}

    def test_reuse_poisons_stale_streams(self, batched, positions, rng):
        # vgh -> vgl: h goes stale; vgl -> v: g and l go stale too.
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        moved = positions + 0.05
        batched.vgl_batch(moved, out)
        assert out.valid == {"v", "g", "l"}
        assert np.isnan(out.h).all(), "stale Hessian must be poisoned"
        assert np.isfinite(out.v).all() and np.isfinite(out.g).all()
        batched.v_batch(positions, out)
        assert out.valid == {"v"}
        assert np.isnan(out.g).all() and np.isnan(out.l).all()
        assert np.isfinite(out.v).all()

    def test_refreshed_streams_match_a_fresh_buffer(self, batched, positions):
        # The poison/refresh cycle must not perturb the live streams.
        reused = batched.new_output(len(positions))
        batched.vgh_batch(positions, reused)
        batched.v_batch(positions + 0.05, reused)
        batched.vgl_batch(positions, reused)
        fresh = batched.new_output(len(positions))
        batched.vgl_batch(positions, fresh)
        np.testing.assert_array_equal(reused.v, fresh.v)
        np.testing.assert_array_equal(reused.g, fresh.g)
        np.testing.assert_array_equal(reused.l, fresh.l)


class TestChunking:
    """``max_batch_bytes`` streams the batch through bounded temporaries
    with bitwise-identical results."""

    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    @pytest.mark.parametrize("chunk_positions", [1, 2, 4])
    def test_chunked_matches_unchunked_bitwise(
        self, small_grid, small_table, positions, kind, chunk_positions
    ):
        full = BsplineBatched(small_grid, small_table)
        per_position = 64 * full.n_splines * small_table.dtype.itemsize
        chunked = BsplineBatched(
            small_grid, small_table,
            max_batch_bytes=chunk_positions * per_position,
        )
        assert chunked._chunk == chunk_positions
        a, b = full.new_output(len(positions)), chunked.new_output(len(positions))
        getattr(full, f"{kind}_batch")(positions, a)
        getattr(chunked, f"{kind}_batch")(positions, b)
        np.testing.assert_array_equal(a.v, b.v)
        if kind != "v":
            np.testing.assert_array_equal(a.g, b.g)
            np.testing.assert_array_equal(a.l, b.l)
        if kind == "vgh":
            np.testing.assert_array_equal(a.h, b.h)

    def test_singleton_matches_batch_bitwise(self, batched, positions):
        # The sharding contract in repro.parallel rests on this: a
        # position's bits cannot depend on its batch-mates.
        full = batched.new_output(len(positions))
        batched.vgh_batch(positions, full)
        for s in range(len(positions)):
            one = batched.new_output(1)
            batched.vgh_batch(positions[s : s + 1], one)
            np.testing.assert_array_equal(one.v[0], full.v[s])
            np.testing.assert_array_equal(one.h[:, :], full.h[s : s + 1])

    def test_tiny_cap_clamps_to_one_position(self, small_grid, small_table):
        engine = BsplineBatched(small_grid, small_table, max_batch_bytes=1)
        assert engine._chunk == 1

    def test_rejects_nonpositive_cap(self, small_grid, small_table):
        with pytest.raises(ValueError, match="max_batch_bytes"):
            BsplineBatched(small_grid, small_table, max_batch_bytes=0)


class TestValidation:
    def test_output_shapes(self, batched):
        out = batched.new_output(5)
        assert out.v.shape == (5, 24)
        assert out.g.shape == (5, 3, 24)
        assert out.h.shape == (5, 6, 24)

    def test_rejects_bad_positions(self, batched):
        out = batched.new_output(2)
        with pytest.raises(ValueError, match=r"\(ns, 3\)"):
            batched.v_batch(np.zeros((2, 2)), out)

    def test_rejects_zero_batch(self, batched):
        with pytest.raises(ValueError):
            batched.new_output(0)

    def test_rejects_mismatched_grid(self, small_table):
        with pytest.raises(ValueError, match="does not match"):
            BsplineBatched(Grid3D(8, 8, 8), small_table)

    def test_f32_dtype_propagates(self, small_grid, small_table_f32):
        b = BsplineBatched(small_grid, small_table_f32)
        out = b.new_output(3)
        assert out.v.dtype == np.float32

    def test_direct_output_defaults_to_float64(self):
        # Regression: the default used to be float32, silently
        # downcasting double-precision tables on directly-built outputs.
        out = BatchedOutput(2, 8)
        for stream in (out.v, out.g, out.l, out.h):
            assert stream.dtype == np.float64

    def test_f64_engine_results_stay_f64(self, batched, positions):
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        assert out.v.dtype == np.float64
        assert out.h.dtype == np.float64

    def test_batch_of_one(self, batched, fused):
        out = batched.new_output(1)
        batched.vgh_batch(np.array([[0.5, 0.5, 0.5]]), out)
        single = fused.new_output("vgh")
        fused.vgh(0.5, 0.5, 0.5, single)
        np.testing.assert_allclose(out.v[0], single.v, atol=1e-10)


class _FillCounter(np.ndarray):
    """ndarray that counts ``.fill`` calls (poison-once contract probe)."""

    def fill(self, value):
        self.fill_calls = getattr(self, "fill_calls", 0) + 1
        super().fill(value)


class TestTiling:
    """Spline-axis tiling must be invisible in the bits."""

    @pytest.mark.parametrize("tile", [2, 5, 8, 16, 24, 100])
    def test_tiled_matches_untiled_bitwise(
        self, small_grid, small_table, positions, tile
    ):
        plain = BsplineBatched(small_grid, small_table)
        tiled = BsplineBatched(small_grid, small_table, tile_size=tile)
        a = plain.new_output("vgh", n=len(positions))
        b = tiled.new_output("vgh", n=len(positions))
        plain.vgh_batch(positions, a)
        tiled.vgh_batch(positions, b)
        for stream in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(
                getattr(b, stream), getattr(a, stream)
            )

    def test_width_one_tiles_are_never_emitted(self, small_grid, small_table):
        # einsum's length-1-axis inner loop sums in a different order, so
        # the iterator widens tile=1 and absorbs trailing orphan columns.
        eng = BsplineBatched(small_grid, small_table, tile_size=1)
        widths = [
            len(range(*ts.indices(eng.n_splines))) for ts in eng._tiles()
        ]
        assert all(w >= 2 for w in widths)
        assert sum(widths) == eng.n_splines

        odd = BsplineBatched(
            small_grid, small_table[..., :21], tile_size=5
        )  # 21 = 4*5 + 1: naive slicing would leave a width-1 orphan
        widths = [
            len(range(*ts.indices(odd.n_splines))) for ts in odd._tiles()
        ]
        assert widths == [5, 5, 5, 6]

    def test_plan_is_exposed(self, small_grid, small_table):
        eng = BsplineBatched(small_grid, small_table)
        assert eng.plan.n_splines == small_table.shape[3]
        assert eng.plan.source in ("auto", "override")


class TestPaddedConstructor:
    def test_accepts_prepadded_table(self, small_grid, small_table, positions):
        from repro.core import pad_table_3d

        raw = BsplineBatched(small_grid, small_table)
        pre = BsplineBatched(small_grid, pad_table_3d(small_table))
        np.testing.assert_array_equal(pre.P, small_table)
        a = raw.new_output("vgh", n=len(positions))
        b = pre.new_output("vgh", n=len(positions))
        raw.vgh_batch(positions, a)
        pre.vgh_batch(positions, b)
        for stream in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(
                getattr(b, stream), getattr(a, stream)
            )

    def test_prepadded_table_is_adopted_without_copy(
        self, small_grid, small_table
    ):
        from repro.core import pad_table_3d

        padded = pad_table_3d(small_table)
        eng = BsplineBatched(small_grid, padded)
        assert eng.P.base is not None
        assert eng.P.base.base is padded or eng.P.base is padded

    def test_rejects_wrong_padded_shape(self, small_grid, small_table):
        bad = np.zeros(
            (small_table.shape[0] + 1,) + small_table.shape[1:],
            dtype=small_table.dtype,
        )
        with pytest.raises(ValueError, match="does not match"):
            BsplineBatched(small_grid, bad)


class TestChunkedPoisoning:
    def test_chunked_vgl_after_vgh_poisons_h_exactly_once(
        self, small_grid, small_table, positions
    ):
        eng = BsplineBatched(small_grid, small_table, chunk_size=2)
        out = eng.new_output("vgh", n=len(positions))
        eng.vgh_batch(positions, out)
        assert "h" in out.valid

        out.h = out.h.view(_FillCounter)
        eng.vgl_batch(positions, out)
        assert out.h.fill_calls == 1  # once per call, not once per chunk
        assert "h" not in out.valid
        assert np.isnan(np.asarray(out.h)).all()

    def test_fresh_output_is_never_filled(
        self, small_grid, small_table, positions
    ):
        eng = BsplineBatched(small_grid, small_table, chunk_size=2)
        out = eng.new_output("vgl", n=len(positions))
        out.h = out.h.view(_FillCounter)
        eng.vgl_batch(positions, out)
        assert getattr(out.h, "fill_calls", 0) == 0


class TestEvaluateDispatch:
    def test_kernel_methods_resolved_once(self, batched):
        from repro.core.kinds import Kind

        assert set(batched._kernels) == {Kind.V, Kind.VGL, Kind.VGH}
        assert batched._kernels[Kind.VGH].__func__ is (
            BsplineBatched.vgh_batch
        )

    def test_scratch_position_buffer_is_reused(self, batched):
        buf = batched._pos1
        out = batched.new_output("v")
        batched.evaluate("v", (0.25, 0.5, 0.75), out)
        assert batched._pos1 is buf

    def test_evaluate_matches_batch_of_one_bitwise(self, batched, positions):
        single = batched.new_output("vgh")
        batch = batched.new_output("vgh", n=1)
        batched.evaluate("vgh", positions[0], single)
        batched.vgh_batch(positions[:1], batch)
        for stream in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(
                getattr(single, stream), getattr(batch, stream)
            )
