"""Tests for the batched multi-position engine."""

import numpy as np
import pytest

from repro.core import BsplineBatched, BsplineFused, Grid3D


@pytest.fixture
def batched(small_grid, small_table):
    return BsplineBatched(small_grid, small_table)


@pytest.fixture
def fused(small_grid, small_table):
    return BsplineFused(small_grid, small_table)


@pytest.fixture
def positions(small_grid, rng):
    # Include wrap-prone points alongside random ones.
    pos = small_grid.random_positions(6, rng)
    pos[0] = (0.01, 0.01, 0.01)
    pos[1] = (1.99, 1.49, 2.49)
    return pos


class TestAgreementWithPerPosition:
    def test_v(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.v_batch(positions, out)
        single = fused.new_output("v")
        for s, (x, y, z) in enumerate(positions):
            fused.v(x, y, z, single)
            np.testing.assert_allclose(out.v[s], single.v, atol=1e-10)

    def test_vgl(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.vgl_batch(positions, out)
        single = fused.new_output("vgl")
        for s, (x, y, z) in enumerate(positions):
            fused.vgl(x, y, z, single)
            np.testing.assert_allclose(out.v[s], single.v, atol=1e-10)
            np.testing.assert_allclose(out.g[s], single.g, atol=1e-10)
            np.testing.assert_allclose(out.l[s], single.l, atol=1e-9)

    def test_vgh(self, batched, fused, positions):
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        single = fused.new_output("vgh")
        for s, (x, y, z) in enumerate(positions):
            fused.vgh(x, y, z, single)
            np.testing.assert_allclose(out.h[s], single.h, atol=1e-9)

    def test_vgh_fills_laplacian(self, batched, positions):
        out = batched.new_output(len(positions))
        batched.vgh_batch(positions, out)
        np.testing.assert_allclose(
            out.l, out.h[:, 0] + out.h[:, 3] + out.h[:, 5], atol=1e-9
        )


class TestValidation:
    def test_output_shapes(self, batched):
        out = batched.new_output(5)
        assert out.v.shape == (5, 24)
        assert out.g.shape == (5, 3, 24)
        assert out.h.shape == (5, 6, 24)

    def test_rejects_bad_positions(self, batched):
        out = batched.new_output(2)
        with pytest.raises(ValueError, match=r"\(ns, 3\)"):
            batched.v_batch(np.zeros((2, 2)), out)

    def test_rejects_zero_batch(self, batched):
        with pytest.raises(ValueError):
            batched.new_output(0)

    def test_rejects_mismatched_grid(self, small_table):
        with pytest.raises(ValueError, match="does not match"):
            BsplineBatched(Grid3D(8, 8, 8), small_table)

    def test_f32_dtype_propagates(self, small_grid, small_table_f32):
        b = BsplineBatched(small_grid, small_table_f32)
        out = b.new_output(3)
        assert out.v.dtype == np.float32

    def test_batch_of_one(self, batched, fused):
        out = batched.new_output(1)
        batched.vgh_batch(np.array([[0.5, 0.5, 0.5]]), out)
        single = fused.new_output("vgh")
        fused.vgh(0.5, 0.5, 0.5, single)
        np.testing.assert_allclose(out.v[0], single.v, atol=1e-10)
