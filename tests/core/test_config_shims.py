"""Deprecation shims: every old kwarg spelling still works, and warns once.

The PR9 contract for the old per-call knobs (``tile_size=``,
``chunk_size=``, ``backend=``) is *kept one release*: behaviour is
unchanged, a single :class:`DeprecationWarning` fires per call, and the
new ``config=RunConfig(...)`` spelling is silent.  Each surface gets the
same three checks so nothing half-migrates.
"""

import subprocess
import sys

import numpy as np
import pytest

from repro.config import RunConfig
from repro.qmc.dmc import build_dmc_ensemble
from repro.qmc.rng import WalkerRngPool


@pytest.fixture(scope="module")
def ensemble():
    pool = WalkerRngPool(11)
    walkers = build_dmc_ensemble(pool, 2, n_orbitals=2, grid_shape=(8, 8, 8))
    return walkers


def _spos(ensemble):
    return ensemble[0].wf.slater.spos


class TestQmcSurfaces:
    def test_build_dmc_ensemble_old_kwargs_warn_once(self):
        pool = WalkerRngPool(11)
        with pytest.warns(DeprecationWarning, match="SplineOrbitalSet") as rec:
            build_dmc_ensemble(
                pool, 1, n_orbitals=2, grid_shape=(8, 8, 8),
                tile_size=2, chunk_size=4,
            )
        assert len(rec) == 1

    def test_build_dmc_ensemble_config_is_silent(self, recwarn):
        pool = WalkerRngPool(11)
        build_dmc_ensemble(
            pool, 1, n_orbitals=2, grid_shape=(8, 8, 8),
            config=RunConfig(tile_size=2, chunk_size=4),
        )
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_old_and_new_spellings_agree_bitwise(self):
        def values(**kwargs):
            pool = WalkerRngPool(11)
            walkers = build_dmc_ensemble(
                pool, 1, n_orbitals=2, grid_shape=(8, 8, 8), **kwargs
            )
            spos = walkers[0].wf.slater.spos
            rng = np.random.default_rng(3)
            return spos.values_batch(rng.random((5, 3)) * 2.0)

        with pytest.warns(DeprecationWarning):
            old = values(tile_size=2, chunk_size=4)
        new = values(config=RunConfig(tile_size=2, chunk_size=4))
        np.testing.assert_array_equal(old, new)

    def test_configure_batched_old_kwargs_warn_once(self, ensemble):
        spos = _spos(ensemble)
        with pytest.warns(DeprecationWarning, match="configure_batched") as rec:
            spos.configure_batched(tile_size=2, chunk_size=4)
        assert len(rec) == 1
        spos.configure_batched(config=None)  # reset, silently

    def test_crowd_state_old_kwargs_warn_once(self, ensemble):
        from repro.qmc.batched_step import CrowdState

        wfs = [w.wf for w in ensemble]
        rngs = [w.rng for w in ensemble]
        with pytest.warns(DeprecationWarning, match="CrowdState") as rec:
            CrowdState(wfs, rngs, tile_size=2, chunk_size=4)
        assert len(rec) == 1
        CrowdState(wfs, rngs, config=RunConfig(tile_size=2, chunk_size=4))


class TestParallelSurfaces:
    def test_crowd_spec_old_kwargs_warn_once(self):
        from repro.parallel import CrowdSpec

        with pytest.warns(DeprecationWarning, match="CrowdSpec") as rec:
            spec = CrowdSpec(
                n_walkers=2, n_orbitals=2, seed=1,
                tile_size=2, chunk_size=4, backend="numpy",
            )
        assert len(rec) == 1
        # The shim folds the old fields into the resolved RunConfig.
        cfg = spec.run_config()
        assert (cfg.tile_size, cfg.chunk_size, cfg.backend) == (2, 4, "numpy")

    def test_crowd_spec_config_is_silent(self, recwarn):
        from repro.parallel import CrowdSpec

        CrowdSpec(
            n_walkers=2, n_orbitals=2, seed=1,
            config=RunConfig(tile_size=2, chunk_size=4),
        )
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]


class TestMiniQmcSurfaces:
    def test_miniqmc_config_old_kwargs_warn_once(self):
        from repro.miniqmc.config import MiniQmcConfig

        with pytest.warns(DeprecationWarning, match="MiniQmcConfig") as rec:
            cfg = MiniQmcConfig(8, (8, 8, 8), chunk_size=8, backend="numpy")
        assert len(rec) == 1
        run = cfg.run_config()
        assert (run.chunk_size, run.backend) == (8, "numpy")

    def test_miniqmc_tile_size_is_not_deprecated(self, recwarn):
        # tile_size is the physical AoSoA block width (the paper's Nb),
        # not a tuning knob — it stays a first-class field.
        from repro.miniqmc.config import MiniQmcConfig

        MiniQmcConfig(8, (8, 8, 8), tile_size=8)
        assert not [w for w in recwarn.list if w.category is DeprecationWarning]

    def test_build_app_old_kwargs_warn_once(self):
        from repro.miniqmc.app import build_app

        with pytest.warns(DeprecationWarning, match="build_app") as rec:
            build_app(
                n_orbitals=4, grid_shape=(8, 8, 8), profile=False,
                chunk_size=4,
            )
        assert len(rec) == 1


class TestModuleShim:
    def test_repro_core_tune_import_warns(self):
        """The moved module warns on import, in a fresh interpreter (an
        in-process import would be cached from earlier tests)."""
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as rec:\n"
            "    warnings.simplefilter('always')\n"
            "    import repro.core.tune\n"
            "hits = [w for w in rec if issubclass(w.category, DeprecationWarning)\n"
            "        and 'repro.tune' in str(w.message)]\n"
            "assert len(hits) == 1, rec\n"
            "assert repro.core.tune.plan_tiles is not None\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)

    def test_supported_spellings_stay_silent(self):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as rec:\n"
            "    warnings.simplefilter('always')\n"
            "    from repro.tune import plan_tiles\n"
            "    from repro.core import plan_tiles as core_plan\n"
            "assert not [w for w in rec\n"
            "            if issubclass(w.category, DeprecationWarning)], rec\n"
            "assert plan_tiles is core_plan\n"
        )
        subprocess.run([sys.executable, "-c", code], check=True)
