"""Tests for the runtime engine self-verification utility."""

import numpy as np
import pytest

from repro.core import Grid3D, solve_coefficients_3d
from repro.core.verify import verify_engines


class TestVerifyEngines:
    def test_healthy_table_passes(self, small_grid, small_table):
        report = verify_engines(small_grid, small_table, n_positions=3)
        assert report.all_passed, report.summary()
        # 4 engines x 3 kernels + the batched check.
        assert len(report.checks) == 13

    def test_float32_passes_with_loose_tolerance(self, small_grid, small_table_f32):
        report = verify_engines(small_grid, small_table_f32, n_positions=3)
        assert report.all_passed, report.summary()

    def test_summary_format(self, small_grid, small_table):
        report = verify_engines(small_grid, small_table, n_positions=1)
        text = report.summary()
        assert "PASS" in text
        assert "aosoa" in text and "batched" in text

    def test_detects_corruption(self, small_grid, small_table):
        """Failure injection: a verifier that cannot fail is useless."""

        # Sabotage one engine class method and confirm detection.
        from repro.core import layout_soa

        original = layout_soa.BsplineSoA.v

        def broken_v(self, x, y, z, out):
            original(self, x, y, z, out)
            out.v += 1.0  # corrupt

        layout_soa.BsplineSoA.v = broken_v
        try:
            report = verify_engines(small_grid, small_table, n_positions=2)
            failed = [c for c in report.checks if not c.passed]
            assert any(c.engine in ("soa", "aosoa") and c.kernel == "v" for c in failed)
        finally:
            layout_soa.BsplineSoA.v = original

    def test_custom_tile_size(self, small_grid, small_table):
        report = verify_engines(small_grid, small_table, n_positions=1, tile_size=8)
        assert report.all_passed

    def test_deterministic(self, small_grid, small_table):
        a = verify_engines(small_grid, small_table, n_positions=2, seed=3)
        b = verify_engines(small_grid, small_table, n_positions=2, seed=3)
        assert [c.max_error for c in a.checks] == [c.max_error for c in b.checks]
