"""The shared Opt C partition: one split, three consumers.

The thread-side nested evaluator, the process-side orbital shard
planner, and the tuner's candidate generator all block the spline axis
through :mod:`repro.core.partition`; these tests pin the split's
contract (exact cover, <=1 imbalance, deterministic) and the planner's
extra bitwise rule (no width-1 block), plus the deprecation path of the
old ``repro.core.nested.partition_tiles`` spelling.
"""

import warnings

import pytest

from repro.core.partition import partition, plan_orbital_blocks


class TestPartition:
    @pytest.mark.parametrize("n_items", [1, 2, 5, 7, 48, 101])
    @pytest.mark.parametrize("n_parts", [1, 2, 3, 4, 8])
    def test_exact_cover_in_order(self, n_items, n_parts):
        parts = partition(n_items, n_parts)
        assert len(parts) == n_parts
        flat = [i for rng in parts for i in rng]
        assert flat == list(range(n_items))

    @pytest.mark.parametrize(
        "n_items,n_parts", [(5, 2), (7, 3), (48, 5), (10, 4)]
    )
    def test_imbalance_bounded_at_one(self, n_items, n_parts):
        sizes = [len(rng) for rng in partition(n_items, n_parts)]
        assert max(sizes) - min(sizes) <= 1
        # Extras land on the leading parts, so sizes never increase.
        assert sizes == sorted(sizes, reverse=True)

    def test_parts_beyond_items_idle(self):
        parts = partition(2, 5)
        assert [len(rng) for rng in parts] == [1, 1, 0, 0, 0]

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            partition(bad, 2)
        with pytest.raises(ValueError):
            partition(4, bad)


class TestPlanOrbitalBlocks:
    @pytest.mark.parametrize("n_splines", [4, 7, 16, 33, 48])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 8])
    def test_blocks_cover_axis_exactly(self, n_splines, n_shards):
        blocks = plan_orbital_blocks(n_splines, n_shards)
        assert blocks[0].start == 0
        assert blocks[-1].stop == n_splines
        for a, b in zip(blocks, blocks[1:]):
            assert a.stop == b.start

    @pytest.mark.parametrize("n_splines", [2, 3, 5, 7, 16, 33])
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 16, 64])
    def test_no_block_narrower_than_two(self, n_splines, n_shards):
        # The bitwise contract: a width-1 block would hit NumPy einsum's
        # length-1 contraction dispatch and drift by an ulp.
        blocks = plan_orbital_blocks(n_splines, n_shards)
        assert all(b.stop - b.start >= 2 for b in blocks)
        assert len(blocks) <= max(1, n_splines // 2)

    def test_uneven_widths_differ_by_at_most_one(self):
        blocks = plan_orbital_blocks(7, 3)
        widths = [b.stop - b.start for b in blocks]
        assert sum(widths) == 7
        assert max(widths) - min(widths) <= 1

    def test_single_column_table_yields_one_block(self):
        assert plan_orbital_blocks(1, 4) == [slice(0, 1)]

    def test_matches_partition(self):
        # The planner is the shared partition with the width rule on top:
        # same boundaries whenever no clamping is needed.
        blocks = plan_orbital_blocks(48, 4)
        ranges = partition(48, 4)
        assert [(b.start, b.stop) for b in blocks] == [
            (r.start, r.stop) for r in ranges
        ]

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            plan_orbital_blocks(bad, 2)
        with pytest.raises(ValueError):
            plan_orbital_blocks(8, bad)


class TestPartitionTilesDeprecation:
    def test_alias_returns_same_split_and_warns_once(self):
        import repro.core.nested as nested

        nested._PARTITION_TILES_WARNED = False
        with pytest.warns(DeprecationWarning, match="partition_tiles"):
            got = nested.partition_tiles(10, 3)
        assert got == partition(10, 3)
        # Warn-once: the second call is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert nested.partition_tiles(10, 3) == partition(10, 3)
