"""Cross-validation against SciPy's independent B-spline implementation.

``scipy.ndimage.map_coordinates(order=3, mode='grid-wrap',
prefilter=False)`` evaluates exactly the periodic uniform cubic B-spline
sum of paper Eq. (6), and ``scipy.ndimage.spline_filter`` solves exactly
our periodic interpolation problem.  Neither shares a line of code with
this package, so agreement here rules out any convention-level bug that
our internal oracle (written by the same authors as the kernels) could
share with them.
"""

import numpy as np
import pytest
from scipy import ndimage

from repro.core import BsplineSoA, Grid3D, solve_coefficients_1d, solve_coefficients_3d
from repro.core.refimpl import reference_v


def scipy_eval(P_single, grid, positions):
    """Evaluate one orbital's spline via scipy at Cartesian positions."""
    coords = np.array(
        [
            [x * grid.inv_deltas[0] for x, y, z in positions],
            [y * grid.inv_deltas[1] for x, y, z in positions],
            [z * grid.inv_deltas[2] for x, y, z in positions],
        ]
    )
    return ndimage.map_coordinates(
        P_single, coords, order=3, mode="grid-wrap", prefilter=False
    )


class TestKernelVsScipy:
    def test_reference_matches_map_coordinates(self, small_grid, small_table, rng):
        positions = small_grid.random_positions(10, rng)
        for n in (0, 7, 23):
            ours = np.array(
                [reference_v(small_grid, small_table, *p)[n] for p in positions]
            )
            theirs = scipy_eval(small_table[..., n], small_grid, positions)
            np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_soa_engine_matches_map_coordinates(self, small_grid, small_table, rng):
        eng = BsplineSoA(small_grid, small_table)
        out = eng.new_output("v")
        positions = small_grid.random_positions(6, rng)
        theirs = scipy_eval(small_table[..., 3], small_grid, positions)
        ours = []
        for p in positions:
            eng.v(*p, out)
            ours.append(out.v[3])
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_boundary_wrap_agrees(self, small_grid, small_table):
        # The periodic-wrap code path, specifically.
        positions = np.array([[0.005, 0.005, 0.005], [1.995, 1.495, 2.495]])
        theirs = scipy_eval(small_table[..., 0], small_grid, positions)
        ours = [reference_v(small_grid, small_table, *p)[0] for p in positions]
        np.testing.assert_allclose(ours, theirs, atol=1e-10)


class TestSolveVsScipy:
    def test_1d_solve_matches_spline_filter(self, rng):
        f = rng.standard_normal(24)
        ours = solve_coefficients_1d(f)
        theirs = ndimage.spline_filter1d(f, order=3, mode="grid-wrap")
        np.testing.assert_allclose(ours, theirs, atol=1e-10)

    def test_3d_solve_matches_spline_filter(self, rng):
        f = rng.standard_normal((8, 10, 12))
        ours = solve_coefficients_3d(f[..., np.newaxis], dtype=np.float64)[..., 0]
        theirs = ndimage.spline_filter(f, order=3, mode="grid-wrap")
        np.testing.assert_allclose(ours, theirs, atol=1e-9)

    def test_end_to_end_interpolation_matches(self, rng):
        # Full pipeline both ways: samples -> coefficients -> off-grid value.
        f = rng.standard_normal((10, 10, 10))
        grid = Grid3D(10, 10, 10)
        P = solve_coefficients_3d(f[..., np.newaxis], dtype=np.float64)
        pos = grid.random_positions(5, rng)
        ours = [reference_v(grid, P, *p)[0] for p in pos]
        coords = pos.T * 10.0  # unit box: grid units = 10 * fraction
        theirs = ndimage.map_coordinates(
            f, coords, order=3, mode="grid-wrap", prefilter=True
        )
        np.testing.assert_allclose(ours, theirs, atol=1e-9)
