"""Unit tests for the SoA particle container (paper Sec. V-A bridge)."""

import numpy as np
import pytest

from repro.core import VectorSoA3D


class TestStorage:
    def test_component_streams_contiguous(self):
        v = VectorSoA3D(10)
        assert v.x.flags["C_CONTIGUOUS"]
        assert v.y.flags["C_CONTIGUOUS"]
        assert v.z.flags["C_CONTIGUOUS"]

    def test_components_are_views(self):
        v = VectorSoA3D(4)
        v.x[2] = 5.0
        assert v.data[0, 2] == 5.0

    def test_len(self):
        assert len(VectorSoA3D(7)) == 7

    def test_zero_size_allowed(self):
        assert len(VectorSoA3D(0)) == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            VectorSoA3D(-1)


class TestAoSFacade:
    def test_getitem_returns_triple(self):
        v = VectorSoA3D(3)
        v.x[1], v.y[1], v.z[1] = 1.0, 2.0, 3.0
        np.testing.assert_array_equal(v[1], [1.0, 2.0, 3.0])

    def test_getitem_is_a_copy(self):
        v = VectorSoA3D(2)
        p = v[0]
        p[0] = 99.0
        assert v.x[0] == 0.0

    def test_setitem(self):
        v = VectorSoA3D(2)
        v[1] = (4.0, 5.0, 6.0)
        assert v.x[1] == 4.0 and v.y[1] == 5.0 and v.z[1] == 6.0

    def test_iteration(self):
        v = VectorSoA3D.from_aos(np.arange(6.0).reshape(2, 3))
        rows = list(v)
        np.testing.assert_array_equal(rows[0], [0, 1, 2])
        np.testing.assert_array_equal(rows[1], [3, 4, 5])


class TestConversions:
    def test_roundtrip(self, rng):
        aos = rng.standard_normal((9, 3))
        v = VectorSoA3D.from_aos(aos)
        np.testing.assert_array_equal(v.to_aos(), aos)

    def test_from_aos_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            VectorSoA3D.from_aos(np.zeros((3, 2)))

    def test_copy_is_deep(self):
        v = VectorSoA3D.from_aos(np.ones((2, 3)))
        c = v.copy()
        c.x[0] = -1.0
        assert v.x[0] == 1.0

    def test_dtype_option(self):
        v = VectorSoA3D(3, np.float32)
        assert v.data.dtype == np.float32
