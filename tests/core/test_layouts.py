"""Engine correctness: every layout vs the reference oracle and each other.

This is the heart of the core test suite: the AoS baseline, the SoA
transform (Opt A), the AoSoA tiling (Opt B) and the fused schedule must
all compute the same mathematics — layout changes are not allowed to
change answers (paper Sec. V-A: the transformation is purely in memory).
"""

import numpy as np
import pytest

from repro.core import (
    BsplineAoS,
    BsplineAoSoA,
    BsplineFused,
    BsplineSoA,
    Grid3D,
)
from repro.core.refimpl import reference_v, reference_vgh, reference_vgl

ENGINES = {
    "aos": BsplineAoS,
    "soa": BsplineSoA,
    "fused": BsplineFused,
}

POSITIONS = [
    (1.234, 0.456, 2.111),  # generic interior point
    (0.01, 0.01, 0.01),  # near origin => stencil wraps low
    (1.99, 1.49, 2.49),  # near the far face => stencil wraps high
    (0.5, 0.75, 1.25),  # exactly on grid planes
    (-0.3, 3.2, -1.7),  # outside the box => periodic wrap of position
]


def make_engine(name, grid, table):
    if name == "aosoa":
        return BsplineAoSoA(grid, table, tile_size=8)
    return ENGINES[name](grid, table)


@pytest.mark.parametrize("engine_name", ["aos", "soa", "fused", "aosoa"])
class TestAgainstReference:
    @pytest.mark.parametrize("pos", POSITIONS)
    def test_v(self, engine_name, pos, small_grid, small_table):
        eng = make_engine(engine_name, small_grid, small_table)
        out = eng.new_output("v")
        eng.v(*pos, out)
        ref = reference_v(small_grid, small_table, *pos)
        np.testing.assert_allclose(out.as_canonical()["v"], ref, atol=1e-12)

    @pytest.mark.parametrize("pos", POSITIONS)
    def test_vgl(self, engine_name, pos, small_grid, small_table):
        eng = make_engine(engine_name, small_grid, small_table)
        out = eng.new_output("vgl")
        eng.vgl(*pos, out)
        rv, rg, rl = reference_vgl(small_grid, small_table, *pos)
        c = out.as_canonical()
        np.testing.assert_allclose(c["v"], rv, atol=1e-12)
        np.testing.assert_allclose(c["g"], rg, atol=1e-11)
        np.testing.assert_allclose(c["l"], rl, atol=1e-10)

    @pytest.mark.parametrize("pos", POSITIONS)
    def test_vgh(self, engine_name, pos, small_grid, small_table):
        eng = make_engine(engine_name, small_grid, small_table)
        out = eng.new_output("vgh")
        eng.vgh(*pos, out)
        rv, rg, rh = reference_vgh(small_grid, small_table, *pos)
        c = out.as_canonical()
        np.testing.assert_allclose(c["v"], rv, atol=1e-12)
        np.testing.assert_allclose(c["g"], rg, atol=1e-11)
        np.testing.assert_allclose(c["h"], rh, atol=1e-10)

    def test_outputs_overwritten_not_accumulated(
        self, engine_name, small_grid, small_table
    ):
        # Two evaluations in a row must give the second position's values.
        eng = make_engine(engine_name, small_grid, small_table)
        out = eng.new_output("vgh")
        eng.vgh(*POSITIONS[0], out)
        eng.vgh(*POSITIONS[1], out)
        ref = reference_vgh(small_grid, small_table, *POSITIONS[1])[0]
        np.testing.assert_allclose(out.as_canonical()["v"], ref, atol=1e-12)


class TestDerivativeConsistency:
    """Cross-kernel invariants that hold regardless of the oracle."""

    def test_vgl_lap_equals_vgh_trace(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        o1, o2 = eng.new_output("vgl"), eng.new_output("vgh")
        eng.vgl(1.0, 0.7, 2.0, o1)
        eng.vgh(1.0, 0.7, 2.0, o2)
        trace = o2.hess("xx") + o2.hess("yy") + o2.hess("zz")
        np.testing.assert_allclose(o1.l, trace, atol=1e-10)

    def test_gradient_matches_finite_difference_of_v(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        out = eng.new_output("vgh")
        x, y, z = 0.9, 0.6, 1.3
        eng.vgh(x, y, z, out)
        eps = 1e-6
        vp, vm = eng.new_output("v"), eng.new_output("v")
        eng.v(x + eps, y, z, vp)
        eng.v(x - eps, y, z, vm)
        fd = (vp.v - vm.v) / (2 * eps)
        np.testing.assert_allclose(out.gx, fd, atol=1e-6)

    def test_hessian_matches_finite_difference_of_gradient(
        self, small_grid, small_table
    ):
        eng = BsplineSoA(small_grid, small_table)
        out = eng.new_output("vgh")
        x, y, z = 1.1, 0.4, 0.9
        eng.vgh(x, y, z, out)
        eps = 1e-5
        gp, gm = eng.new_output("vgh"), eng.new_output("vgh")
        eng.vgh(x, y + eps, z, gp)
        eng.vgh(x, y - eps, z, gm)
        fd_hxy = (gp.gx - gm.gx) / (2 * eps)
        np.testing.assert_allclose(out.hess("xy"), fd_hxy, atol=1e-4)

    def test_periodicity_of_all_outputs(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        o1, o2 = eng.new_output("vgh"), eng.new_output("vgh")
        lx, ly, lz = small_grid.lengths
        eng.vgh(0.7, 0.3, 1.1, o1)
        eng.vgh(0.7 + 2 * lx, 0.3 - ly, 1.1 + lz, o2)
        for field in ("v", "g", "l", "h"):
            np.testing.assert_allclose(
                o1.as_canonical()[field], o2.as_canonical()[field], atol=1e-10
            )


class TestCrossLayoutIdentity:
    def test_all_layouts_agree_on_random_positions(self, small_grid, small_table, rng):
        engines = [make_engine(n, small_grid, small_table) for n in
                   ("aos", "soa", "fused", "aosoa")]
        outs = [e.new_output("vgh") for e in engines]
        for pos in small_grid.random_positions(10, rng):
            canon = []
            for e, o in zip(engines, outs):
                e.vgh(*pos, o)
                canon.append(o.as_canonical())
            for c in canon[1:]:
                for field in ("v", "g", "l", "h"):
                    np.testing.assert_allclose(
                        c[field], canon[0][field], atol=1e-10
                    )

    def test_tiled_any_tile_size_agrees(self, small_grid, small_table):
        base = BsplineSoA(small_grid, small_table)
        out_base = base.new_output("vgh")
        base.vgh(*POSITIONS[0], out_base)
        ref = out_base.as_canonical()
        for nb in (1, 2, 3, 4, 6, 8, 12, 24):
            tiled = BsplineAoSoA(small_grid, small_table, nb)
            out = tiled.new_output("vgh")
            tiled.vgh(*POSITIONS[0], out)
            c = out.as_canonical()
            for field in ("v", "g", "l", "h"):
                np.testing.assert_allclose(c[field], ref[field], atol=1e-12)


class TestFloat32Precision:
    """Single precision (the paper's choice) must stay within SP accuracy."""

    @pytest.mark.parametrize("engine_name", ["aos", "soa", "fused"])
    def test_f32_close_to_f64_reference(
        self, engine_name, small_grid, small_table_f32
    ):
        eng = ENGINES[engine_name](small_grid, small_table_f32)
        out = eng.new_output("vgh")
        eng.vgh(*POSITIONS[0], out)
        ref = reference_vgh(
            small_grid, small_table_f32.astype(np.float64), *POSITIONS[0]
        )
        c = out.as_canonical()
        np.testing.assert_allclose(c["v"], ref[0], rtol=1e-4, atol=1e-4)
        np.testing.assert_allclose(c["g"], ref[1], rtol=1e-3, atol=1e-2)

    def test_f32_outputs_have_f32_dtype(self, small_grid, small_table_f32):
        eng = BsplineSoA(small_grid, small_table_f32)
        out = eng.new_output("vgh")
        eng.vgh(*POSITIONS[0], out)
        assert out.v.dtype == np.float32
        assert out.g.dtype == np.float32


class TestValidation:
    def test_engine_rejects_mismatched_grid(self, small_grid):
        bad = np.zeros((4, 4, 4, 8), dtype=np.float32)
        for cls in ENGINES.values():
            with pytest.raises(ValueError, match="does not match"):
                cls(small_grid, bad)

    def test_engine_rejects_3d_table(self, small_grid):
        with pytest.raises(ValueError, match="nx, ny, nz"):
            BsplineSoA(small_grid, np.zeros(small_grid.shape, dtype=np.float32))

    def test_new_output_rejects_unknown_kind(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        with pytest.raises(ValueError, match="unknown kernel"):
            eng.new_output("vvv")

    def test_aosoa_rejects_nondivisor_tile(self, small_grid, small_table):
        with pytest.raises(ValueError, match="divide"):
            BsplineAoSoA(small_grid, small_table, 7)

    def test_aosoa_rejects_foreign_output(self, small_grid, small_table):
        eng8 = BsplineAoSoA(small_grid, small_table, 8)
        eng12 = BsplineAoSoA(small_grid, small_table, 12)
        out12 = eng12.new_output("v")
        with pytest.raises(ValueError, match="blocking"):
            eng8.v(0.1, 0.1, 0.1, out12)
