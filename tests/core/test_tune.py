"""Tests for the cache-aware (chunk, tile) planner (repro.tune.planner)."""

import numpy as np
import pytest

from repro.core import CacheInfo, TilePlan, detect_caches, plan_tiles
from repro.tune.planner import (
    CHUNK_MAX,
    CHUNK_MIN,
    MiB,
    TILE_MIN,
    _parse_size,
    gather_bytes,
    plan_budget_bytes,
    working_set_bytes,
)


class TestCacheDetection:
    def test_detect_returns_positive_sizes(self):
        info = detect_caches()
        assert info.l2_bytes > 0
        assert info.llc_bytes >= info.l2_bytes
        assert info.source in ("env", "sysfs", "default")

    def test_env_override_wins(self, monkeypatch):
        from repro.tune import planner as tune

        monkeypatch.setenv("REPRO_L2_BYTES", str(512 * 1024))
        monkeypatch.setenv("REPRO_LLC_BYTES", str(8 * MiB))
        tune._detect_caches_cached.cache_clear()
        try:
            info = detect_caches()
            assert info.l2_bytes == 512 * 1024
            assert info.llc_bytes == 8 * MiB
            assert info.source == "env"
        finally:
            tune._detect_caches_cached.cache_clear()

    def test_parse_size_sysfs_formats(self):
        assert _parse_size("2048K") == 2048 * 1024
        assert _parse_size("260M") == 260 * MiB
        assert _parse_size("48K\n") == 48 * 1024
        assert _parse_size("") is None
        assert _parse_size("garbage") is None


class TestBudget:
    def test_budget_bounds(self):
        # Small caches: the 4*L2 floor of 4 MiB wins.
        tiny = CacheInfo(l2_bytes=256 * 1024, llc_bytes=4 * MiB, source="env")
        assert plan_budget_bytes(tiny) == 2 * MiB  # max(llc/4, 2MiB) caps it
        # Huge LLC: the cap is llc/4-limited only until 4*L2 is smaller.
        big = CacheInfo(l2_bytes=2 * MiB, llc_bytes=260 * MiB, source="env")
        assert plan_budget_bytes(big) == 8 * MiB  # min(8 MiB, 65 MiB)


class TestPlanTiles:
    def test_auto_plan_is_within_clamps(self):
        plan = plan_tiles(256, 4)
        assert CHUNK_MIN <= plan.chunk <= CHUNK_MAX
        assert 1 <= plan.tile <= 256
        assert plan.source == "auto"
        assert plan.working_set_bytes == working_set_bytes(
            plan.chunk, plan.tile, 4
        )

    def test_explicit_knobs_taken_verbatim(self):
        plan = plan_tiles(512, 8, chunk=48, tile=128)
        assert plan.chunk == 48
        assert plan.tile == 128
        assert plan.source == "override"

    def test_tile_clamped_to_n_splines(self):
        plan = plan_tiles(24, 8, tile=1000)
        assert plan.tile == 24

    def test_default_tile_is_full_width_for_normal_tables(self):
        caches = CacheInfo(l2_bytes=2 * MiB, llc_bytes=64 * MiB, source="env")
        plan = plan_tiles(512, 4, caches=caches)
        assert plan.tile == 512

    def test_very_wide_table_blocks_spline_axis(self):
        # 64 * CHUNK_MIN * n * itemsize must overflow the budget: with an
        # 8 MiB budget and float64 that needs n > 1024.
        caches = CacheInfo(l2_bytes=2 * MiB, llc_bytes=64 * MiB, source="env")
        plan = plan_tiles(4096, 8, caches=caches)
        assert plan.tile < 4096
        assert plan.tile % TILE_MIN == 0
        assert gather_bytes(CHUNK_MIN, plan.tile, 8) <= plan.budget_bytes

    def test_budget_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_BUDGET_BYTES", str(1 * MiB))
        plan = plan_tiles(128, 4)
        assert plan.budget_bytes == 1 * MiB

    def test_explicit_budget_argument(self):
        plan = plan_tiles(128, 4, budget_bytes=2 * MiB)
        assert plan.budget_bytes == 2 * MiB
        # chunk = 2 MiB // (64 * 128 * 4) = 64
        assert plan.chunk == 64

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="n_splines"):
            plan_tiles(0, 4)
        with pytest.raises(ValueError, match="chunk"):
            plan_tiles(64, 4, chunk=0)
        with pytest.raises(ValueError, match="tile"):
            plan_tiles(64, 4, tile=-1)

    def test_plan_is_frozen(self):
        plan = plan_tiles(64, 4)
        assert isinstance(plan, TilePlan)
        with pytest.raises(AttributeError):
            plan.chunk = 1


class TestEnginePlanIntegration:
    def test_engine_exposes_plan(self, small_grid, small_table):
        from repro.core import BsplineBatched

        eng = BsplineBatched(small_grid, small_table, chunk_size=8, tile_size=8)
        assert eng.plan.chunk == 8
        assert eng.plan.tile == 8
        assert eng.plan.source == "override"

    def test_max_batch_bytes_marks_plan_source(self, small_grid, small_table):
        from repro.core import BsplineBatched

        per_pos = 64 * small_table.shape[3] * small_table.itemsize
        eng = BsplineBatched(small_grid, small_table, max_batch_bytes=3 * per_pos)
        assert eng._chunk == 3
        assert eng.plan.source == "max_batch_bytes"

    def test_max_batch_bytes_and_chunk_size_conflict(
        self, small_grid, small_table
    ):
        from repro.core import BsplineBatched

        with pytest.raises(ValueError, match="not both"):
            BsplineBatched(
                small_grid, small_table, max_batch_bytes=1 << 20, chunk_size=4
            )
