"""Property tests: the ghost-padded gather equals the modulo-wrap gather.

The tentpole invariant of the padded/tiled batched path: for ANY
position — in particular ones sitting exactly on or straddling a
periodic boundary, where the old gather wraps and the new one reads
ghost rows — every kernel's every output stream is **bitwise** equal to
the frozen pre-padding oracle (:class:`repro.core.batched_reference.
ReferenceBatched`), for both table dtypes and any (chunk, tile).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BsplineBatched, Grid3D
from repro.core.batched_reference import ReferenceBatched
from repro.core.coeffs import pad_table_3d
from repro.core.kinds import Kind

GRID = Grid3D(6, 5, 7, (2.0, 1.5, 2.5))
N_SPLINES = 9

_KERNELS = ["v", "vgl", "vgh"]
_STREAMS = {"v": ("v",), "vgl": ("v", "g", "l"), "vgh": ("v", "g", "l", "h")}


def _table(dtype):
    rng = np.random.default_rng(91)
    nx, ny, nz = GRID.shape
    return rng.standard_normal((nx, ny, nz, N_SPLINES)).astype(dtype)


_TABLES = {np.float32: _table(np.float32), np.float64: _table(np.float64)}

# Coordinates that land on/next to every periodic seam of each axis: the
# origin, both box edges, one spacing in from each edge, and epsilon
# offsets across the wrap — the cases where stencil rows i0-1 or i0+2
# leave [0, n) and the gathers diverge unless the halo is exact.
def _boundary_coords(axis):
    length = GRID.lengths[axis]
    delta = GRID.deltas[axis]
    eps = 1e-9
    return st.sampled_from(
        [
            0.0,
            eps,
            -eps,
            delta,
            delta * 0.5,
            length - delta,
            length - delta * 0.5,
            length - eps,
            length,
            length + eps,
            -delta * 0.25,
            length * 2 - eps,
        ]
    )


positions_strategy = st.lists(
    st.tuples(_boundary_coords(0), _boundary_coords(1), _boundary_coords(2)),
    min_size=1,
    max_size=8,
).map(lambda rows: np.array(rows, dtype=np.float64))


@settings(max_examples=40, deadline=None)
@given(positions=positions_strategy)
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
@pytest.mark.parametrize("kern", _KERNELS)
def test_padded_gather_matches_modulo_wrap(kern, dtype, positions):
    P = _TABLES[dtype]
    ref = ReferenceBatched(GRID, P)
    eng = BsplineBatched(GRID, P, chunk_size=3, tile_size=4)

    out_ref = ref.new_output(Kind(kern), n=len(positions))
    out_new = eng.new_output(Kind(kern), n=len(positions))
    getattr(ref, f"{kern}_batch")(positions, out_ref)
    getattr(eng, f"{kern}_batch")(positions, out_new)
    for stream in _STREAMS[kern]:
        np.testing.assert_array_equal(
            getattr(out_new, stream),
            getattr(out_ref, stream),
            err_msg=f"{kern}/{stream} diverged for dtype {dtype}",
        )


@settings(max_examples=25, deadline=None)
@given(
    positions=positions_strategy,
    chunk=st.integers(min_value=1, max_value=9),
    tile=st.integers(min_value=1, max_value=N_SPLINES + 2),
)
def test_any_chunk_tile_is_bitwise_invariant(positions, chunk, tile):
    P = _TABLES[np.float32]
    ref = ReferenceBatched(GRID, P)
    eng = BsplineBatched(GRID, P, chunk_size=chunk, tile_size=tile)
    out_ref = ref.new_output(Kind.VGH, n=len(positions))
    out_new = eng.new_output(Kind.VGH, n=len(positions))
    ref.vgh_batch(positions, out_ref)
    eng.vgh_batch(positions, out_new)
    for stream in ("v", "g", "l", "h"):
        np.testing.assert_array_equal(
            getattr(out_new, stream), getattr(out_ref, stream)
        )


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_prepadded_table_matches_raw_table(dtype):
    """Padded-shape construction (the shared-memory path) = raw-shape."""
    P = _TABLES[dtype]
    rng = np.random.default_rng(7)
    positions = GRID.random_positions(17, rng)
    raw = BsplineBatched(GRID, P, chunk_size=5)
    pre = BsplineBatched(GRID, pad_table_3d(P), chunk_size=5)
    out_raw = raw.new_output(Kind.VGH, n=17)
    out_pre = pre.new_output(Kind.VGH, n=17)
    raw.vgh_batch(positions, out_raw)
    pre.vgh_batch(positions, out_pre)
    for stream in ("v", "g", "l", "h"):
        np.testing.assert_array_equal(
            getattr(out_pre, stream), getattr(out_raw, stream)
        )


def test_ghost_rows_are_exact_copies():
    P = _TABLES[np.float64]
    padded = pad_table_3d(P)
    nx, ny, nz = GRID.shape
    assert padded.shape == (nx + 3, ny + 3, nz + 3, N_SPLINES)
    core = padded[1 : nx + 1, 1 : ny + 1, 1 : nz + 1]
    np.testing.assert_array_equal(core, P)
    # One layer before = wrapped last row; two after = rows 0 and 1.
    np.testing.assert_array_equal(padded[0, 1 : ny + 1, 1 : nz + 1], P[-1])
    np.testing.assert_array_equal(padded[nx + 1, 1 : ny + 1, 1 : nz + 1], P[0])
    np.testing.assert_array_equal(padded[nx + 2, 1 : ny + 1, 1 : nz + 1], P[1])
    np.testing.assert_array_equal(padded[1 : nx + 1, 0, 1 : nz + 1], P[:, -1])
    np.testing.assert_array_equal(
        padded[1 : nx + 1, 1 : ny + 1, 0], P[:, :, -1]
    )
