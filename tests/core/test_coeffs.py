"""Unit tests for the periodic coefficient solve."""

import numpy as np
import pytest

from repro.core import Grid3D, pad_spline_count, solve_coefficients_1d, solve_coefficients_3d
from repro.core.coeffs import interpolation_matrix_eigenvalues
from repro.core.refimpl import reference_v


class TestEigenvalues:
    def test_values(self):
        lam = interpolation_matrix_eigenvalues(8)
        assert lam.shape == (8,)
        assert np.isclose(lam[0], 1.0)  # DC mode: (4+2)/6

    def test_all_positive(self):
        for n in (4, 5, 16, 48):
            assert (interpolation_matrix_eigenvalues(n) >= 1.0 / 3.0 - 1e-12).all()

    def test_rejects_small(self):
        with pytest.raises(ValueError):
            interpolation_matrix_eigenvalues(3)


class TestSolve1D:
    def test_reproduces_samples(self):
        rng = np.random.default_rng(5)
        f = rng.standard_normal(16)
        p = solve_coefficients_1d(f)
        # Interpolation condition: (p[j-1] + 4 p[j] + p[j+1]) / 6 == f[j].
        recon = (np.roll(p, 1) + 4 * p + np.roll(p, -1)) / 6.0
        np.testing.assert_allclose(recon, f, atol=1e-12)

    def test_constant_is_fixed_point(self):
        f = np.full(12, 3.7)
        np.testing.assert_allclose(solve_coefficients_1d(f), f, atol=1e-12)

    def test_axis_argument(self):
        rng = np.random.default_rng(6)
        f = rng.standard_normal((8, 6))
        p0 = solve_coefficients_1d(f, axis=0)
        p1 = solve_coefficients_1d(f.T, axis=1).T
        np.testing.assert_allclose(p0, p1, atol=1e-13)

    def test_linearity(self):
        rng = np.random.default_rng(7)
        f, g = rng.standard_normal((2, 10))
        lhs = solve_coefficients_1d(2.0 * f + g)
        rhs = 2.0 * solve_coefficients_1d(f) + solve_coefficients_1d(g)
        np.testing.assert_allclose(lhs, rhs, atol=1e-12)


class TestSolve3D:
    def test_output_shape_and_dtype(self):
        samples = np.zeros((6, 8, 10, 3))
        P = solve_coefficients_3d(samples)
        assert P.shape == (6, 8, 10, 3)
        assert P.dtype == np.float32
        assert P.flags["C_CONTIGUOUS"]

    def test_accepts_single_orbital_3d(self):
        P = solve_coefficients_3d(np.zeros((6, 6, 6)))
        assert P.shape == (6, 6, 6, 1)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="nx, ny, nz"):
            solve_coefficients_3d(np.zeros((6, 6)))

    def test_interpolates_at_grid_points(self, small_grid, rng):
        samples = rng.standard_normal((*small_grid.shape, 4))
        P = solve_coefficients_3d(samples, dtype=np.float64)
        dx, dy, dz = small_grid.deltas
        for i, j, k in [(0, 0, 0), (3, 2, 5), (11, 9, 13)]:
            v = reference_v(small_grid, P, i * dx, j * dy, k * dz)
            np.testing.assert_allclose(v, samples[i, j, k], atol=1e-10)

    def test_float32_interpolation_accuracy(self, small_grid, rng):
        samples = rng.standard_normal((*small_grid.shape, 4))
        P = solve_coefficients_3d(samples, dtype=np.float32)
        dx, dy, dz = small_grid.deltas
        v = reference_v(small_grid, P, 3 * dx, 2 * dy, 5 * dz)
        np.testing.assert_allclose(v, samples[3, 2, 5], atol=1e-5)

    def test_smooth_function_interpolation_error(self):
        # Cubic interpolation error should scale ~h^4 for a smooth periodic f.
        errs = []
        for n in (8, 16):
            grid = Grid3D(n, n, n)
            x = np.arange(n) / n
            f = (
                np.sin(2 * np.pi * x)[:, None, None]
                * np.cos(2 * np.pi * x)[None, :, None]
                * np.ones(n)[None, None, :]
            )
            P = solve_coefficients_3d(f[..., np.newaxis], dtype=np.float64)
            v = reference_v(grid, P, 0.1234, 0.456, 0.789)
            exact = np.sin(2 * np.pi * 0.1234) * np.cos(2 * np.pi * 0.456)
            errs.append(abs(v[0] - exact))
        # Doubling resolution should cut the error by ~16; demand >= 8.
        assert errs[0] / max(errs[1], 1e-16) > 8.0


class TestPadding:
    @pytest.mark.parametrize(
        "n,lanes,expected",
        [(1, 16, 16), (16, 16, 16), (17, 16, 32), (100, 8, 104), (128, 16, 128)],
    )
    def test_pad(self, n, lanes, expected):
        assert pad_spline_count(n, lanes) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            pad_spline_count(0)
        with pytest.raises(ValueError):
            pad_spline_count(8, 0)
