"""The PR9 unified configuration API: one RunConfig, one resolution order.

Every test here pins one rung of the documented order — explicit kwarg >
``REPRO_*`` env var > tuned-DB entry > cache heuristic — including the
provenance labels that ``python -m repro tune show`` and the benches
print, and the parent-side resolution contract the parallel drivers
rely on.
"""

import pickle

import numpy as np
import pytest

from repro.config import (
    TUNE_LOOKUP,
    TUNE_OFF,
    TUNE_SEARCH,
    RunConfig,
    deprecated_kwargs,
    effective_step_mode,
    load_run_config,
)
from repro.tune.db import TIER_ALLCLOSE, TuneDB, TunedConfig, TuneShape
from repro.tune.planner import plan_tiles


class TestConstruction:
    def test_plain_construction_reads_no_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "99")
        cfg = RunConfig()
        assert cfg.chunk_size is None
        assert cfg.source_of("chunk_size") == "default"

    def test_tune_normalization(self):
        assert RunConfig(tune=None).tune == TUNE_LOOKUP
        assert RunConfig(tune=False).tune == TUNE_OFF
        assert RunConfig(tune=True).tune == TUNE_LOOKUP
        assert RunConfig(tune="OFF").tune == TUNE_OFF
        assert RunConfig(tune="search").tune == TUNE_SEARCH
        assert RunConfig(tune="1").tune == TUNE_LOOKUP
        with pytest.raises(ValueError, match="tune"):
            RunConfig(tune="sometimes")

    @pytest.mark.parametrize(
        "field", ["chunk_size", "tile_size", "processes", "delay"]
    )
    def test_positive_int_validation(self, field):
        with pytest.raises(ValueError, match=field):
            RunConfig(**{field: 0})

    def test_step_mode_validation(self):
        with pytest.raises(ValueError, match="step_mode"):
            RunConfig(step_mode="diagonal")

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(TypeError, match="unknown"):
            RunConfig().replace(chunck_size=8)

    def test_from_env_rejects_unknown_field(self):
        with pytest.raises(TypeError, match="unknown"):
            RunConfig.from_env(chunck_size=8)


class TestRungOrder:
    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "64")
        cfg = RunConfig.from_env(chunk_size=32)
        assert cfg.chunk_size == 32
        assert cfg.source_of("chunk_size") == "kwarg"

    def test_env_rung(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "64")
        monkeypatch.setenv("REPRO_TILE_SIZE", "16")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        monkeypatch.setenv("REPRO_STEP_MODE", "walker")
        monkeypatch.setenv("REPRO_PROCESSES", "3")
        monkeypatch.setenv("REPRO_DELAY", "4")
        monkeypatch.setenv("REPRO_TUNE", "off")
        cfg = RunConfig.from_env()
        assert (cfg.chunk_size, cfg.tile_size) == (64, 16)
        assert (cfg.backend, cfg.step_mode) == ("numpy", "walker")
        assert (cfg.processes, cfg.delay, cfg.tune) == (3, 4, TUNE_OFF)
        assert all(
            cfg.source_of(f) == "env"
            for f in ("chunk_size", "tile_size", "backend", "step_mode")
        )

    def test_env_parse_error_is_loud(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "many")
        with pytest.raises(ValueError, match="REPRO_CHUNK_SIZE"):
            RunConfig.from_env()

    def test_tuned_rung(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(32, 8, "float64", "vgh"), TunedConfig(chunk=8, tile=4))
        cfg = RunConfig().resolved_for(32, batch=8, dtype=np.float64, db=db)
        assert (cfg.chunk_size, cfg.tile_size) == (8, 4)
        assert cfg.source_of("chunk_size") == "tuned"
        assert cfg.source_of("tile_size") == "tuned"

    def test_tuned_tile_clamped_to_n_splines(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(4, 8, "float64", "vgh"), TunedConfig(chunk=8, tile=64))
        cfg = RunConfig().resolved_for(4, batch=8, dtype=np.float64, db=db)
        assert cfg.tile_size == 4

    def test_heuristic_rung(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")  # empty
        cfg = RunConfig().resolved_for(32, batch=8, dtype=np.float64, db=db)
        plan = plan_tiles(32, np.dtype(np.float64).itemsize)
        assert (cfg.chunk_size, cfg.tile_size) == (plan.chunk, plan.tile)
        assert cfg.source_of("chunk_size") == "heuristic"
        assert cfg.is_resolved
        assert cfg.step_mode == "batched"  # filled with the default

    def test_tune_off_skips_db(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(32, 8, "float64", "vgh"), TunedConfig(chunk=8, tile=4))
        cfg = RunConfig(tune="off").resolved_for(32, batch=8, dtype=np.float64, db=db)
        assert cfg.source_of("chunk_size") == "heuristic"

    def test_explicit_fields_pass_through_resolution(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(32, 8, "float64", "vgh"), TunedConfig(chunk=8, tile=4))
        cfg = RunConfig.from_env(chunk_size=128).resolved_for(
            32, batch=8, dtype=np.float64, db=db
        )
        assert cfg.chunk_size == 128  # rung 1 survives
        assert cfg.source_of("chunk_size") == "kwarg"
        assert cfg.tile_size == 4  # the unset field still resolves
        assert cfg.source_of("tile_size") == "tuned"

    def test_search_rung_measures_and_persists(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        cfg = RunConfig(tune="search").resolved_for(
            8, batch=8, dtype=np.float64, db=db
        )
        assert cfg.is_resolved
        assert cfg.source_of("chunk_size") == "tuned"
        # The winner is now in the DB: a lookup-mode config gets it too.
        warm = RunConfig().resolved_for(8, batch=8, dtype=np.float64, db=db)
        assert (warm.chunk_size, warm.tile_size) == (cfg.chunk_size, cfg.tile_size)

    def test_allclose_entry_invisible_to_exact_path(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(
            TuneShape(32, 8, "float64", "vgh"),
            TunedConfig(chunk=8, tile=4, tier=TIER_ALLCLOSE, rtol=1e-6, atol=1e-9),
        )
        # backend=None resolves to the bit-exact numpy path: the
        # allclose winner must not be served.
        cfg = RunConfig().resolved_for(32, batch=8, dtype=np.float64, db=db)
        assert cfg.source_of("chunk_size") == "heuristic"
        # An allclose-tier backend spec accepts it.
        cfg = RunConfig(backend="auto").resolved_for(
            32, batch=8, dtype=np.float64, db=db
        )
        assert cfg.source_of("chunk_size") == "tuned"

    def test_auto_backend_adopts_tuned_winner(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(
            TuneShape(32, 8, "float64", "vgh"),
            TunedConfig(chunk=8, tile=4, backend="numpy"),
        )
        # "auto" delegates the backend axis: the resolved config carries
        # the winner's concrete backend so workers never re-resolve.
        cfg = RunConfig(backend="auto").resolved_for(
            32, batch=8, dtype=np.float64, db=db
        )
        assert cfg.backend == "numpy"
        assert cfg.source_of("backend") == "tuned"
        # backend=None keeps meaning "engine default" — never overridden.
        cfg = RunConfig().resolved_for(32, batch=8, dtype=np.float64, db=db)
        assert cfg.backend is None
        assert cfg.source_of("backend") == "default"


class TestSerialization:
    def test_dict_round_trip(self):
        cfg = RunConfig.from_env(chunk_size=8, tile_size=4, tune="search")
        clone = RunConfig.from_dict(cfg.as_dict())
        assert clone == cfg

    def test_pickle_round_trip(self):
        cfg = RunConfig.from_env(chunk_size=8, backend="numpy")
        assert pickle.loads(pickle.dumps(cfg)) == cfg

    def test_load_run_config(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text('{"chunk_size": 8, "tile_size": 4, "future_knob": 1}')
        cfg = load_run_config(path)
        assert (cfg.chunk_size, cfg.tile_size) == (8, 4)
        assert cfg.source_of("chunk_size") == "kwarg"  # a file is rung 1
        assert cfg.source_of("backend") == "default"

    def test_load_run_config_rejects_non_object(self, tmp_path):
        path = tmp_path / "run.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="object"):
            load_run_config(path)


class TestEffectiveStepMode:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEP_MODE", "batched")
        cfg = RunConfig(step_mode="batched")
        assert effective_step_mode("walker", cfg) == "walker"

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEP_MODE", "batched")
        assert effective_step_mode(None, RunConfig(step_mode="walker")) == "walker"

    def test_env_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEP_MODE", "walker")
        assert effective_step_mode(None, None) == "walker"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEP_MODE", raising=False)
        assert effective_step_mode(None, RunConfig()) == "batched"
        assert effective_step_mode(None, None, default="walker") == "walker"


class TestDeprecatedKwargs:
    def test_warns_once_per_call_listing_all_kwargs(self):
        with pytest.warns(DeprecationWarning, match="chunk_size, tile_size") as rec:
            deprecated_kwargs("Api", chunk_size=True, tile_size=True, backend=False)
        assert len(rec) == 1

    def test_silent_when_nothing_used(self, recwarn):
        deprecated_kwargs("Api", chunk_size=False)
        assert not recwarn.list
