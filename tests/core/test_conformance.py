"""Property-based kernel conformance: every layout against the oracle.

The paper's optimizations (SoA, AoSoA, fused contraction) are only
optimizations if they compute the *same* V/VGL/VGH as the baseline; this
suite pins that down with hypothesis-driven randomized grids and
positions plus the mathematical identities the outputs must satisfy
(Hessian symmetry, Laplacian = trace of the Hessian).
"""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BsplineAoS,
    BsplineAoSoA,
    BsplineFused,
    BsplineSoA,
    Grid3D,
    Kind,
    refimpl,
    solve_coefficients_3d,
)

# Engines agree with the float64 reference to rounding error; the fused
# engine reorders the contraction, so allow a few ulps of slack.
RTOL, ATOL = 1e-9, 1e-11

grid_shapes = st.sampled_from([(8, 8, 8), (12, 10, 14), (6, 9, 7)])
spline_counts = st.sampled_from([8, 16, 24])
coords = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


@functools.lru_cache(maxsize=None)
def make_case(shape, n_splines):
    """A cached (grid, table, engines) case for one drawn configuration."""
    nx, ny, nz = shape
    grid = Grid3D(nx, ny, nz, (2.0, 1.5, 2.5))
    rng = np.random.default_rng(hash((shape, n_splines)) % 2**31)
    samples = rng.standard_normal((*grid.shape, n_splines))
    P = solve_coefficients_3d(samples, dtype=np.float64)
    engines = {
        "aos": BsplineAoS(grid, P),
        "soa": BsplineSoA(grid, P),
        "fused": BsplineFused(grid, P),
        "aosoa": BsplineAoSoA(grid, P, tile_size=n_splines // 2),
    }
    return grid, P, engines


def canonical(engine, kind, x, y, z):
    # Kind(value) is the silent normalization path; every engine speaks
    # the unified evaluate() protocol.
    k = Kind(kind)
    out = engine.new_output(k)
    engine.evaluate(k, (x, y, z), out)
    return out.as_canonical()


class TestAgainstReference:
    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=30, deadline=None)
    def test_v_matches_reference(self, shape, n, x, y, z):
        grid, P, engines = make_case(shape, n)
        ref = refimpl.reference_v(grid, P, x, y, z)
        for name, eng in engines.items():
            got = canonical(eng, "v", x, y, z)["v"]
            np.testing.assert_allclose(
                got, ref, rtol=RTOL, atol=ATOL, err_msg=f"engine {name}"
            )

    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=30, deadline=None)
    def test_vgl_matches_reference(self, shape, n, x, y, z):
        grid, P, engines = make_case(shape, n)
        v, g, lap = refimpl.reference_vgl(grid, P, x, y, z)
        for name, eng in engines.items():
            got = canonical(eng, "vgl", x, y, z)
            np.testing.assert_allclose(
                got["v"], v, rtol=RTOL, atol=ATOL, err_msg=f"{name} v"
            )
            np.testing.assert_allclose(
                got["g"], g, rtol=RTOL, atol=ATOL, err_msg=f"{name} g"
            )
            np.testing.assert_allclose(
                got["l"], lap, rtol=RTOL, atol=ATOL, err_msg=f"{name} l"
            )

    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=30, deadline=None)
    def test_vgh_matches_reference(self, shape, n, x, y, z):
        grid, P, engines = make_case(shape, n)
        v, g, h = refimpl.reference_vgh(grid, P, x, y, z)
        for name, eng in engines.items():
            got = canonical(eng, "vgh", x, y, z)
            np.testing.assert_allclose(
                got["v"], v, rtol=RTOL, atol=ATOL, err_msg=f"{name} v"
            )
            np.testing.assert_allclose(
                got["g"], g, rtol=RTOL, atol=ATOL, err_msg=f"{name} g"
            )
            np.testing.assert_allclose(
                got["h"], h, rtol=RTOL, atol=ATOL, err_msg=f"{name} h"
            )


class TestIdentities:
    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=30, deadline=None)
    def test_hessian_is_symmetric(self, shape, n, x, y, z):
        _, _, engines = make_case(shape, n)
        for name, eng in engines.items():
            h = canonical(eng, "vgh", x, y, z)["h"]
            # For AoS this checks the 9 actually-stored components; SoA
            # layouts reconstruct from the 6 independent streams.
            np.testing.assert_allclose(
                h, h.transpose(1, 0, 2), rtol=0, atol=0, err_msg=f"engine {name}"
            )

    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=30, deadline=None)
    def test_laplacian_equals_hessian_trace(self, shape, n, x, y, z):
        _, _, engines = make_case(shape, n)
        for name, eng in engines.items():
            lap = canonical(eng, "vgl", x, y, z)["l"]
            h = canonical(eng, "vgh", x, y, z)["h"]
            trace = h[0, 0] + h[1, 1] + h[2, 2]
            np.testing.assert_allclose(
                lap, trace, rtol=1e-8, atol=1e-10, err_msg=f"engine {name}"
            )

    @given(shape=grid_shapes, n=spline_counts, x=coords, y=coords, z=coords)
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_pairwise(self, shape, n, x, y, z):
        _, _, engines = make_case(shape, n)
        outs = {name: canonical(eng, "vgh", x, y, z) for name, eng in engines.items()}
        base = outs.pop("soa")
        for name, got in outs.items():
            for key in ("v", "g", "h"):
                np.testing.assert_allclose(
                    got[key],
                    base[key],
                    rtol=RTOL,
                    atol=ATOL,
                    err_msg=f"soa vs {name} ({key})",
                )
