"""Unit tests for cache-line-aligned allocation."""

import numpy as np
import pytest

from repro.core import aligned_empty, aligned_zeros, is_aligned
from repro.core.alloc import CACHE_LINE_BYTES


class TestAlignment:
    @pytest.mark.parametrize("alignment", [16, 64, 128, 4096])
    def test_aligned_empty_is_aligned(self, alignment):
        for _ in range(8):  # allocation addresses vary; try several
            a = aligned_empty(100, np.float32, alignment)
            assert a.ctypes.data % alignment == 0

    def test_default_alignment_is_cache_line(self):
        a = aligned_empty(10)
        assert is_aligned(a, CACHE_LINE_BYTES)

    def test_shape_and_dtype(self):
        a = aligned_empty((3, 5), np.float64)
        assert a.shape == (3, 5)
        assert a.dtype == np.float64
        assert a.flags["C_CONTIGUOUS"]

    def test_zeros_are_zero(self):
        assert not aligned_zeros((7, 11)).any()

    def test_writable(self):
        a = aligned_zeros(16)
        a += 1.0
        assert (a == 1.0).all()

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            aligned_empty(8, np.float32, 48)

    def test_rejects_zero_alignment(self):
        with pytest.raises(ValueError):
            aligned_empty(8, np.float32, 0)

    def test_is_aligned_false_for_offset_view(self):
        a = aligned_zeros(32, np.float32, 64)
        assert not is_aligned(a[1:], 64)
