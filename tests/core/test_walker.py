"""Unit tests for walker output buffers (AoS/SoA/tiled)."""

import numpy as np
import pytest

from repro.core import WalkerAoS, WalkerSoA, WalkerTiled
from repro.core.walker import HESS_COMPONENTS


class TestWalkerAoS:
    def test_shapes(self):
        w = WalkerAoS(10)
        assert w.v.shape == (10,)
        assert w.g.shape == (30,)
        assert w.l.shape == (10,)
        assert w.h.shape == (90,)

    def test_views_share_memory(self):
        w = WalkerAoS(4)
        w.g[3] = 7.0  # gradient x of spline 1
        assert w.gradient_view()[1, 0] == 7.0
        w.h[9 + 4] = 2.5  # hessian yy of spline 1
        assert w.hessian_view()[1, 1, 1] == 2.5

    def test_zero(self):
        w = WalkerAoS(4)
        w.v[:] = 1
        w.g[:] = 2
        w.h[:] = 3
        w.zero()
        assert not w.v.any() and not w.g.any() and not w.h.any()

    def test_canonical_shapes(self):
        c = WalkerAoS(6).as_canonical()
        assert c["v"].shape == (6,)
        assert c["g"].shape == (3, 6)
        assert c["h"].shape == (3, 3, 6)

    def test_output_bytes(self):
        w = WalkerAoS(8, np.float32)
        assert w.output_bytes == {"v": 32, "vgl": 160, "vgh": 416}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            WalkerAoS(0)


class TestWalkerSoA:
    def test_component_streams_are_contiguous(self):
        w = WalkerSoA(16)
        for stream in (w.gx, w.gy, w.gz, w.hess("xy")):
            assert stream.flags["C_CONTIGUOUS"]

    def test_hess_names(self):
        w = WalkerSoA(4)
        for i, name in enumerate(HESS_COMPONENTS):
            w.h[i, :] = i
            assert (w.hess(name) == i).all()

    def test_hess_rejects_unknown(self):
        with pytest.raises(ValueError):
            WalkerSoA(4).hess("xw")

    def test_canonical_hessian_symmetric(self):
        w = WalkerSoA(3)
        w.h[:] = np.arange(18).reshape(6, 3)
        h = w.as_canonical()["h"]
        np.testing.assert_array_equal(h, h.transpose(1, 0, 2))

    def test_output_bytes_symmetric_hessian(self):
        # SoA VGH has 10 streams vs AoS's 13 (paper Sec. V-A).
        w = WalkerSoA(8, np.float32)
        assert w.output_bytes["vgh"] == 10 * 8 * 4


class TestWalkerTiled:
    def test_structure(self):
        w = WalkerTiled(24, 8)
        assert len(w) == 3
        assert w[0].n_splines == 8

    def test_rejects_nondivisor(self):
        with pytest.raises(ValueError, match="divide"):
            WalkerTiled(24, 7)

    def test_canonical_concatenates_in_order(self):
        w = WalkerTiled(6, 2)
        for t, tile in enumerate(w.tiles):
            tile.v[:] = t
        np.testing.assert_array_equal(w.as_canonical()["v"], [0, 0, 1, 1, 2, 2])

    def test_zero_resets_all_tiles(self):
        w = WalkerTiled(8, 4)
        for tile in w.tiles:
            tile.v[:] = 9
        w.zero()
        assert not w.as_canonical()["v"].any()

    def test_output_bytes_match_soa_totals(self):
        flat = WalkerSoA(32, np.float32)
        tiled = WalkerTiled(32, 8, np.float32)
        assert tiled.output_bytes == flat.output_bytes
