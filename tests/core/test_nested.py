"""Unit tests for nested threading over tiles (Opt C)."""

import numpy as np
import pytest

from repro.core import BsplineAoSoA, BsplineSoA, NestedEvaluator, partition_tiles


class TestPartition:
    def test_even_partition(self):
        ranges = partition_tiles(8, 4)
        assert [list(r) for r in ranges] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_uneven_partition_spreads_remainder(self):
        ranges = partition_tiles(7, 3)
        sizes = [len(r) for r in ranges]
        assert sizes == [3, 2, 2]
        assert sorted(i for r in ranges for i in r) == list(range(7))

    def test_more_threads_than_tiles_gives_empty_ranges(self):
        ranges = partition_tiles(2, 5)
        assert [len(r) for r in ranges] == [1, 1, 0, 0, 0]

    def test_single_thread_owns_everything(self):
        (r,) = partition_tiles(10, 1)
        assert list(r) == list(range(10))

    def test_covers_exactly_once(self):
        for m, t in [(13, 4), (16, 16), (5, 7), (100, 9)]:
            ranges = partition_tiles(m, t)
            covered = sorted(i for r in ranges for i in r)
            assert covered == list(range(m))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            partition_tiles(0, 2)
        with pytest.raises(ValueError):
            partition_tiles(4, 0)


class TestNestedEvaluator:
    @pytest.fixture
    def tiled(self, small_grid, small_table):
        return BsplineAoSoA(small_grid, small_table, tile_size=4)

    @pytest.mark.parametrize("nth", [1, 2, 3, 6])
    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    def test_nested_matches_sequential(self, tiled, nth, kind, small_grid, rng):
        positions = small_grid.random_positions(3, rng)
        seq_out = tiled.new_output(kind)
        tiled.eval_tiles(kind, range(tiled.n_tiles), positions, seq_out)
        with NestedEvaluator(tiled, nth) as nested:
            par_out = tiled.new_output(kind)
            nested.evaluate(kind, positions, par_out)
        a, b = seq_out.as_canonical(), par_out.as_canonical()
        for field in ("v", "g", "l", "h"):
            np.testing.assert_array_equal(a[field], b[field])

    def test_convenience_wrappers(self, tiled, small_grid, rng):
        positions = small_grid.random_positions(2, rng)
        with NestedEvaluator(tiled, 2) as nested:
            out = tiled.new_output("vgh")
            nested.evaluate_v(positions, out)
            nested.evaluate_vgl(positions, out)
            nested.evaluate_vgh(positions, out)

    def test_rejects_unknown_kind(self, tiled, small_grid, rng):
        with NestedEvaluator(tiled, 2) as nested:
            with pytest.raises(ValueError, match="unknown kernel"):
                nested.evaluate("bad", small_grid.random_positions(1, rng),
                                tiled.new_output("v"))

    def test_rejects_nonpositive_threads(self, tiled):
        with pytest.raises(ValueError):
            NestedEvaluator(tiled, 0)

    def test_worker_exception_propagates(self, tiled, small_grid, rng):
        with NestedEvaluator(tiled, 2) as nested:
            wrong = BsplineAoSoA(
                tiled.grid, np.zeros((12, 10, 14, 24), dtype=np.float64), 12
            ).new_output("v")
            with pytest.raises(ValueError, match="blocking"):
                nested.evaluate("v", small_grid.random_positions(1, rng), wrong)

    def test_partition_is_static_and_contiguous(self, tiled):
        with NestedEvaluator(tiled, 3) as nested:
            assert len(nested.partition) == 3
            flattened = [i for r in nested.partition for i in r]
            assert flattened == sorted(flattened)

    def test_worker_exception_leaves_evaluator_usable(
        self, tiled, small_grid, rng
    ):
        # A failed evaluation must not wedge the pool: the next call with
        # a correct output buffer succeeds.
        positions = small_grid.random_positions(2, rng)
        with NestedEvaluator(tiled, 2) as nested:
            wrong = BsplineAoSoA(
                tiled.grid, np.zeros((12, 10, 14, 24), dtype=np.float64), 12
            ).new_output("v")
            with pytest.raises(ValueError):
                nested.evaluate("v", positions, wrong)
            good = tiled.new_output("v")
            nested.evaluate("v", positions, good)
            assert np.isfinite(good.tiles[0].v).all()

    def test_evaluate_after_close_raises_clear_error(
        self, tiled, small_grid, rng
    ):
        nested = NestedEvaluator(tiled, 2)
        assert not nested.closed
        nested.close()
        assert nested.closed
        with pytest.raises(RuntimeError, match="closed; create a new evaluator"):
            nested.evaluate(
                "v", small_grid.random_positions(1, rng), tiled.new_output("v")
            )

    def test_close_is_idempotent(self, tiled):
        nested = NestedEvaluator(tiled, 2)
        nested.close()
        nested.close()  # second close must not raise
        assert nested.closed

    def test_context_manager_closes(self, tiled):
        with NestedEvaluator(tiled, 2) as nested:
            pass
        assert nested.closed
