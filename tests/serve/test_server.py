"""End-to-end server tests: bit-gates, coalescing, admission, recovery.

The central contract is the **serving bit-gate**: whatever a tenant
receives over the wire must be ``assert_array_equal`` to a direct
in-process call with the same inputs — through JSON, shared memory, a
worker process, and (crucially) regardless of which other requests
happened to share its micro-batch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.batched import BsplineBatched
from repro.core.grid import Grid3D
from repro.core.kinds import Kind
from repro.parallel.crowd import CrowdSpec
from repro.parallel.vmc import run_vmc_population
from repro.serve import ServeClient, ServeError
from repro.serve.cache import SystemKey, solve_system_table

from .conftest import TINY_SYSTEM


def direct_eval(system: dict, kind: Kind, positions: np.ndarray) -> dict:
    """The in-process reference the served bytes must equal exactly."""
    key = SystemKey(
        system["n_orbitals"],
        system["box"],
        system["grid_shape"],
        system.get("dtype", "float64"),
    )
    table = solve_system_table(key)
    nx, ny, nz = key.grid_shape
    engine = BsplineBatched(Grid3D(nx, ny, nz, (1.0, 1.0, 1.0)), table)
    out = engine.new_output(kind, n=len(positions))
    engine.evaluate_batch(kind, positions, out)
    return {stream: getattr(out, stream) for stream in kind.streams}


@pytest.fixture(scope="module")
def server():
    """One shared server for the read-only tests in this module."""
    from repro.serve import ServeConfig, ServerThread

    config = ServeConfig(
        workers=2,
        max_batch=8,
        max_wait_us=20000.0,
        table_cache=4,
        worker_timeout=60.0,
        drain_timeout=20.0,
    )
    with ServerThread(config) as st:
        yield st


class TestBasics:
    def test_ping(self, server):
        with ServeClient(server.address) as client:
            assert client.ping() is True

    def test_stats_reports_config_and_metrics(self, server):
        with ServeClient(server.address) as client:
            client.ping()
            stats = client.stats()
        assert stats["workers"] == 2
        assert stats["max_batch"] == 8
        assert stats["draining"] is False
        assert stats["default_backend"] == "numpy"
        assert any(
            "serve_requests_total" in name for name in stats["metrics"]
        )

    def test_unknown_op_is_a_clean_error(self, server):
        with ServeClient(server.address) as client:
            with pytest.raises(ServeError, match="unknown op") as excinfo:
                client.request("launch")
            assert excinfo.value.code == "bad_request"
            assert client.ping()  # connection survives the error

    def test_garbage_line_is_a_clean_error(self, server):
        with ServeClient(server.address) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            import json

            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert client.ping()

    @pytest.mark.parametrize(
        "field, value, match",
        [
            ("kind", "gradient-only", "kind"),
            ("positions", [[0.5, 0.5]], "positions"),
            ("positions", [[0.5, 0.5, 1.5]], "fractional"),
            ("positions", [[0.5, float("nan"), 0.5]], "finite"),
            ("system", {"n_orbitals": 0}, "n_orbitals"),
            ("system", {"grid_shape": [8, 8]}, "grid_shape"),
            ("system", {"dtype": "int32"}, "dtype"),
            ("backend", 7, "backend"),
        ],
    )
    def test_invalid_eval_fields_are_bad_requests(
        self, server, field, value, match
    ):
        request = {
            "system": dict(TINY_SYSTEM),
            "kind": "v",
            "positions": [[0.5, 0.5, 0.5]],
        }
        request[field] = value
        with ServeClient(server.address) as client:
            with pytest.raises(ServeError, match=match) as excinfo:
                client.request("eval", **request)
            assert excinfo.value.code == "bad_request"

    def test_unknown_backend_is_backend_unavailable(self, server):
        with ServeClient(server.address) as client:
            with pytest.raises(ServeError) as excinfo:
                client.evaluate(
                    [[0.5, 0.5, 0.5]],
                    kind="v",
                    system=TINY_SYSTEM,
                    backend="no-such-backend",
                )
            assert excinfo.value.code == "backend_unavailable"


class TestServedEvalBitGate:
    @pytest.mark.parametrize("kind", [Kind.V, Kind.VGL, Kind.VGH])
    def test_each_kind_matches_direct_call_bitwise(self, server, kind):
        positions = np.random.default_rng(3).random((6, 3))
        reference = direct_eval(TINY_SYSTEM, kind, positions)
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind=kind.value, system=TINY_SYSTEM
            )
        assert set(streams) == set(kind.streams)
        for name in kind.streams:
            np.testing.assert_array_equal(streams[name], reference[name])

    def test_float32_table_served_bitwise(self, server):
        system = dict(TINY_SYSTEM, dtype="float32")
        positions = np.random.default_rng(4).random((5, 3))
        reference = direct_eval(system, Kind.VGH, positions)
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="vgh", system=system
            )
        assert streams["v"].dtype == np.float32
        for name in Kind.VGH.streams:
            np.testing.assert_array_equal(streams[name], reference[name])


class TestCoalescing:
    def test_concurrent_tenants_coalesce_and_stay_bit_identical(self, server):
        """Eight tenants fire compatible requests together: at least one
        fused batch must form, and every tenant's slice must equal its
        solo reference bitwise — coalescing moves latency, not bits."""
        n_tenants = 8
        rng = np.random.default_rng(9)
        payloads = [rng.random((3 + i % 3, 3)) for i in range(n_tenants)]
        barrier = threading.Barrier(n_tenants)
        results: list[tuple] = [None] * n_tenants

        def tenant(i: int) -> None:
            with ServeClient(server.address, tenant=f"tenant-{i}") as client:
                barrier.wait()
                results[i] = client.evaluate(
                    payloads[i], kind="vgh", system=TINY_SYSTEM
                )

        threads = [
            threading.Thread(target=tenant, args=(i,))
            for i in range(n_tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(r is not None for r in results)
        for i, (streams, _) in enumerate(results):
            reference = direct_eval(TINY_SYSTEM, Kind.VGH, payloads[i])
            for name in Kind.VGH.streams:
                np.testing.assert_array_equal(streams[name], reference[name])
        coalesced = [meta["coalesced"] for _, meta in results]
        assert max(coalesced) > 1, (
            f"no cross-request batch formed (coalesced={coalesced})"
        )

    def test_incompatible_kinds_do_not_share_a_batch(self, server):
        """A V and a VGH request racing the same window must not fuse —
        each still equals its own reference."""
        positions = np.random.default_rng(10).random((4, 3))
        outcome: dict[str, tuple] = {}
        barrier = threading.Barrier(2)

        def tenant(kind: str) -> None:
            with ServeClient(server.address, tenant=kind) as client:
                barrier.wait()
                outcome[kind] = client.evaluate(
                    positions, kind=kind, system=TINY_SYSTEM
                )

        threads = [
            threading.Thread(target=tenant, args=(k,)) for k in ("v", "vgh")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert set(outcome["v"][0]) == {"v"}
        assert set(outcome["vgh"][0]) == {"v", "g", "l", "h"}
        for kind in ("v", "vgh"):
            reference = direct_eval(TINY_SYSTEM, Kind(kind), positions)
            for name in Kind(kind).streams:
                np.testing.assert_array_equal(
                    outcome[kind][0][name], reference[name]
                )


class TestServedQmcRuns:
    def test_vmc_matches_inprocess_population_bitwise(self, server):
        spec = CrowdSpec(
            n_walkers=3, n_orbitals=2, grid_shape=(8, 8, 8), seed=41
        )
        reference = run_vmc_population(
            spec, n_steps=4, n_warmup=1, tau=0.3, processes=False
        )
        with ServeClient(server.address) as client:
            served = client.vmc(
                system=TINY_SYSTEM,
                n_walkers=3,
                n_steps=4,
                n_warmup=1,
                tau=0.3,
                seed=41,
            )
        np.testing.assert_array_equal(served["energies"], reference.energies)

    def test_dmc_matches_direct_run_bitwise(self, server):
        from repro.qmc.dmc import build_dmc_ensemble, run_dmc
        from repro.qmc.rng import WalkerRngPool

        pool = WalkerRngPool(23)
        walkers = build_dmc_ensemble(
            pool, 2, n_orbitals=2, box=6.0, grid_shape=(8, 8, 8)
        )
        reference = run_dmc(
            walkers, pool, n_generations=3, tau=0.05, ion_charge=4.0
        )
        with ServeClient(server.address) as client:
            served = client.dmc(
                system=TINY_SYSTEM, n_walkers=2, n_generations=3, seed=23
            )
        np.testing.assert_array_equal(
            served["energy_trace"], np.asarray(reference.energy_trace)
        )
        np.testing.assert_array_equal(
            served["population_trace"], np.asarray(reference.population_trace)
        )


class TestAdmissionControl:
    def test_zero_pending_budget_rejects_work_but_serves_pings(
        self, make_server
    ):
        server = make_server(max_pending=0, workers=1)
        with ServeClient(server.address) as client:
            assert client.ping()  # health checks bypass admission
            with pytest.raises(ServeError) as excinfo:
                client.evaluate([[0.5, 0.5, 0.5]], kind="v", system=TINY_SYSTEM)
            assert excinfo.value.code == "overloaded"
            stats = client.stats()
            rejected = [
                entry["value"]
                for name, entry in stats["metrics"].items()
                if "serve_rejected_total" in name
                and "reason=overloaded" in name
            ]
            assert rejected and rejected[0] >= 1

    def test_zero_tenant_budget_rejects_that_tenant(self, make_server):
        server = make_server(tenant_inflight=0, workers=1)
        with ServeClient(server.address, tenant="greedy") as client:
            with pytest.raises(ServeError) as excinfo:
                client.evaluate([[0.5, 0.5, 0.5]], kind="v", system=TINY_SYSTEM)
            assert excinfo.value.code == "tenant_limit"
            assert "greedy" in str(excinfo.value)


class TestLifecycle:
    def test_lru_eviction_under_live_serving(self, make_server, shm_sentinel):
        """With a one-entry cache, alternating systems force eviction,
        re-solve and worker re-attach — every answer stays bit-exact,
        and shutdown leaves no segments behind."""
        server = make_server(table_cache=1, workers=1)
        system_a = dict(TINY_SYSTEM)
        system_b = dict(TINY_SYSTEM, grid_shape=[10, 10, 10])
        positions = np.random.default_rng(6).random((4, 3))
        with ServeClient(server.address) as client:
            for system in (system_a, system_b, system_a, system_b):
                streams, _ = client.evaluate(
                    positions, kind="vgl", system=system
                )
                reference = direct_eval(system, Kind.VGL, positions)
                for name in Kind.VGL.streams:
                    np.testing.assert_array_equal(
                        streams[name], reference[name]
                    )
            stats = client.stats()
            assert stats["tables_cached"] == 1
            evictions = [
                entry["value"]
                for name, entry in stats["metrics"].items()
                if "serve_table_evictions_total" in name
            ]
            assert evictions and evictions[0] >= 3
        server.stop()

    def test_graceful_drain_finishes_inflight_work(self, make_server):
        """A request racing shutdown either completes normally or is
        refused with ``draining`` — never dropped on the floor."""
        server = make_server(workers=1)
        outcome: dict[str, object] = {}

        def long_request() -> None:
            try:
                with ServeClient(server.address) as client:
                    outcome["vmc"] = client.vmc(
                        system=TINY_SYSTEM, n_walkers=4, n_steps=40, seed=7
                    )
            except (ServeError, ConnectionError) as exc:
                outcome["error"] = exc

        thread = threading.Thread(target=long_request)
        thread.start()
        time.sleep(0.3)  # let the request reach the worker
        server.stop()
        thread.join(timeout=60)
        if "error" in outcome:
            error = outcome["error"]
            assert isinstance(error, ServeError) and error.code == "draining"
        else:
            assert outcome["vmc"]["energies"].shape == (4, 40)

    def test_shutdown_leaves_no_segments_or_workers(
        self, make_server, shm_sentinel
    ):
        server = make_server(workers=2)
        with ServeClient(server.address) as client:
            client.evaluate(
                [[0.25, 0.5, 0.75]], kind="vgh", system=TINY_SYSTEM
            )
        pids = server.server._pool.pids
        server.stop()
        import os

        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestWorkerRecovery:
    def test_worker_crash_surfaces_and_next_request_is_served(
        self, make_server
    ):
        """A worker SIGKILLed mid-batch yields one ``internal`` error;
        the pool replaces the worker and the very next request (same
        connection) is served correctly — one tenant's crash never
        poisons the next."""
        server = make_server(workers=1)
        positions = np.random.default_rng(8).random((3, 3))
        with ServeClient(server.address) as client:
            client.evaluate(positions, kind="v", system=TINY_SYSTEM)
            server.server._pool.arm_chaos(0, "sigkill")
            with pytest.raises(ServeError) as excinfo:
                client.evaluate(positions, kind="v", system=TINY_SYSTEM)
            assert excinfo.value.code == "internal"
            streams, _ = client.evaluate(
                positions, kind="vgh", system=TINY_SYSTEM
            )
        reference = direct_eval(TINY_SYSTEM, Kind.VGH, positions)
        for name in Kind.VGH.streams:
            np.testing.assert_array_equal(streams[name], reference[name])
