"""The wire protocol: framing, array codec bit-exactness, error shapes.

The load-bearing property is the float round trip: the serving layer's
whole "bit-identical to a direct engine call" gate rests on JSON float
serialization reproducing every float64 bit pattern (Python emits
``repr`` shortest-round-trip decimals) and float32 values widening and
re-narrowing exactly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve import protocol
from repro.serve.protocol import ProtocolError


class TestArrayCodec:
    def test_float64_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(11)
        array = rng.standard_normal((7, 3, 5)) * 10.0 ** rng.integers(
            -200, 200, size=(7, 3, 5)
        )
        # Through actual JSON text, exactly as the wire does it.
        decoded = protocol.decode_array(
            json.loads(json.dumps(protocol.encode_array(array)))
        )
        assert decoded.dtype == array.dtype
        np.testing.assert_array_equal(
            decoded.view(np.uint64), array.view(np.uint64)
        )

    def test_float32_round_trip_is_bit_identical(self):
        rng = np.random.default_rng(12)
        array = rng.standard_normal((64,)).astype(np.float32)
        decoded = protocol.decode_array(
            json.loads(json.dumps(protocol.encode_array(array)))
        )
        assert decoded.dtype == np.float32
        np.testing.assert_array_equal(
            decoded.view(np.uint32), array.view(np.uint32)
        )

    def test_shape_is_preserved(self):
        array = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
        assert protocol.decode_array(protocol.encode_array(array)).shape == (
            2,
            3,
            4,
        )

    def test_length_mismatch_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="does not match shape"):
            protocol.decode_array(
                {"dtype": "<f8", "shape": [2, 3], "data": [1.0, 2.0]}
            )

    def test_malformed_array_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="malformed array"):
            protocol.decode_array({"dtype": "<f8"})
        with pytest.raises(ProtocolError, match="malformed array"):
            protocol.decode_array(
                {"dtype": "not-a-dtype", "shape": [1], "data": [0.0]}
            )


class TestFraming:
    def test_line_round_trip(self):
        obj = {"id": 7, "op": "ping", "tenant": "t"}
        line = protocol.encode_line(obj)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert protocol.decode_line(line) == obj

    def test_invalid_json_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="invalid JSON"):
            protocol.decode_line(b"{nope}\n")

    def test_non_object_is_a_protocol_error(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            protocol.decode_line(b"[1, 2, 3]\n")

    def test_oversized_line_is_a_protocol_error(self):
        line = b'{"id": "' + b"x" * protocol.MAX_LINE_BYTES + b'"}\n'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_line(line)


class TestResponses:
    def test_ok_response_echoes_id(self):
        response = protocol.ok_response("req-9", {"pong": True})
        assert response == {"id": "req-9", "ok": True, "result": {"pong": True}}

    def test_ok_response_carries_meta_only_when_present(self):
        assert "meta" not in protocol.ok_response(1, {})
        assert protocol.ok_response(1, {}, {"coalesced": 3})["meta"] == {
            "coalesced": 3
        }

    def test_error_response_shape(self):
        response = protocol.error_response(4, "overloaded", "busy")
        assert response["ok"] is False
        assert response["error"] == {"code": "overloaded", "message": "busy"}

    def test_unknown_code_degrades_to_internal(self):
        response = protocol.error_response(None, "no-such-code", "boom")
        assert response["error"]["code"] == "internal"
        assert "no-such-code" in response["error"]["message"]

    def test_protocol_error_rejects_unknown_codes(self):
        with pytest.raises(ValueError, match="unknown protocol error code"):
            ProtocolError("not-a-code", "boom")

    def test_every_documented_code_is_constructible(self):
        for code in protocol.ERROR_CODES:
            assert ProtocolError(code, "x").code == code
