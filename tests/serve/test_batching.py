"""The micro-batcher: window lifecycle, keying, drain — no server needed.

Each test drives the batcher on a private event loop with a recording
flush, pinning the coalescing rules the server relies on: same key
coalesces, different keys never do, a full window closes immediately,
``max_batch=1`` (the benchmark baseline) never holds anything back.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve.batching import BatchItem, MicroBatcher


def run(coro):
    return asyncio.run(coro)


def make_item(n: int = 1, tenant: str = "t") -> BatchItem:
    return BatchItem(
        tenant, np.zeros((n, 3)), asyncio.get_running_loop().create_future()
    )


class Recorder:
    def __init__(self):
        self.batches: list[tuple[object, list[BatchItem]]] = []

    async def flush(self, key, items):
        self.batches.append((key, items))
        for item in items:
            if not item.future.done():
                item.future.set_result(None)


class TestWindowLifecycle:
    def test_requests_coalesce_within_the_window(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=8, max_wait=0.01)
            items = [make_item(n=i + 1) for i in range(3)]
            for item in items:
                batcher.submit("k", item)
            assert rec.batches == []  # window still open
            await asyncio.gather(*(i.future for i in items))
            assert len(rec.batches) == 1
            key, batch = rec.batches[0]
            assert key == "k" and batch == items
            return batcher

        run(scenario())

    def test_full_window_closes_without_waiting(self):
        async def scenario():
            rec = Recorder()
            # A window the test would time out waiting for — closing
            # must come from hitting max_batch, not the timer.
            batcher = MicroBatcher(rec.flush, max_batch=2, max_wait=60.0)
            a, b = make_item(), make_item()
            batcher.submit("k", a)
            batcher.submit("k", b)
            await asyncio.wait_for(asyncio.gather(a.future, b.future), 5.0)
            assert len(rec.batches) == 1
            assert batcher.pending_requests == 0

        run(scenario())

    def test_successive_windows_for_one_key(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=2, max_wait=60.0)
            items = [make_item() for _ in range(4)]
            for item in items:
                batcher.submit("k", item)
            await asyncio.wait_for(
                asyncio.gather(*(i.future for i in items)), 5.0
            )
            assert [len(b) for _, b in rec.batches] == [2, 2]

        run(scenario())

    def test_different_keys_never_coalesce(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=8, max_wait=0.01)
            a, b = make_item(), make_item()
            batcher.submit(("table-1", "vgh"), a)
            batcher.submit(("table-2", "vgh"), b)
            await asyncio.gather(a.future, b.future)
            assert sorted(k for k, _ in rec.batches) == [
                ("table-1", "vgh"),
                ("table-2", "vgh"),
            ]
            assert all(len(batch) == 1 for _, batch in rec.batches)

        run(scenario())

    def test_max_batch_one_never_waits(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=1, max_wait=60.0)
            item = make_item()
            batcher.submit("k", item)
            await asyncio.wait_for(item.future, 5.0)
            assert len(rec.batches) == 1

        run(scenario())

    def test_zero_wait_never_waits(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=8, max_wait=0.0)
            item = make_item()
            batcher.submit("k", item)
            await asyncio.wait_for(item.future, 5.0)
            assert len(rec.batches) == 1

        run(scenario())


class TestDrain:
    def test_flush_all_closes_every_open_window(self):
        async def scenario():
            rec = Recorder()
            batcher = MicroBatcher(rec.flush, max_batch=8, max_wait=60.0)
            a, b = make_item(), make_item()
            batcher.submit("k1", a)
            batcher.submit("k2", b)
            batcher.flush_all()
            await asyncio.wait_for(asyncio.gather(a.future, b.future), 5.0)
            assert len(rec.batches) == 2
            assert batcher.pending_requests == 0

        run(scenario())

    def test_wait_idle_awaits_inflight_flushes(self):
        async def scenario():
            started = asyncio.Event()
            release = asyncio.Event()
            done = []

            async def slow_flush(key, items):
                started.set()
                await release.wait()
                done.append(key)

            batcher = MicroBatcher(slow_flush, max_batch=1, max_wait=0.0)
            batcher.submit("k", make_item())
            await started.wait()
            waiter = asyncio.ensure_future(batcher.wait_idle())
            await asyncio.sleep(0.01)
            assert not waiter.done()  # flush still running
            release.set()
            await asyncio.wait_for(waiter, 5.0)
            assert done == ["k"]

        run(scenario())


class TestValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(lambda *a: None, max_batch=0, max_wait=1.0)
        with pytest.raises(ValueError, match="max_wait"):
            MicroBatcher(lambda *a: None, max_batch=1, max_wait=-1.0)

    def test_batch_item_counts_positions(self):
        async def scenario():
            assert make_item(n=5).n_positions == 5

        run(scenario())
