"""Backend selection in the serving path: precedence and failure modes.

The contracts, mirroring the CLI rules (``tests/backends/test_fallback.py``
pins the library side):

* an explicit ``--backend`` / ``ServeConfig.backend`` **beats** the
  ``REPRO_BACKEND`` environment variable — ``resolve_backend`` only
  consults the env var when no explicit spec is given, so a server
  started with ``backend="numpy"`` serves NumPy even when the
  environment names a backend this host cannot run;
* with no explicit backend, an unusable ``REPRO_BACKEND`` fails the
  server at **startup** (strict parent-side validation), never as a
  mid-request worker crash;
* a *tenant* naming an unavailable backend gets a clean
  ``backend_unavailable`` protocol error carrying the install hint, and
  the same connection keeps serving other requests — one tenant's bad
  backend never reaches (let alone kills) a worker.

Availability is controlled by poisoning ``sys.modules`` (the pattern
from ``tests/backends/test_fallback.py``), so these tests pass whether
or not numba is actually installed.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.backends import BackendUnavailable
from repro.backends.registry import _reset_for_tests
from repro.core.kinds import Kind
from repro.serve import ServeClient, ServeError

from .conftest import TINY_SYSTEM
from .test_server import direct_eval


@pytest.fixture
def no_numba(monkeypatch):
    """Make ``import numba`` raise ImportError, even if it is installed."""
    monkeypatch.setitem(sys.modules, "numba", None)
    _reset_for_tests()
    yield
    _reset_for_tests()


class TestStartupPrecedence:
    def test_explicit_backend_beats_env_var(
        self, no_numba, monkeypatch, make_server
    ):
        """REPRO_BACKEND names an unusable backend; the explicit config
        wins, so the server starts and serves NumPy bits."""
        positions = np.random.default_rng(2).random((3, 3))
        # Reference computed before the env poisoning (it resolves the
        # default backend too, and must not see the bad REPRO_BACKEND).
        reference = direct_eval(TINY_SYSTEM, Kind.V, positions)
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        server = make_server(backend="numpy", workers=1)
        assert server.server.default_backend == "numpy"
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="v", system=TINY_SYSTEM
            )
        np.testing.assert_array_equal(streams["v"], reference["v"])

    def test_env_backend_applies_when_no_explicit_choice(
        self, monkeypatch, make_server
    ):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        server = make_server(backend=None, workers=1)
        assert server.server.default_backend == "numpy"

    def test_unusable_env_backend_fails_startup_cleanly(
        self, no_numba, monkeypatch
    ):
        """No explicit backend + poisoned REPRO_BACKEND: the server
        refuses to start with the actionable library error — strict
        validation happens in the parent, before any worker exists."""
        from repro.serve import ServeConfig, ServerThread

        monkeypatch.setenv("REPRO_BACKEND", "numba")
        with pytest.raises(BackendUnavailable, match="pip install numba"):
            ServerThread(ServeConfig(workers=1))

    def test_unknown_explicit_backend_fails_startup(self):
        from repro.serve import ServeConfig, ServerThread

        with pytest.raises(BackendUnavailable, match="no-such-backend"):
            ServerThread(ServeConfig(workers=1, backend="no-such-backend"))


class TestPerRequestBackends:
    def test_unavailable_tenant_backend_is_a_protocol_error(
        self, no_numba, make_server
    ):
        """The rejection is parent-side: the error carries the install
        hint, the worker never sees the request, and the very next
        request on the same connection is served bit-exactly."""
        server = make_server(workers=1)
        positions = np.random.default_rng(5).random((4, 3))
        with ServeClient(server.address, tenant="hopeful") as client:
            with pytest.raises(ServeError, match="pip install numba") as excinfo:
                client.evaluate(
                    positions, kind="vgh", system=TINY_SYSTEM, backend="numba"
                )
            assert excinfo.value.code == "backend_unavailable"
            # No worker crashed: the pool still serves, same connection.
            streams, _ = client.evaluate(
                positions, kind="vgh", system=TINY_SYSTEM
            )
            stats = client.stats()
        reference = direct_eval(TINY_SYSTEM, Kind.VGH, positions)
        for name in Kind.VGH.streams:
            np.testing.assert_array_equal(streams[name], reference[name])
        rejections = [
            entry["value"]
            for name, entry in stats["metrics"].items()
            if "serve_rejected_total" in name
            and "reason=backend_unavailable" in name
            and "tenant=hopeful" in name
        ]
        assert rejections and rejections[0] >= 1

    def test_explicit_numpy_request_matches_default_bitwise(self, make_server):
        """Naming the default backend explicitly changes nothing."""
        server = make_server(workers=1)
        positions = np.random.default_rng(13).random((3, 3))
        with ServeClient(server.address) as client:
            by_default, _ = client.evaluate(
                positions, kind="vgl", system=TINY_SYSTEM
            )
            by_name, _ = client.evaluate(
                positions, kind="vgl", system=TINY_SYSTEM, backend="numpy"
            )
        for name in Kind.VGL.streams:
            np.testing.assert_array_equal(by_default[name], by_name[name])

    def test_auto_resolves_to_a_concrete_backend(self, make_server):
        """``backend="auto"`` is resolved parent-side to a concrete
        name; the request is served (whatever tier the host has)."""
        server = make_server(workers=1)
        positions = np.random.default_rng(17).random((3, 3))
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="v", system=TINY_SYSTEM, backend="auto"
            )
        assert streams["v"].shape == (3, TINY_SYSTEM["n_orbitals"])
