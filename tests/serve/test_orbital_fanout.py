"""The Opt C serving path: coalesced batches fanned across orbital blocks.

With ``ServeConfig(orbital_shards=K)`` every eval batch is split along
the spline axis, one block per leased worker, and reassembled
column-wise — the served bytes must equal both a plain (unfanned) server
and the direct in-process engine, and meta must say how many blocks
served the batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kinds import Kind
from repro.serve import ServeClient

from .test_server import direct_eval

#: Wide enough for real blocks: 6 orbitals fan into 2-3 column windows.
FAN_SYSTEM = {"n_orbitals": 6, "box": 6.0, "grid_shape": [8, 8, 8]}


class TestServeOrbitalFanout:
    @pytest.mark.parametrize("kind", [Kind.V, Kind.VGL, Kind.VGH])
    def test_fanned_streams_bit_identical_to_direct(
        self, make_server, kind, shm_sentinel
    ):
        server = make_server(workers=2, orbital_shards=2)
        positions = np.random.default_rng(8).random((5, 3))
        with ServeClient(server.address) as client:
            streams, meta = client.evaluate(
                positions, kind=kind.value, system=FAN_SYSTEM
            )
        server.stop()
        assert meta["orbital_blocks"] == 2
        want = direct_eval(FAN_SYSTEM, kind, positions)
        for stream in kind.streams:
            np.testing.assert_array_equal(streams[stream], want[stream])

    def test_fanned_matches_unfanned_server(self, make_server, shm_sentinel):
        positions = np.random.default_rng(9).random((4, 3))
        fanned = make_server(workers=2, orbital_shards=2)
        with ServeClient(fanned.address) as client:
            got_f, meta_f = client.evaluate(
                positions, kind="vgh", system=FAN_SYSTEM
            )
        fanned.stop()
        plain = make_server(workers=2, orbital_shards=1)
        with ServeClient(plain.address) as client:
            got_p, meta_p = client.evaluate(
                positions, kind="vgh", system=FAN_SYSTEM
            )
        plain.stop()
        assert meta_f["orbital_blocks"] == 2
        assert "orbital_blocks" not in meta_p
        for stream in Kind.VGH.streams:
            np.testing.assert_array_equal(got_f[stream], got_p[stream])

    def test_shards_clamped_by_worker_count(self, make_server, shm_sentinel):
        # Asking for more shards than workers must not deadlock the
        # lease pool: the fan plan is clamped to the workers available.
        server = make_server(workers=2, orbital_shards=4)
        positions = np.random.default_rng(10).random((3, 3))
        with ServeClient(server.address) as client:
            streams, meta = client.evaluate(
                positions, kind="vgh", system=FAN_SYSTEM
            )
        server.stop()
        assert meta["orbital_blocks"] == 2
        want = direct_eval(FAN_SYSTEM, Kind.VGH, positions)
        for stream in Kind.VGH.streams:
            np.testing.assert_array_equal(streams[stream], want[stream])

    def test_narrow_system_falls_back_to_single_engine(
        self, make_server, shm_sentinel
    ):
        # 2 orbitals -> one planner block; the fan path must quietly
        # serve through the ordinary single-worker dispatch.
        narrow = {"n_orbitals": 2, "box": 6.0, "grid_shape": [8, 8, 8]}
        server = make_server(workers=2, orbital_shards=2)
        positions = np.random.default_rng(11).random((3, 3))
        with ServeClient(server.address) as client:
            streams, meta = client.evaluate(
                positions, kind="vgl", system=narrow
            )
        server.stop()
        assert "orbital_blocks" not in meta
        want = direct_eval(narrow, Kind.VGL, positions)
        for stream in Kind.VGL.streams:
            np.testing.assert_array_equal(streams[stream], want[stream])

    def test_sequential_requests_reuse_block_engines(
        self, make_server, shm_sentinel
    ):
        server = make_server(workers=2, orbital_shards=2)
        rng = np.random.default_rng(12)
        with ServeClient(server.address) as client:
            for _ in range(3):
                positions = rng.random((4, 3))
                streams, meta = client.evaluate(
                    positions, kind="vgh", system=FAN_SYSTEM
                )
                assert meta["orbital_blocks"] == 2
                want = direct_eval(FAN_SYSTEM, Kind.VGH, positions)
                for stream in Kind.VGH.streams:
                    np.testing.assert_array_equal(streams[stream], want[stream])
        server.stop()
