"""Fixtures for the serving-layer tests.

Systems are deliberately tiny (2-4 orbitals on an 8-12 point grid): the
contracts under test are bitwise and structural, not statistical, and
server spin-up (forking the worker pool) dominates wall time anyway.

``make_server`` is a factory so each test picks its own knobs (window
length, cache capacity, admission caps); everything it creates is
stopped at teardown even when the test fails, so no worker processes or
``/dev/shm`` segments outlive a test.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import OBS
from repro.serve import ServeConfig, ServerThread

_SHM_DIR = Path("/dev/shm")


def shm_segments() -> set[str]:
    """Names of live shared-memory segments (empty on non-Linux hosts)."""
    if not _SHM_DIR.is_dir():
        return set()
    return {p.name for p in _SHM_DIR.iterdir()}


@pytest.fixture
def shm_sentinel():
    """Fail the test if it leaks any shared-memory segment."""
    before = shm_segments()
    yield
    leaked = shm_segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(autouse=True, scope="package")
def _obs_restored():
    """Guard: the package must leave the global OBS as it found it.

    (Per-test guards would misfire here: a live server legitimately
    keeps OBS enabled for its whole lifetime, which can span tests when
    a fixture is module-scoped.)
    """
    enabled_before = OBS.enabled
    yield
    assert OBS.enabled == enabled_before, "serve tests changed OBS state"
    OBS.reset()


#: The tiny tenant system most tests evaluate against.
TINY_SYSTEM = {"n_orbitals": 2, "box": 6.0, "grid_shape": [8, 8, 8]}

_DEFAULTS = dict(
    workers=2,
    max_batch=8,
    max_wait_us=5000.0,
    table_cache=4,
    worker_timeout=60.0,
    drain_timeout=20.0,
)


@pytest.fixture
def make_server():
    """Factory: ``make_server(**config_overrides) -> ServerThread``."""
    created: list[ServerThread] = []

    def make(**overrides) -> ServerThread:
        config = ServeConfig(**{**_DEFAULTS, **overrides})
        server = ServerThread(config)
        created.append(server)
        return server

    yield make
    for server in created:
        server.stop()
