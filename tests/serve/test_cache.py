"""The table cache: system identity, LRU lifetime, segment hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coeffs import pad_table_3d
from repro.parallel.crowd import CrowdSpec, solve_spec_table
from repro.parallel.shared_table import SharedTable
from repro.serve.cache import SystemKey, TableCache, solve_system_table


class TestSystemKey:
    def test_normalizes_representations(self):
        a = SystemKey(4, 6, [12, 12, 12], "float64")
        b = SystemKey(np.int64(4), 6.0, (12, 12, 12), np.float64)
        assert a == b and hash(a) == hash(b)

    def test_distinguishes_every_field(self):
        base = SystemKey(4, 6.0, (12, 12, 12), "float64")
        assert SystemKey(2, 6.0, (12, 12, 12), "float64") != base
        assert SystemKey(4, 7.0, (12, 12, 12), "float64") != base
        assert SystemKey(4, 6.0, (12, 12, 8), "float64") != base
        assert SystemKey(4, 6.0, (12, 12, 12), "float32") != base

    def test_accessors(self):
        key = SystemKey(4, 6.0, (12, 10, 8), "float32")
        assert key.n_orbitals == 4
        assert key.box == 6.0
        assert key.grid_shape == (12, 10, 8)
        assert key.dtype == "float32"


class TestSolveSystemTable:
    def test_matches_crowd_solver_bitwise(self):
        """The served table is exactly the crowd path's padded table."""
        key = SystemKey(2, 6.0, (8, 8, 8), "float64")
        spec = CrowdSpec(n_walkers=1, n_orbitals=2, box=6.0, grid_shape=(8, 8, 8))
        np.testing.assert_array_equal(
            solve_system_table(key), pad_table_3d(solve_spec_table(spec))
        )

    def test_is_ghost_padded(self):
        key = SystemKey(2, 6.0, (8, 10, 12), "float64")
        assert solve_system_table(key).shape == (11, 13, 15, 2)

    def test_dtype_follows_key(self):
        key = SystemKey(2, 6.0, (8, 8, 8), "float32")
        assert solve_system_table(key).dtype == np.float32


class TestTableCache:
    KEY_A = SystemKey(2, 6.0, (8, 8, 8), "float64")
    KEY_B = SystemKey(2, 6.0, (10, 10, 10), "float64")
    KEY_C = SystemKey(2, 6.0, (12, 12, 12), "float64")

    def test_get_returns_attachable_spec(self, shm_sentinel):
        cache = TableCache(capacity=2)
        try:
            spec = cache.get(self.KEY_A)
            with SharedTable.attach(spec) as view:
                np.testing.assert_array_equal(
                    view.array, solve_system_table(self.KEY_A)
                )
        finally:
            cache.close()

    def test_hit_does_not_resolve(self, shm_sentinel):
        cache = TableCache(capacity=2)
        try:
            assert cache.get(self.KEY_A) == cache.get(self.KEY_A)
            assert len(cache) == 1
        finally:
            cache.close()

    def test_lru_evicts_least_recently_served(self, shm_sentinel):
        cache = TableCache(capacity=2)
        try:
            name_a = cache.get(self.KEY_A)["name"]
            cache.get(self.KEY_B)
            cache.get(self.KEY_A)  # refresh A; B is now LRU
            name_b = cache.get(self.KEY_B)["name"]  # hit, refreshes B
            name_c = cache.get(self.KEY_C)["name"]  # evicts A, not B
            assert self.KEY_A not in cache
            assert self.KEY_B in cache and self.KEY_C in cache
            assert cache.drain_evicted() == [name_a]
            assert cache.drain_evicted() == []  # drained exactly once
            # The evicted segment really is gone.
            with pytest.raises(FileNotFoundError):
                SharedTable.attach(
                    {"name": name_a, "shape": [11, 11, 11, 2], "dtype": "<f8"}
                )
            assert name_b != name_c
        finally:
            cache.close()

    def test_close_unlinks_every_segment(self, shm_sentinel):
        cache = TableCache(capacity=4)
        spec_a = cache.get(self.KEY_A)
        spec_b = cache.get(self.KEY_B)
        cache.close()
        for spec in (spec_a, spec_b):
            with pytest.raises(FileNotFoundError):
                SharedTable.attach(spec)
        assert len(cache) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TableCache(capacity=0)
