"""The server's RunConfig reaches the worker-side engines — bit-exactly.

Serving is the one path that resolves *worker-side*: tables arrive per
request, so the parent can only ship rungs 1-2 (explicit + env) and each
worker finishes rungs 3-4 against the table it actually serves.  These
tests pin both halves: explicit chunk/tile flow through to the engine,
and whatever the worker resolves to, the served bytes stay equal to the
in-process reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RunConfig
from repro.core.kinds import Kind
from repro.serve import ServeClient
from repro.tune.db import TuneDB, TunedConfig, TuneShape

from .conftest import TINY_SYSTEM
from .test_server import direct_eval


def _positions(n=6, seed=5):
    return np.random.default_rng(seed).random((n, 3))


class TestWorkerSideResolution:
    def test_explicit_config_served_bit_exact(self, make_server):
        server = make_server(
            workers=1, run_config=RunConfig.from_env(chunk_size=2, tile_size=1)
        )
        positions = _positions()
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="vgh", system=TINY_SYSTEM
            )
        expected = direct_eval(TINY_SYSTEM, Kind.VGH, positions)
        for name, got in streams.items():
            np.testing.assert_array_equal(got, expected[name])

    def test_stats_reports_run_config(self, make_server):
        server = make_server(
            run_config=RunConfig.from_env(chunk_size=2, tile_size=1)
        )
        with ServeClient(server.address) as client:
            stats = client.stats()
        cfg = stats.get("run_config")
        if cfg is None:
            pytest.skip("stats does not expose run_config")
        assert (cfg["chunk_size"], cfg["tile_size"]) == (2, 1)

    def test_env_rung_reaches_workers(self, monkeypatch, make_server):
        """REPRO_* set before server start is rung 2 for worker engines;
        the served bytes must still match the reference exactly."""
        monkeypatch.setenv("REPRO_CHUNK_SIZE", "3")
        monkeypatch.setenv("REPRO_TILE_SIZE", "2")
        server = make_server(workers=1)
        positions = _positions(seed=6)
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="vgl", system=TINY_SYSTEM
            )
        expected = direct_eval(TINY_SYSTEM, Kind.VGL, positions)
        for name, got in streams.items():
            np.testing.assert_array_equal(got, expected[name])

    def test_tuned_rung_resolves_in_worker(self, monkeypatch, tmp_path, make_server):
        """A tuned winner for the served table's shape is picked up by
        the worker (the DB env rides into the spawned process) without
        changing a single served bit."""
        db_path = tmp_path / "db.json"
        monkeypatch.setenv("REPRO_TUNE_DB", str(db_path))
        n_splines = TINY_SYSTEM["n_orbitals"]
        TuneDB(path=db_path).put(
            TuneShape(n_splines, n_splines, "float64", "vgh"),
            TunedConfig(chunk=2, tile=1),
        )
        server = make_server(workers=1)
        positions = _positions(seed=7)
        with ServeClient(server.address) as client:
            streams, _ = client.evaluate(
                positions, kind="vgh", system=TINY_SYSTEM
            )
        expected = direct_eval(TINY_SYSTEM, Kind.VGH, positions)
        for name, got in streams.items():
            np.testing.assert_array_equal(got, expected[name])

    def test_config_independent_of_batch_composition(self, make_server):
        """Same positions, different serve configs: identical bytes.

        Two servers with deliberately different blocking must serve the
        same answers — config is an execution detail, not a result knob.
        """
        positions = _positions(seed=8)
        results = []
        for chunk, tile in ((2, 1), (64, 2)):
            server = make_server(
                workers=1,
                run_config=RunConfig.from_env(chunk_size=chunk, tile_size=tile),
            )
            with ServeClient(server.address) as client:
                streams, _ = client.evaluate(
                    positions, kind="vgh", system=TINY_SYSTEM
                )
            results.append(streams)
        for name in results[0]:
            np.testing.assert_array_equal(results[0][name], results[1][name])
