"""Tests for the miniQMC kernel drivers (paper Figs. 3/6 ports)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.miniqmc import (
    MiniQmcConfig,
    live_kernel_config,
    paper_coral,
    paper_sweep_sizes,
    random_coefficients,
    run_kernel_driver,
    run_tiled_driver,
)


@pytest.fixture(scope="module")
def cfg():
    return live_kernel_config(n_splines=32, grid=(10, 10, 10), n_samples=4)


@pytest.fixture(scope="module")
def table(cfg):
    return random_coefficients(cfg)


class TestConfig:
    def test_paper_sweep(self):
        assert paper_sweep_sizes() == (128, 256, 512, 1024, 2048, 4096)

    def test_coral_matches_paper(self):
        c = paper_coral()
        assert c.n_splines == 128
        assert c.grid_shape == (48, 48, 60)
        assert c.n_samples == 512
        assert c.n_walkers == 36

    def test_table_bytes(self):
        c = MiniQmcConfig(n_splines=4096, grid_shape=(48, 48, 48))
        assert c.table_bytes == 48**3 * 4096 * 4  # ~1.8 GB, the paper scale

    def test_random_coefficients_shape_dtype(self, cfg, table):
        assert table.shape == (10, 10, 10, 32)
        assert table.dtype == np.float32

    def test_random_coefficients_deterministic(self, cfg):
        np.testing.assert_array_equal(
            random_coefficients(cfg), random_coefficients(cfg)
        )


class TestKernelDriver:
    @pytest.mark.parametrize("engine", ["aos", "soa", "fused"])
    def test_runs_and_reports(self, cfg, table, engine):
        res = run_kernel_driver(cfg, engine, coefficients=table)
        assert set(res.seconds) == {"v", "vgl", "vgh"}
        for kern in ("v", "vgl", "vgh"):
            assert res.seconds[kern] > 0
            assert res.throughputs[kern] > 0
            assert res.evals[kern] == cfg.n_samples * cfg.n_iters

    def test_kernel_subset(self, cfg, table):
        res = run_kernel_driver(cfg, "soa", kernels=("vgh",), coefficients=table)
        assert set(res.seconds) == {"vgh"}

    def test_rejects_unknown_engine(self, cfg):
        with pytest.raises(ValueError):
            run_kernel_driver(cfg, "cuda")

    def test_walkers_scale_evals(self, table):
        c = live_kernel_config(n_splines=32, grid=(10, 10, 10), n_samples=2)
        c = replace(c, n_walkers=3)
        res = run_kernel_driver(c, "fused", kernels=("v",), coefficients=table)
        assert res.evals["v"] == 6


class TestTiledDriver:
    def test_requires_tile_size(self, cfg, table):
        with pytest.raises(ValueError, match="tile_size"):
            run_tiled_driver(cfg, coefficients=table)

    def test_runs_tiled(self, cfg, table):
        tc = replace(cfg, tile_size=8)
        res = run_tiled_driver(tc, kernels=("vgh",), coefficients=table)
        assert res.engine == "aosoa8"
        assert res.throughputs["vgh"] > 0

    def test_runs_nested(self, cfg, table):
        tc = replace(cfg, tile_size=8)
        res = run_tiled_driver(tc, n_threads=2, kernels=("v",), coefficients=table)
        assert res.throughputs["v"] > 0

    def test_tiled_outputs_match_flat(self, cfg, table):
        # Not just timing: the driver's engines agree numerically.
        from repro.core import BsplineAoSoA, BsplineSoA, Grid3D, Kind

        grid = Grid3D(10, 10, 10)
        flat = BsplineSoA(grid, table)
        tiled = BsplineAoSoA(grid, table, 8)
        of, ot = flat.new_output(Kind.VGH), tiled.new_output(Kind.VGH)
        flat.vgh(0.31, 0.62, 0.13, of)
        tiled.vgh(0.31, 0.62, 0.13, ot)
        np.testing.assert_allclose(
            of.as_canonical()["v"], ot.as_canonical()["v"], atol=1e-6
        )


class TestProcessSharding:
    """``processes=K`` shards walkers over worker processes; the work
    done (eval counts) must not depend on K, and sequential-only
    features must refuse to combine with it."""

    @pytest.mark.parametrize("n_processes", [1, 2])
    def test_kernel_driver_eval_counts_match_sequential(
        self, cfg, table, n_processes
    ):
        c = replace(cfg, n_walkers=3)
        seq = run_kernel_driver(c, "soa", kernels=("vgh",), coefficients=table)
        par = run_kernel_driver(
            c, "soa", kernels=("vgh",), coefficients=table, processes=n_processes
        )
        assert par.evals == seq.evals
        assert par.seconds["vgh"] > 0
        assert par.throughputs["vgh"] > 0

    def test_tiled_driver_accepts_processes(self, cfg, table):
        tc = replace(cfg, tile_size=8, n_walkers=2)
        par = run_tiled_driver(tc, kernels=("v",), coefficients=table, processes=2)
        assert par.engine == "aosoa8"
        assert par.evals["v"] == tc.n_walkers * tc.n_iters * tc.n_samples

    def test_processes_excludes_checkpointing(self, cfg, table, tmp_path):
        with pytest.raises(ValueError, match="sequential-mode"):
            run_kernel_driver(
                cfg,
                "soa",
                coefficients=table,
                processes=2,
                checkpoint_every=1,
                checkpoint_path=tmp_path,
            )

    def test_processes_excludes_nested_threads(self, cfg, table):
        tc = replace(cfg, tile_size=8)
        with pytest.raises(ValueError, match="worker processes"):
            run_tiled_driver(tc, n_threads=2, coefficients=table, processes=2)


class TestBatchedEngine:
    """``engine="batched"`` runs the padded/tiled batch kernels."""

    def test_runs_and_reports(self, cfg, table):
        res = run_kernel_driver(cfg, "batched", coefficients=table)
        assert res.engine == "batched"
        assert set(res.seconds) == {"v", "vgl", "vgh"}
        for kern in ("v", "vgl", "vgh"):
            assert res.evals[kern] == cfg.n_walkers * cfg.n_iters * cfg.n_samples
            assert res.throughputs[kern] > 0

    def test_chunk_and_tile_knobs(self, cfg, table):
        c = replace(cfg, tile_size=8, chunk_size=2)
        res = run_kernel_driver(c, "batched", kernels=("vgh",), coefficients=table)
        assert res.evals["vgh"] == c.n_walkers * c.n_iters * c.n_samples

    @pytest.mark.parametrize("n_processes", [1, 2])
    def test_sharded_eval_counts_match_sequential(self, cfg, table, n_processes):
        c = replace(cfg, n_walkers=3)
        seq = run_kernel_driver(c, "batched", kernels=("vgh",), coefficients=table)
        par = run_kernel_driver(
            c,
            "batched",
            kernels=("vgh",),
            coefficients=table,
            processes=n_processes,
        )
        assert par.evals == seq.evals
        assert par.seconds["vgh"] > 0

    def test_fingerprint_includes_chunk_size(self, cfg):
        from repro.miniqmc.driver import _driver_fingerprint

        a = _driver_fingerprint(replace(cfg, chunk_size=None), "batched", ("v",))
        b = _driver_fingerprint(replace(cfg, chunk_size=2), "batched", ("v",))
        assert a != b
