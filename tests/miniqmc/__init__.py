"""Test package."""
