"""Tests for the full profiled miniQMC application."""

import numpy as np
import pytest

from repro.miniqmc import TimedProxy, build_app, profile_shares, run_profiled
from repro.perf import SectionTimers


class TestTimedProxy:
    def test_times_listed_methods(self):
        timers = SectionTimers()

        class Obj:
            def work(self):
                return 42

            def other(self):
                return 7

        p = TimedProxy(Obj(), timers, "sec", ("work",))
        assert p.work() == 42
        assert p.other() == 7
        assert "sec" in timers.elapsed
        # `other` did not add a second entry.
        assert len(timers.elapsed) == 1

    def test_attribute_passthrough(self):
        timers = SectionTimers()

        class Obj:
            value = 13

        assert TimedProxy(Obj(), timers, "s", ()).value == 13

    def test_setattr_forwards(self):
        timers = SectionTimers()

        class Obj:
            pass

        o = Obj()
        p = TimedProxy(o, timers, "s", ())
        p.x = 5
        assert o.x == 5

    def test_len_and_getitem_forward(self):
        timers = SectionTimers()
        p = TimedProxy([1, 2, 3], timers, "s", ())
        assert len(p) == 3
        assert p[1] == 2

    def test_times_even_on_exception(self):
        timers = SectionTimers()

        class Obj:
            def boom(self):
                raise RuntimeError

        p = TimedProxy(Obj(), timers, "s", ("boom",))
        with pytest.raises(RuntimeError):
            p.boom()
        assert timers.elapsed["s"] > 0


class TestApp:
    @pytest.fixture(scope="class")
    def app(self):
        return build_app(n_orbitals=6, grid_shape=(10, 10, 10))

    def test_build_sizes(self, app):
        assert len(app.wf.electrons) == 12
        assert app.wf.slater.spos.n_orbitals == 6

    def test_run_profiled_sections(self, app):
        total, timers = run_profiled(app, n_sweeps=1)
        shares = timers.shares()
        assert total > 0
        for section in ("bspline", "distance_tables", "jastrow", "other"):
            assert section in shares
        assert np.isclose(sum(shares.values()), 100.0)

    def test_bspline_share_exceeds_distance_tables(self):
        # The QMC adapter drives the batched B-spline path for every
        # engine now, so the kernel share has dropped from the dominant
        # Table III row toward the optimized profile — but orbital
        # evaluation must still cost far more than the (SoA) distance
        # tables.
        app = build_app(
            n_orbitals=6, grid_shape=(10, 10, 10), layout="soa", engine="aos"
        )
        _, timers = run_profiled(app, n_sweeps=1)
        shares = timers.shares()
        assert shares["bspline"] > shares["distance_tables"]

    def test_wavefunction_consistency_with_proxies(self, app):
        # The timing proxies must not perturb the math: recompute agrees.
        lv = app.wf.log_value
        app.wf.recompute()
        assert np.isclose(app.wf.log_value, lv, atol=1e-6)


class TestProfileShares:
    def test_shares_shape(self):
        shares = profile_shares(
            n_orbitals=4, layout="aos", engine="aos", n_sweeps=1, grid_shape=(8, 8, 8)
        )
        assert np.isclose(sum(shares.values()), 100.0)

    def test_engine_knob_shares_one_batched_path(self):
        # After the Engine/Kind redesign every engine drives the same
        # batched B-spline kernels in the QMC layer (that is what makes
        # the walker and crowd step modes bit-identical), so the profile
        # no longer depends on the engine knob; the per-layout kernels
        # are compared by the miniqmc drivers instead.
        baseline = profile_shares(
            n_orbitals=6, layout="soa", engine="aos", n_sweeps=1, grid_shape=(8, 8, 8)
        )
        optimized = profile_shares(
            n_orbitals=6, layout="soa", engine="fused", n_sweeps=1, grid_shape=(8, 8, 8)
        )
        assert abs(optimized["bspline"] - baseline["bspline"]) < 20.0
