"""Tests for the walker-ensemble driver."""

import numpy as np
import pytest

from repro.core import Grid3D
from repro.miniqmc import WalkerEnsemble


@pytest.fixture
def grid_and_table(rng):
    grid = Grid3D(10, 10, 10)
    P = rng.standard_normal((10, 10, 10, 32)).astype(np.float32)
    return grid, P


class TestConstruction:
    def test_shared_table_not_copied(self, grid_and_table):
        grid, P = grid_and_table
        ens = WalkerEnsemble(grid, P, n_walkers=4)
        assert ens.engine.P is P
        assert ens.table_bytes == P.nbytes

    def test_private_outputs(self, grid_and_table):
        grid, P = grid_and_table
        ens = WalkerEnsemble(grid, P, n_walkers=3)
        assert len(ens.outputs) == 3
        assert ens.outputs[0] is not ens.outputs[1]

    def test_rejects_bad_args(self, grid_and_table):
        grid, P = grid_and_table
        with pytest.raises(ValueError):
            WalkerEnsemble(grid, P, 0)
        with pytest.raises(ValueError):
            WalkerEnsemble(grid, P, 2, engine="cuda")


class TestRun:
    def test_batch_result_fields(self, grid_and_table):
        grid, P = grid_and_table
        ens = WalkerEnsemble(grid, P, n_walkers=3)
        res = ens.run_batch("vgh", n_samples=2)
        assert res.n_walkers == 3
        assert res.seconds > 0
        assert res.throughput > 0
        assert res.total_output_bytes == 3 * res.output_bytes_per_walker

    def test_output_memory_scales_with_walkers(self, grid_and_table):
        # The O(Nw N) output-footprint bookkeeping of paper Sec. I.
        grid, P = grid_and_table
        r2 = WalkerEnsemble(grid, P, 2).run_batch("vgh", 1)
        r4 = WalkerEnsemble(grid, P, 4).run_batch("vgh", 1)
        assert r4.total_output_bytes == 2 * r2.total_output_bytes

    def test_walkers_independent_streams(self, grid_and_table):
        grid, P = grid_and_table
        ens = WalkerEnsemble(grid, P, n_walkers=2)
        ens.run_batch("v", n_samples=1)
        # Different positions => different outputs.
        assert not np.allclose(ens.outputs[0].v, ens.outputs[1].v)

    def test_deterministic_given_seed(self, grid_and_table):
        grid, P = grid_and_table
        a = WalkerEnsemble(grid, P, 2, seed=5)
        b = WalkerEnsemble(grid, P, 2, seed=5)
        a.run_batch("v", 2)
        b.run_batch("v", 2)
        np.testing.assert_array_equal(a.outputs[1].v, b.outputs[1].v)

    def test_threaded_walkers_match_sequential(self, grid_and_table):
        grid, P = grid_and_table
        seq = WalkerEnsemble(grid, P, 4, seed=9)
        par = WalkerEnsemble(grid, P, 4, seed=9)
        seq.run_batch("vgh", 2, walker_threads=1)
        par.run_batch("vgh", 2, walker_threads=4)
        for ws, wp in zip(seq.outputs, par.outputs):
            np.testing.assert_array_equal(ws.v, wp.v)
            np.testing.assert_array_equal(ws.h, wp.h)

    def test_rejects_unknown_kernel(self, grid_and_table):
        grid, P = grid_and_table
        with pytest.raises(ValueError):
            WalkerEnsemble(grid, P, 1).run_batch("vvv")
