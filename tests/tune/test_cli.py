"""``python -m repro tune`` — run / show / clear against an explicit DB.

The CI tuner job leans on the ``--json`` report: its second-run
``measured == 0`` assertion is exactly how the workflow proves the DB
warm path works, so that contract is pinned here first.
"""

import json

import pytest

from repro.tune.cli import main
from repro.tune.db import TuneDB, TunedConfig, TuneShape


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "db.json"


def run_cli(*argv):
    return main([str(a) for a in argv])


class TestRun:
    def test_tiny_run_populates_db(self, db_path, capsys):
        assert run_cli("run", "--tiny", "--db", db_path, "--repeats", "1") == 0
        out = capsys.readouterr().out
        assert "measured" in out
        entries = TuneDB(path=db_path).entries()
        assert len(entries) == 2  # the two --tiny shapes

    def test_second_run_measures_zero(self, db_path, capsys):
        run_cli("run", "--tiny", "--db", db_path, "--repeats", "1", "--json")
        first = json.loads(capsys.readouterr().out)
        assert first["measured"] > 0
        run_cli("run", "--tiny", "--db", db_path, "--repeats", "1", "--json")
        second = json.loads(capsys.readouterr().out)
        assert second["measured"] == 0
        assert all(r["from_db"] for r in second["shapes"])

    def test_force_remeasures(self, db_path, capsys):
        run_cli("run", "--tiny", "--db", db_path, "--repeats", "1")
        capsys.readouterr()
        run_cli("run", "--tiny", "--db", db_path, "--repeats", "1", "--force", "--json")
        report = json.loads(capsys.readouterr().out)
        assert report["measured"] > 0

    def test_explicit_shape(self, db_path, capsys):
        assert (
            run_cli(
                "run", "--shape", "16x8", "--dtype", "float64", "--db", db_path,
                "--repeats", "1", "--json",
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert len(report["shapes"]) == 1
        row = report["shapes"][0]
        assert row["shape"] == "16x8:float64:vgh"
        assert row["chunk"] >= 1 and row["tile"] >= 1
        assert TuneDB(path=db_path).get(TuneShape(16, 8, "float64")) is not None

    def test_bad_shape_is_a_clean_error(self, db_path, capsys):
        with pytest.raises(SystemExit):
            run_cli("run", "--shape", "16by8", "--db", db_path)


class TestShow:
    def test_show_empty(self, db_path, capsys):
        assert run_cli("show", "--db", db_path) == 0
        assert "no entries" in capsys.readouterr().out.lower()

    def test_show_lists_entries(self, db_path, capsys):
        TuneDB(path=db_path).put(
            TuneShape(64, 32, "float64"), TunedConfig(chunk=16, tile=8, speedup=1.3)
        )
        assert run_cli("show", "--db", db_path) == 0
        out = capsys.readouterr().out
        assert "64" in out and "16" in out

    def test_show_json(self, db_path, capsys):
        TuneDB(path=db_path).put(
            TuneShape(64, 32, "float64"), TunedConfig(chunk=16, tile=8)
        )
        assert run_cli("show", "--db", db_path, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert len(report["entries"]) == 1
        assert report["entries"][0]["chunk"] == 16


class TestClear:
    def test_clear(self, db_path, capsys):
        TuneDB(path=db_path).put(
            TuneShape(64, 32, "float64"), TunedConfig(chunk=16, tile=8)
        )
        assert run_cli("clear", "--db", db_path) == 0
        assert "1" in capsys.readouterr().out
        assert not TuneDB(path=db_path).entries()

    def test_clear_empty_is_fine(self, db_path):
        assert run_cli("clear", "--db", db_path) == 0


class TestModuleEntry:
    def test_dispatch_from_python_m_repro(self, db_path, capsys):
        from repro.__main__ import main as repro_main

        assert repro_main(["tune", "show", "--db", str(db_path)]) == 0
        assert "no entries" in capsys.readouterr().out.lower()
