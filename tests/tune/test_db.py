"""The persistent per-host TuneDB: winners survive processes, not hosts.

The DB is the third rung of the resolution order, so its failure modes
matter as much as its hits: a corrupt file, a foreign host's entries, or
an ``allclose``-tier winner offered to an ``exact``-tier consumer must
all degrade to "no entry", never to a crash or a wrong config.
"""

import json
import subprocess
import sys

import pytest

from repro.tune.db import (
    TIER_ALLCLOSE,
    TIER_EXACT,
    TuneDB,
    TunedConfig,
    TuneShape,
    default_db_path,
)
from repro.tune.hostspec import HostSpec


def _host(name: str) -> HostSpec:
    """A synthetic host identity with a name-derived fingerprint."""
    return HostSpec(
        l2_bytes=1 << 20,
        llc_bytes=8 << 20,
        cache_source="env",
        cpu_count=4,
        machine=name,
        system="Linux",
    )

SHAPE = TuneShape(64, 32, "float64", "vgh")
WINNER = TunedConfig(chunk=16, tile=8, speedup=1.4, candidates=6)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        assert db.get(SHAPE) is None
        db.put(SHAPE, WINNER)
        got = db.get(SHAPE)
        assert (got.chunk, got.tile, got.tier) == (16, 8, TIER_EXACT)

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "db.json"
        TuneDB(path=path).put(SHAPE, WINNER)
        got = TuneDB(path=path).get(SHAPE)
        assert (got.chunk, got.tile) == (16, 8)

    def test_persists_across_processes(self, tmp_path):
        """The acceptance criterion verbatim: a winner written by one
        process is served to a fresh interpreter."""
        path = tmp_path / "db.json"
        TuneDB(path=path).put(SHAPE, WINNER)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.tune.db import TuneDB, TuneShape\n"
                f"cfg = TuneDB(path={str(path)!r}).get(TuneShape(64, 32, 'float64'))\n"
                "print(cfg.chunk, cfg.tile)",
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.split() == ["16", "8"]

    def test_config_dict_round_trip(self):
        cfg = TunedConfig(
            chunk=4, tile=2, backend="numba", tier=TIER_ALLCLOSE,
            rtol=1e-6, atol=1e-9, seconds=0.25, baseline_seconds=0.5,
            speedup=2.0, candidates=9,
        )
        clone = TunedConfig.from_dict(cfg.as_dict())
        assert clone.as_dict() == cfg.as_dict()

    def test_shape_key_distinguishes_every_field(self):
        base = TuneShape(64, 32, "float64", "vgh")
        keys = {
            base.key,
            TuneShape(65, 32, "float64", "vgh").key,
            TuneShape(64, 33, "float64", "vgh").key,
            TuneShape(64, 32, "float32", "vgh").key,
            TuneShape(64, 32, "float64", "vgl").key,
        }
        assert len(keys) == 5


class TestPathResolution:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TUNE_DB", str(tmp_path / "mine.json"))
        assert default_db_path() == tmp_path / "mine.json"
        TuneDB().put(SHAPE, WINNER)
        assert (tmp_path / "mine.json").exists()

    def test_xdg_cache_home_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TUNE_DB", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_db_path() == tmp_path / "repro" / "tunedb.json"


class TestDurability:
    def test_corrupt_file_reads_as_empty(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text("{ not json")
        db = TuneDB(path=path)
        assert db.get(SHAPE) is None
        db.put(SHAPE, WINNER)  # and writes still go through
        assert TuneDB(path=path).get(SHAPE) is not None

    def test_wrong_schema_version_reads_as_empty(self, tmp_path):
        path = tmp_path / "db.json"
        path.write_text(json.dumps({"version": 999, "hosts": {"x": {}}}))
        assert TuneDB(path=path).get(SHAPE) is None

    def test_put_is_atomic_no_stray_tempfiles(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        for batch in (8, 16, 32):
            db.put(TuneShape(64, batch, "float64"), WINNER)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "db.json"]
        assert not leftovers

    def test_reload_sees_external_writes(self, tmp_path):
        path = tmp_path / "db.json"
        reader = TuneDB(path=path)
        assert reader.get(SHAPE) is None
        TuneDB(path=path).put(SHAPE, WINNER)  # another process, effectively
        assert reader.get(SHAPE) is not None


class TestHostScoping:
    def test_other_hosts_entries_invisible(self, tmp_path):
        path = tmp_path / "db.json"
        TuneDB(path=path, host=_host("node-a")).put(SHAPE, WINNER)
        assert TuneDB(path=path, host=_host("node-b")).get(SHAPE) is None
        assert TuneDB(path=path, host=_host("node-a")).get(SHAPE) is not None

    def test_clear_scopes_to_host(self, tmp_path):
        path = tmp_path / "db.json"
        TuneDB(path=path, host=_host("node-a")).put(SHAPE, WINNER)
        TuneDB(path=path, host=_host("node-b")).put(SHAPE, WINNER)
        assert TuneDB(path=path, host=_host("node-a")).clear() == 1
        assert TuneDB(path=path, host=_host("node-a")).get(SHAPE) is None
        assert TuneDB(path=path, host=_host("node-b")).get(SHAPE) is not None

    def test_clear_all_hosts(self, tmp_path):
        path = tmp_path / "db.json"
        TuneDB(path=path, host=_host("node-a")).put(SHAPE, WINNER)
        TuneDB(path=path, host=_host("node-b")).put(SHAPE, WINNER)
        assert TuneDB(path=path, host=_host("node-a")).clear(all_hosts=True) == 2

    def test_entries_listing(self, tmp_path):
        path = tmp_path / "db.json"
        db = TuneDB(path=path, host=_host("node-a"))
        db.put(SHAPE, WINNER)
        rows = db.entries()
        assert len(rows) == 1
        fp, shape, cfg = rows[0]
        assert fp == _host("node-a").fingerprint
        assert (shape.n_splines, shape.batch) == (64, 32)
        assert cfg.chunk == 16


class TestLookup:
    def test_exact_batch_hit(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(SHAPE, WINNER)
        _, cfg = db.lookup(64, "float64", batch=32)
        assert cfg.chunk == 16

    def test_nearest_batch_within_4x(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(64, 32, "float64"), TunedConfig(chunk=16, tile=8))
        db.put(TuneShape(64, 512, "float64"), TunedConfig(chunk=64, tile=8))
        near_shape, near = db.lookup(64, "float64", batch=48)
        assert (near_shape.batch, near.chunk) == (32, 16)
        far_shape, far = db.lookup(64, "float64", batch=300)
        assert (far_shape.batch, far.chunk) == (512, 64)

    def test_batch_beyond_4x_misses(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(TuneShape(64, 8, "float64"), TunedConfig(chunk=16, tile=8))
        assert db.lookup(64, "float64", batch=64) is None
        assert db.lookup(64, "float64", batch=32) is not None  # exactly 4x

    def test_no_batch_prefers_any_entry(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(SHAPE, WINNER)
        assert db.lookup(64, "float64") is not None

    def test_min_tier_filters(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(
            SHAPE,
            TunedConfig(chunk=16, tile=8, tier=TIER_ALLCLOSE, rtol=1e-6, atol=1e-9),
        )
        assert db.lookup(64, "float64", batch=32, min_tier=TIER_EXACT) is None
        hit = db.lookup(64, "float64", batch=32, min_tier=TIER_ALLCLOSE)
        assert hit is not None and hit[1].tier == TIER_ALLCLOSE

    def test_exact_serves_allclose_consumers(self):
        assert TunedConfig(chunk=1, tile=1, tier=TIER_EXACT).serves_tier(
            TIER_ALLCLOSE
        )

    @pytest.mark.parametrize("field", ["dtype", "kind"])
    def test_dtype_and_kind_are_exact_match(self, tmp_path, field):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(SHAPE, WINNER)
        other = {"dtype": "float32", "kind": "vgl"}[field]
        kwargs = {"dtype": "float64", "kind": "vgh", field: other}
        assert db.lookup(64, kwargs["dtype"], kind=kwargs["kind"], batch=32) is None
