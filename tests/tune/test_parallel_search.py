"""The v2 parallel tune axes: measured (processes, orbital_shards).

Three contracts: the v2 schema round-trips and reads v1 files forward
(missing parallel axes default to sequential), `parallel_candidates`
only proposes shard counts the planner can realize, and
`autotune_parallel` bit-gates every fan-out candidate against the
sequential engine before timing it — plus its warm-hit rule, which
re-searches (and upgrades) entries whose parallel axes were never
measured.
"""

import json

import pytest

from repro.core.partition import plan_orbital_blocks
from repro.tune.db import (
    SCHEMA_VERSION,
    TuneDB,
    TunedConfig,
    TuneShape,
)
from repro.tune.search import autotune_parallel, parallel_candidates

SHAPE = TuneShape(16, 4, "float64", "vgh")


class TestSchemaV2:
    def test_round_trip_parallel_axes(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        cfg = TunedConfig(chunk=8, tile=4, processes=4, orbital_shards=2)
        db.put(SHAPE, cfg)
        stored = TuneDB(path=tmp_path / "db.json").get(SHAPE)
        assert (stored.processes, stored.orbital_shards) == (4, 2)
        doc = json.loads((tmp_path / "db.json").read_text())
        assert doc["version"] == SCHEMA_VERSION == 2

    def test_v1_file_reads_forward_as_sequential(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(SHAPE, TunedConfig(chunk=8, tile=4))
        doc = json.loads((tmp_path / "db.json").read_text())
        doc["version"] = 1
        for entry in next(iter(doc["hosts"].values()))["entries"].values():
            entry.pop("processes", None)
            entry.pop("orbital_shards", None)
        (tmp_path / "db.json").write_text(json.dumps(doc))
        stored = TuneDB(path=tmp_path / "db.json").get(SHAPE)
        assert (stored.processes, stored.orbital_shards) == (1, 1)

    @pytest.mark.parametrize("field", ["processes", "orbital_shards"])
    def test_rejects_nonpositive_axes(self, field):
        with pytest.raises(ValueError):
            TunedConfig(chunk=8, tile=4, **{field: 0})


class TestParallelCandidates:
    def test_sequential_baseline_always_first(self):
        assert parallel_candidates(1, 48) == [(1, 1)]
        assert parallel_candidates(4, 48)[0] == (1, 1)

    def test_walker_only_row_then_realizable_shards(self):
        cands = parallel_candidates(8, 48)
        assert cands[1] == (8, 1)
        for procs, shards in cands[2:]:
            assert procs == 8
            assert shards == len(plan_orbital_blocks(48, shards))
            assert shards >= 2

    def test_narrow_axis_clamps_and_dedupes(self):
        cands = parallel_candidates(8, 5)
        # 5 splines support at most 2 blocks; one orbital row survives.
        assert cands == [(1, 1), (8, 1), (8, 2)]

    def test_rejects_nonpositive_processes(self):
        with pytest.raises(ValueError):
            parallel_candidates(0, 48)


class TestAutotuneParallel:
    def test_cold_search_measures_gates_and_persists(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        out = autotune_parallel(SHAPE, db=db, processes=2, repeats=1)
        assert not out.from_db
        assert out.measured >= 2  # sequential baseline + >=1 parallel row
        cfg = out.config
        assert cfg.processes >= 1 and cfg.orbital_shards >= 1
        assert cfg.baseline_seconds is not None
        stored = TuneDB(path=tmp_path / "db.json").get(SHAPE)
        assert (stored.processes, stored.orbital_shards) == (
            cfg.processes,
            cfg.orbital_shards,
        )

    def test_sequential_entry_is_researched_then_warm(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        # A v1-style entry: (chunk, tile) tuned, parallel axes never
        # measured — must NOT short-circuit the parallel search.
        db.put(SHAPE, TunedConfig(chunk=8, tile=4))
        out = autotune_parallel(SHAPE, db=db, processes=2, repeats=1)
        assert not out.from_db
        assert out.measured >= 2
        # The upgraded entry short-circuits only if it measured a
        # parallel winner; a (1, 1) verdict is re-checked next time.
        again = autotune_parallel(SHAPE, db=db, processes=2, repeats=1)
        if out.config.processes > 1 or out.config.orbital_shards > 1:
            assert again.from_db and again.measured == 0
        else:
            assert not again.from_db

    def test_force_remeasures_a_parallel_entry(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        db.put(
            SHAPE,
            TunedConfig(chunk=8, tile=4, processes=2, orbital_shards=2),
        )
        warm = autotune_parallel(SHAPE, db=db, processes=2)
        assert warm.from_db and warm.measured == 0
        forced = autotune_parallel(
            SHAPE, db=db, processes=2, repeats=1, force=True
        )
        assert not forced.from_db and forced.measured >= 2
