"""The measured search engine: every candidate gated, winners persisted.

The non-negotiable here is the conformance gate — a candidate config can
only win by being *fast*, never by being *wrong* — so the tests drive
the gate with a poisoned engine and check it actually rejects, then
check the warm-path economics (second search = zero measurements).
"""

import numpy as np
import pytest

from repro.core.grid import Grid3D
from repro.tune.db import TIER_EXACT, TuneDB, TuneShape
from repro.tune.planner import plan_tiles
from repro.tune.search import (
    autotune_shape,
    autotune_table,
    candidate_configs,
)

SHAPE = TuneShape(16, 8, "float64", "vgh")


def _table_and_grid(shape=SHAPE, grid_shape=(8, 8, 8)):
    nx, ny, nz = grid_shape
    rng = np.random.default_rng(7)
    table = rng.standard_normal((nx, ny, nz, shape.n_splines)).astype(shape.dtype)
    return Grid3D(nx, ny, nz, (1.0, 1.0, 1.0)), table


class TestCandidates:
    def test_heuristic_is_first(self):
        itemsize = np.dtype("float64").itemsize
        cands = candidate_configs(SHAPE, itemsize, 8)
        plan = plan_tiles(SHAPE.n_splines, itemsize)
        assert cands[0] == (plan.chunk, plan.tile)

    def test_bounded_and_unique(self):
        cands = candidate_configs(
            TuneShape(512, 512, "float64"), 8, max_candidates=6
        )
        assert 1 <= len(cands) <= 6
        assert len(set(cands)) == len(cands)

    def test_tiles_never_exceed_n_splines(self):
        for n in (4, 16, 64):
            for chunk, tile in candidate_configs(TuneShape(n, 32, "float64"), 8, 16):
                assert 1 <= tile <= n
                assert chunk >= 1


class TestAutotuneTable:
    def test_cold_search_measures_and_wins(self, tmp_path):
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        out = autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=4)
        assert not out.from_db
        assert out.measured >= 1
        assert out.config.tier == TIER_EXACT
        assert out.config.candidates == out.measured
        assert out.config.speedup >= 1.0  # heuristic is in the pool, so >= baseline

    def test_winner_is_persisted(self, tmp_path):
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        out = autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=4)
        stored = TuneDB(path=tmp_path / "db.json").get(SHAPE)
        assert (stored.chunk, stored.tile) == (out.config.chunk, out.config.tile)

    def test_warm_hit_measures_nothing(self, tmp_path):
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=4)
        warm = autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=4)
        assert warm.from_db
        assert warm.measured == 0

    def test_force_remeasures(self, tmp_path):
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=4)
        forced = autotune_table(
            grid, table, SHAPE, db=db, repeats=1, max_candidates=4, force=True
        )
        assert not forced.from_db
        assert forced.measured >= 1

    def test_persist_false_leaves_db_untouched(self, tmp_path):
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        autotune_table(
            grid, table, SHAPE, db=db, repeats=1, max_candidates=4, persist=False
        )
        assert db.get(SHAPE) is None

    def test_auto_sweeps_the_backend_axis(self, tmp_path):
        """backend="auto" measures the candidate grid once per available
        backend and crowns a winner that names the backend it ran on."""
        from repro.backends import available_backends

        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        solo = autotune_table(
            grid, table, SHAPE, db=db, repeats=1, max_candidates=4, persist=False
        )
        swept = autotune_table(
            grid,
            table,
            SHAPE,
            db=db,
            repeats=1,
            max_candidates=4,
            backend="auto",
        )
        avail = available_backends()
        assert swept.config.backend in avail
        if len(avail) > 1:
            # More backends, strictly more measurements (gate rejections
            # can shave candidates, never a whole conforming backend).
            assert swept.measured > solo.measured
        if swept.config.backend == "numpy":
            assert swept.config.tier == TIER_EXACT
        else:
            assert swept.config.tier == "allclose"
            assert swept.config.rtol > 0 or swept.config.atol > 0
        stored = db.get(SHAPE)
        assert stored.backend == swept.config.backend

    def test_gate_rejects_wrong_kernels(self, tmp_path, monkeypatch):
        """Poison the engine under test; the oracle must veto every
        candidate rather than crown a fast-but-wrong winner."""
        import repro.core.batched as batched

        real_eval = batched.BsplineBatched.evaluate_batch

        def poisoned(self, kind, positions, out):
            real_eval(self, kind, positions, out)
            out.v += 1.0e-3

        monkeypatch.setattr(batched.BsplineBatched, "evaluate_batch", poisoned)
        grid, table = _table_and_grid()
        db = TuneDB(path=tmp_path / "db.json")
        with pytest.raises(RuntimeError, match="conformance"):
            autotune_table(grid, table, SHAPE, db=db, repeats=1, max_candidates=2)
        assert db.get(SHAPE) is None  # nothing wrong ever lands in the DB


class TestAutotuneShape:
    def test_synthetic_path_round_trips(self, tmp_path):
        db = TuneDB(path=tmp_path / "db.json")
        out = autotune_shape(SHAPE, db=db, repeats=1, max_candidates=3)
        assert not out.from_db
        assert db.get(SHAPE) is not None
        warm = autotune_shape(SHAPE, db=db, repeats=1, max_candidates=3)
        assert warm.from_db and warm.measured == 0

    def test_deterministic_winner_for_same_shape(self, tmp_path):
        """Same shape, two independent DBs: the winner may legitimately
        differ by timing noise, but both must be valid gated configs."""
        for name in ("a", "b"):
            db = TuneDB(path=tmp_path / f"{name}.json")
            out = autotune_shape(SHAPE, db=db, repeats=1, max_candidates=3)
            assert out.config.tier == TIER_EXACT
            assert 1 <= out.config.tile <= SHAPE.n_splines
