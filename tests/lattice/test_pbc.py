"""Unit tests for minimal-image PBC geometry."""

import numpy as np
import pytest

from repro.lattice import (
    Cell,
    graphite_unit_cell,
    minimal_image_displacements,
    minimal_image_distances,
    wigner_seitz_radius,
)


def brute_force_min_dist(cell, a, b, reach=2):
    """Oracle: search a (2*reach+1)^3 image block."""
    best = np.inf
    for i in range(-reach, reach + 1):
        for j in range(-reach, reach + 1):
            for k in range(-reach, reach + 1):
                img = b + np.array([i, j, k], dtype=float) @ cell.lattice
                best = min(best, float(np.linalg.norm(img - a)))
    return best


class TestOrthorhombic:
    def test_simple_wrap(self):
        c = Cell.cubic(10.0)
        d = minimal_image_distances(c, [[0.5, 0, 0]], [[9.5, 0, 0]])
        assert np.isclose(d[0, 0], 1.0)

    def test_displacement_sign(self):
        c = Cell.cubic(10.0)
        disp = minimal_image_displacements(c, [[0.5, 0, 0]], [[9.5, 0, 0]])
        np.testing.assert_allclose(disp[0, 0], [-1.0, 0.0, 0.0])

    def test_matches_brute_force(self, rng):
        c = Cell.orthorhombic(3.0, 4.0, 5.0)
        a = rng.random((4, 3)) * [3, 4, 5]
        b = rng.random((5, 3)) * [3, 4, 5]
        d = minimal_image_distances(c, a, b)
        for i in range(4):
            for j in range(5):
                assert np.isclose(d[i, j], brute_force_min_dist(c, a[i], b[j]))

    def test_self_distance_zero(self):
        c = Cell.cubic(2.0)
        p = np.array([[0.3, 1.9, 0.7]])
        assert np.isclose(minimal_image_distances(c, p, p)[0, 0], 0.0)


class TestTriclinic:
    def test_matches_brute_force_graphite(self, rng):
        c = graphite_unit_cell()
        a = c.frac_to_cart(rng.random((4, 3)))
        b = c.frac_to_cart(rng.random((4, 3)))
        d = minimal_image_distances(c, a, b)
        for i in range(4):
            for j in range(4):
                assert np.isclose(d[i, j], brute_force_min_dist(c, a[i], b[j]))

    def test_sheared_cell_where_rounding_fails(self):
        # A heavily sheared cell: componentwise rounding in fractional
        # space picks the wrong image; the 27-image search must not.
        lat = np.array([[1.0, 0.0, 0.0], [0.9, 0.5, 0.0], [0.0, 0.0, 1.0]])
        c = Cell(lat)
        a = np.zeros((1, 3))
        b = c.frac_to_cart(np.array([[0.5, 0.5, 0.0]]))
        d = minimal_image_distances(c, a, b)[0, 0]
        assert np.isclose(d, brute_force_min_dist(c, a[0], b[0]))

    def test_displacement_antisymmetry(self, rng):
        c = graphite_unit_cell()
        a = c.frac_to_cart(rng.random((3, 3)))
        b = c.frac_to_cart(rng.random((3, 3)))
        dab = minimal_image_displacements(c, a, b)
        dba = minimal_image_displacements(c, b, a)
        np.testing.assert_allclose(dab, -dba.transpose(1, 0, 2), atol=1e-12)

    def test_distance_consistent_with_displacement(self, rng):
        c = graphite_unit_cell()
        a = c.frac_to_cart(rng.random((3, 3)))
        disp = minimal_image_displacements(c, a, a)
        dist = minimal_image_distances(c, a, a)
        np.testing.assert_allclose(np.linalg.norm(disp, axis=-1), dist, atol=1e-12)


class TestWignerSeitz:
    def test_cubic(self):
        assert np.isclose(wigner_seitz_radius(Cell.cubic(2.0)), 1.0)

    def test_orthorhombic_min_edge(self):
        assert np.isclose(wigner_seitz_radius(Cell.orthorhombic(2, 4, 6)), 1.0)

    def test_distances_never_exceed_diameter_bound(self, rng):
        c = graphite_unit_cell()
        rws = wigner_seitz_radius(c)
        a = c.frac_to_cart(rng.random((10, 3)))
        d = minimal_image_distances(c, a, a)
        # Any minimal-image distance is at most the WS-cell circumradius;
        # a loose but useful bound is the max edge length.
        assert d.max() <= c.edge_lengths.max()
        assert rws > 0
