"""Unit tests for simulation cells."""

import numpy as np
import pytest

from repro.lattice import Cell, graphite_unit_cell


class TestConstruction:
    def test_cubic(self):
        c = Cell.cubic(3.0)
        assert np.isclose(c.volume, 27.0)
        assert c.is_orthorhombic

    def test_orthorhombic(self):
        c = Cell.orthorhombic(1.0, 2.0, 3.0)
        np.testing.assert_allclose(c.edge_lengths, [1.0, 2.0, 3.0])

    def test_graphite_not_orthorhombic(self):
        assert not graphite_unit_cell().is_orthorhombic

    def test_rejects_singular(self):
        with pytest.raises(ValueError, match="singular"):
            Cell(np.array([[1, 0, 0], [2, 0, 0], [0, 0, 1]], dtype=float))

    def test_rejects_left_handed(self):
        with pytest.raises(ValueError, match="right-handed"):
            Cell(np.diag([1.0, 1.0, -1.0]))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Cell(np.eye(2))

    def test_reciprocal_identity(self):
        c = graphite_unit_cell()
        np.testing.assert_allclose(
            c.lattice @ c.reciprocal.T, 2 * np.pi * np.eye(3), atol=1e-12
        )


class TestConversions:
    def test_frac_cart_roundtrip(self, rng):
        c = graphite_unit_cell()
        frac = rng.random((20, 3))
        np.testing.assert_allclose(
            c.cart_to_frac(c.frac_to_cart(frac)), frac, atol=1e-12
        )

    def test_wrap_frac(self):
        c = Cell.cubic(1.0)
        np.testing.assert_allclose(
            c.wrap_frac([1.25, -0.25, 0.5]), [0.25, 0.75, 0.5]
        )

    def test_wrap_cart_preserves_lattice_equivalence(self, rng):
        c = graphite_unit_cell()
        pos = c.frac_to_cart(rng.random(3) + np.array([2.0, -1.0, 3.0]))
        wrapped = c.wrap_cart(pos)
        dfrac = c.cart_to_frac(pos - wrapped)
        np.testing.assert_allclose(dfrac, np.round(dfrac), atol=1e-9)
        assert (c.cart_to_frac(wrapped) >= -1e-12).all()
        assert (c.cart_to_frac(wrapped) < 1.0 + 1e-12).all()


class TestSupercell:
    def test_supercell_volume(self):
        c = graphite_unit_cell()
        s = c.supercell((4, 4, 1))
        assert np.isclose(s.volume, 16 * c.volume)

    def test_rejects_bad_tiling(self):
        with pytest.raises(ValueError):
            Cell.cubic(1.0).supercell((0, 1, 1))

    def test_tile_positions_count_and_range(self):
        c = Cell.cubic(1.0)
        basis = np.array([[0.0, 0.0, 0.0], [0.5, 0.5, 0.5]])
        tiled = c.tile_positions(basis, (2, 3, 1))
        assert tiled.shape == (12, 3)
        assert (tiled >= 0).all() and (tiled < 1.0).all()

    def test_tiled_positions_are_distinct(self):
        c = Cell.cubic(1.0)
        tiled = c.tile_positions(np.zeros((1, 3)), (2, 2, 2))
        assert len(np.unique(np.round(tiled, 9), axis=0)) == 8

    def test_supercell_tiling_physical_consistency(self):
        # Tiling a point at the unit-cell origin by (2,1,1) puts images at
        # supercell fractions 0 and 1/2 along a1.
        c = Cell.cubic(2.0)
        tiled = c.tile_positions(np.zeros((1, 3)), (2, 1, 1))
        sc = c.supercell((2, 1, 1))
        carts = sc.frac_to_cart(tiled)
        np.testing.assert_allclose(carts[1] - carts[0], [2.0, 0, 0], atol=1e-12)
