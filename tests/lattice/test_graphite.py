"""Unit tests for the graphite geometry and benchmark descriptors."""

import numpy as np
import pytest

from repro.lattice import (
    GRAPHITE_A_BOHR,
    GRAPHITE_C_BOHR,
    coral_4x4x1,
    graphite_basis_frac,
    graphite_unit_cell,
    minimal_image_distances,
    sweep_system,
)


class TestUnitCell:
    def test_hexagonal_angles(self):
        c = graphite_unit_cell()
        a1, a2, a3 = c.lattice
        cos12 = a1 @ a2 / (np.linalg.norm(a1) * np.linalg.norm(a2))
        assert np.isclose(cos12, -0.5)  # 120 degrees in-plane
        assert np.isclose(a1 @ a3, 0.0) and np.isclose(a2 @ a3, 0.0)

    def test_lattice_constants(self):
        c = graphite_unit_cell()
        assert np.isclose(c.edge_lengths[0], GRAPHITE_A_BOHR)
        assert np.isclose(c.edge_lengths[2], GRAPHITE_C_BOHR)

    def test_four_atom_basis(self):
        basis = graphite_basis_frac()
        assert basis.shape == (4, 3)
        # Two atoms per layer, layers at z = 0 and z = 1/2.
        assert sorted(basis[:, 2]) == [0.0, 0.0, 0.5, 0.5]

    def test_nearest_neighbour_distance(self):
        # In-plane C-C bond in graphite is a/sqrt(3) ~ 1.42 Angstrom.
        cell = graphite_unit_cell()
        pos = cell.frac_to_cart(graphite_basis_frac())
        d = minimal_image_distances(cell, pos, pos)
        d[d < 1e-9] = np.inf
        assert np.isclose(d.min(), GRAPHITE_A_BOHR / np.sqrt(3.0), rtol=1e-6)


class TestCoral:
    def test_paper_parameters(self):
        # Paper Sec. IV: 64 atoms, 256 electrons, 128 orbitals, 48x48x60.
        sysm = coral_4x4x1()
        assert sysm.n_ions == 64
        assert sysm.n_electrons == 256
        assert sysm.n_orbitals == 128
        assert sysm.grid_shape == (48, 48, 60)

    def test_ion_positions_inside_supercell(self):
        sysm = coral_4x4x1()
        frac = sysm.cell.cart_to_frac(sysm.ion_positions)
        assert (frac >= -1e-9).all() and (frac < 1.0 + 1e-9).all()

    def test_all_ions_distinct(self):
        sysm = coral_4x4x1()
        d = minimal_image_distances(sysm.cell, sysm.ion_positions, sysm.ion_positions)
        iu = np.triu_indices(64, k=1)
        assert d[iu].min() > 1.0  # bohr

    def test_grid_point_count(self):
        assert coral_4x4x1().n_grid_points == 48 * 48 * 60


class TestSweep:
    @pytest.mark.parametrize("n", [128, 256, 2048, 4096])
    def test_sweep_sizes(self, n):
        sysm = sweep_system(n)
        assert sysm.n_orbitals == n
        assert sysm.n_electrons == 2 * n
        assert sysm.grid_shape == (48, 48, 48)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sweep_system(0)
