"""Test package."""
