"""Unit tests for the synthetic plane-wave orbital sets."""

import numpy as np
import pytest

from repro.lattice import Cell, PlaneWaveOrbitalSet, enumerate_gvectors, graphite_unit_cell


class TestGVectors:
    def test_count_and_shape(self):
        g = enumerate_gvectors(Cell.cubic(1.0), 10)
        assert g.shape == (10, 3)

    def test_sorted_by_length(self):
        c = graphite_unit_cell()
        g = enumerate_gvectors(c, 30)
        lengths = np.linalg.norm(g @ c.reciprocal, axis=1)
        assert (np.diff(lengths) >= -1e-9).all()

    def test_half_space_no_pm_duplicates(self):
        g = enumerate_gvectors(Cell.cubic(1.0), 50)
        s = {tuple(v) for v in g}
        assert not any(tuple(-np.asarray(v)) in s for v in s)

    def test_no_zero_vector(self):
        g = enumerate_gvectors(Cell.cubic(1.0), 20)
        assert not (g == 0).all(axis=1).any()

    def test_rejects_excessive_count(self):
        with pytest.raises(ValueError, match="max_index"):
            enumerate_gvectors(Cell.cubic(1.0), 10000, max_index=2)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            enumerate_gvectors(Cell.cubic(1.0), 0)


class TestOrbitalSet:
    @pytest.fixture
    def pw(self):
        return PlaneWaveOrbitalSet(Cell.cubic(4.0), 9)

    def test_grid_values_shape(self, pw):
        vals = pw.values_on_grid(6, 8, 10)
        assert vals.shape == (6, 8, 10, 9)

    def test_orbital_zero_is_constant(self, pw):
        vals = pw.values_on_grid(5, 5, 5)
        assert np.allclose(vals[..., 0], 1.0)

    def test_grid_values_match_pointwise_evaluation(self, pw):
        vals = pw.values_on_grid(6, 6, 6)
        cell = pw.cell
        pts = [(0, 0, 0), (1, 2, 3), (5, 5, 5)]
        carts = cell.frac_to_cart(np.array([[i / 6, j / 6, k / 6] for i, j, k in pts]))
        direct = pw.evaluate(carts)
        for n, (i, j, k) in enumerate(pts):
            np.testing.assert_allclose(vals[i, j, k], direct[n], atol=1e-12)

    def test_periodicity(self, pw):
        cell = pw.cell
        p = np.array([[0.7, 1.1, 2.3]])
        shifted = p + cell.lattice[0] + 2 * cell.lattice[2]
        np.testing.assert_allclose(pw.evaluate(p), pw.evaluate(shifted), atol=1e-10)

    def test_gradients_match_finite_difference(self, pw):
        p = np.array([[0.4, 1.3, 0.9]])
        _, g, _ = pw.evaluate_vgl(p)
        eps = 1e-6
        for d in range(3):
            dp = np.zeros(3)
            dp[d] = eps
            fd = (pw.evaluate(p + dp) - pw.evaluate(p - dp)) / (2 * eps)
            np.testing.assert_allclose(g[0, d], fd[0], atol=1e-6)

    def test_laplacian_matches_finite_difference(self, pw):
        p = np.array([[1.0, 0.5, 2.0]])
        v, _, lap = pw.evaluate_vgl(p)
        eps = 1e-4
        fd = np.zeros(pw.n_orbitals)
        for d in range(3):
            dp = np.zeros(3)
            dp[d] = eps
            fd += (pw.evaluate(p + dp)[0] - 2 * v[0] + pw.evaluate(p - dp)[0]) / eps**2
        np.testing.assert_allclose(lap[0], fd, atol=1e-4)

    def test_orbitals_orthogonal_on_grid(self, pw):
        # cos/sin of distinct G are L2-orthogonal over the cell; check via
        # the grid quadrature (exact for band-limited functions).
        vals = pw.values_on_grid(12, 12, 12).reshape(-1, pw.n_orbitals)
        gram = vals.T @ vals / vals.shape[0]
        off = gram - np.diag(np.diag(gram))
        assert np.abs(off).max() < 1e-10

    def test_gram_is_nonsingular(self, pw):
        vals = pw.values_on_grid(10, 10, 10).reshape(-1, pw.n_orbitals)
        gram = vals.T @ vals / vals.shape[0]
        assert np.linalg.cond(gram) < 10.0

    def test_triclinic_cell_supported(self):
        pw = PlaneWaveOrbitalSet(graphite_unit_cell(), 6)
        p = pw.cell.frac_to_cart(np.array([[0.2, 0.3, 0.4]]))
        v = pw.evaluate(p)
        assert v.shape == (1, 6)
        assert np.isfinite(v).all()

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValueError):
            PlaneWaveOrbitalSet(Cell.cubic(1.0), 0)
