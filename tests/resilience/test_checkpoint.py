"""Checkpoint/restore: RNG round-trips, validation, and bit-for-bit resume.

The acceptance test of the resilience layer lives here: a DMC run killed
mid-generation and resumed from its checkpoint must reproduce the
uninterrupted run's energy/population traces *bit-for-bit* (same
``checkpoint_every`` cadence on both sides — see the note in
:mod:`repro.qmc.dmc`).
"""

import json
import os

import numpy as np
import pytest

from repro.miniqmc.app import build_app, run_profiled
from repro.miniqmc.config import MiniQmcConfig
from repro.miniqmc.driver import run_kernel_driver, run_tiled_driver
from repro.qmc.dmc import build_dmc_ensemble, run_dmc
from repro.qmc.rng import WalkerRngPool
from repro.qmc.vmc import run_vmc
from repro.resilience import (
    CHECKPOINT_VERSION,
    CheckpointError,
    FaultInjector,
    SimulatedFault,
    load_checkpoint,
    restore_rng,
    rng_state,
    save_checkpoint,
)
from repro.resilience.checkpoint import set_rng_state
from tests.qmc.test_wavefunction import build_wf


class TestRngState:
    def test_restore_reproduces_stream(self):
        rng = np.random.default_rng(123)
        rng.random(17)  # advance past the seed point
        state = rng_state(rng)
        expected = rng.random(32)
        np.testing.assert_array_equal(restore_rng(state).random(32), expected)

    def test_state_is_json_safe(self):
        rng = np.random.default_rng(7)
        rng.standard_normal(5)
        state = json.loads(json.dumps(rng_state(rng)))
        np.testing.assert_array_equal(
            restore_rng(state).random(8), rng.random(8)
        )

    def test_set_rng_state_in_place(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(2)
        set_rng_state(b, rng_state(a))
        np.testing.assert_array_equal(a.random(6), b.random(6))

    def test_set_rng_state_rejects_bitgen_mismatch(self):
        rng = np.random.default_rng(0)
        state = dict(rng_state(rng), bit_generator="MT19937")
        with pytest.raises(CheckpointError, match="bit generator"):
            set_rng_state(rng, state)

    def test_restore_rejects_unknown_bitgen(self):
        state = dict(rng_state(np.random.default_rng(0)))
        state["bit_generator"] = "NoSuchGenerator"
        with pytest.raises(CheckpointError, match="unknown bit generator"):
            restore_rng(state)


class TestWalkerRngPool:
    def test_from_state_continues_identically(self):
        pool = WalkerRngPool(42)
        for _ in range(5):
            pool.next_rng()
        twin = WalkerRngPool.from_state(pool.state)
        np.testing.assert_array_equal(
            pool.next_rng().random(16), twin.next_rng().random(16)
        )
        assert twin.issued == 6

    def test_state_round_trips_through_json(self):
        pool = WalkerRngPool(9)
        pool.batch(3)
        twin = WalkerRngPool.from_state(json.loads(json.dumps(pool.state)))
        np.testing.assert_array_equal(
            pool.next_rng().random(4), twin.next_rng().random(4)
        )


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        ck = tmp_path / "ck"
        save_checkpoint(
            ck,
            {"kind": "test", "step": 3},
            {"x": np.arange(6.0).reshape(2, 3)},
        )
        ckpt = load_checkpoint(ck, expect_kind="test")
        assert ckpt.kind == "test"
        assert ckpt.manifest["step"] == 3
        assert ckpt.manifest["version"] == CHECKPOINT_VERSION
        np.testing.assert_array_equal(ckpt.arrays["x"], np.arange(6.0).reshape(2, 3))

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nowhere")

    def test_future_version_refused(self, tmp_path):
        ck = tmp_path / "ck"
        save_checkpoint(ck, {"kind": "test"})
        manifest = json.loads((ck / "manifest.json").read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        (ck / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(ck)

    def test_kind_mismatch_refused(self, tmp_path):
        ck = tmp_path / "ck"
        save_checkpoint(ck, {"kind": "vmc"})
        with pytest.raises(CheckpointError, match="kind"):
            load_checkpoint(ck, expect_kind="dmc")

    def test_overwrite_is_atomic(self, tmp_path):
        ck = tmp_path / "ck"
        save_checkpoint(ck, {"kind": "test", "step": 1})
        save_checkpoint(ck, {"kind": "test", "step": 2})
        assert load_checkpoint(ck).manifest["step"] == 2
        # The staging directory never survives a completed save.
        assert [p for p in os.listdir(tmp_path) if "tmp" in p] == []


def _dmc_run(seed, n_walkers, ck_path, n_generations=6, on_generation=None,
             tau=0.02):
    pool = WalkerRngPool(seed)
    walkers = build_dmc_ensemble(pool, n_walkers)
    return run_dmc(
        walkers,
        pool,
        n_generations=n_generations,
        tau=tau,
        checkpoint_every=2,
        checkpoint_path=ck_path,
        on_generation=on_generation,
    )


class TestDmcResume:
    def test_kill_and_resume_is_bit_identical(self, tmp_path):
        # Uninterrupted reference (same checkpoint cadence).
        ref = _dmc_run(7, 3, tmp_path / "ref")
        # Killed mid-run: the injected kill fires after the checkpoint at
        # generation 3, exactly like a SIGKILL between generations.
        inj = FaultInjector(1)
        with pytest.raises(SimulatedFault):
            _dmc_run(7, 3, tmp_path / "ck", on_generation=inj.kill_at_generation(3))
        assert ("kill", {"generation": 3}) in inj.log
        # Resume on a freshly rebuilt ensemble.
        pool = WalkerRngPool(7)
        walkers = build_dmc_ensemble(pool, 3)
        res = run_dmc(
            walkers,
            pool,
            n_generations=6,
            tau=0.02,
            checkpoint_every=2,
            checkpoint_path=tmp_path / "ck",
            resume=tmp_path / "ck",
        )
        np.testing.assert_array_equal(ref.energy_trace, res.energy_trace)
        np.testing.assert_array_equal(ref.population_trace, res.population_trace)
        np.testing.assert_array_equal(ref.e_trial_trace, res.e_trial_trace)

    def test_resume_after_branching_is_bit_identical(self, tmp_path):
        # seed 1 / tau 0.1 drops and clones walkers within a few
        # generations, so the ensemble at the kill point no longer matches
        # the freshly built templates walker-for-walker.  This is the case
        # a branching-free run cannot cover: restored walkers must rebuild
        # *all* derived state (including ion-sourced distance tables) from
        # the checkpointed positions, not inherit it from the templates.
        ref = _dmc_run(1, 3, tmp_path / "ref", n_generations=10, tau=0.1)
        assert (ref.population_trace != 3).any(), "config must branch"
        inj = FaultInjector(1)
        with pytest.raises(SimulatedFault):
            _dmc_run(1, 3, tmp_path / "ck", n_generations=10, tau=0.1,
                     on_generation=inj.kill_at_generation(7))
        pool = WalkerRngPool(1)
        walkers = build_dmc_ensemble(pool, 3)
        res = run_dmc(
            walkers,
            pool,
            n_generations=10,
            tau=0.1,
            checkpoint_every=2,
            checkpoint_path=tmp_path / "ck",
            resume=tmp_path / "ck",
        )
        np.testing.assert_array_equal(ref.energy_trace, res.energy_trace)
        np.testing.assert_array_equal(ref.population_trace, res.population_trace)
        np.testing.assert_array_equal(ref.e_trial_trace, res.e_trial_trace)

    def test_resume_rejects_parameter_mismatch(self, tmp_path):
        inj = FaultInjector(1)
        with pytest.raises(SimulatedFault):
            _dmc_run(7, 2, tmp_path / "ck", on_generation=inj.kill_at_generation(1))
        pool = WalkerRngPool(7)
        walkers = build_dmc_ensemble(pool, 2)
        with pytest.raises(CheckpointError, match="tau"):
            run_dmc(walkers, pool, n_generations=4, tau=0.05, resume=tmp_path / "ck")

    def test_resume_rejects_wrong_kind(self, tmp_path):
        save_checkpoint(tmp_path / "ck", {"kind": "vmc"})
        pool = WalkerRngPool(7)
        walkers = build_dmc_ensemble(pool, 1)
        with pytest.raises(CheckpointError, match="kind"):
            run_dmc(walkers, pool, n_generations=2, resume=tmp_path / "ck")

    def test_checkpoint_every_needs_path(self):
        pool = WalkerRngPool(7)
        walkers = build_dmc_ensemble(pool, 1)
        with pytest.raises(ValueError, match="checkpoint_path"):
            run_dmc(walkers, pool, n_generations=1, checkpoint_every=1)
        with pytest.raises(ValueError, match="positive"):
            run_dmc(walkers, pool, n_generations=1, checkpoint_every=0,
                    checkpoint_path="x")


class TestVmcResume:
    def test_resume_matches_uninterrupted(self, tmp_path):
        def fresh():
            rng = np.random.default_rng(11)
            return build_wf(rng), rng

        wf, rng = fresh()
        ref = run_vmc(wf, rng, n_steps=8, n_warmup=2, tau=0.2,
                      checkpoint_every=3, checkpoint_path=tmp_path / "ref")
        wf, rng = fresh()
        run_vmc(wf, rng, n_steps=8, n_warmup=2, tau=0.2,
                checkpoint_every=3, checkpoint_path=tmp_path / "ck")
        wf, rng = fresh()
        res = run_vmc(wf, rng, n_steps=8, n_warmup=2, tau=0.2,
                      checkpoint_every=3, checkpoint_path=tmp_path / "ck",
                      resume=tmp_path / "ck")
        np.testing.assert_array_equal(ref.energies, res.energies)

    def test_resume_rejects_parameter_mismatch(self, tmp_path):
        rng = np.random.default_rng(11)
        wf = build_wf(rng)
        run_vmc(wf, rng, n_steps=4, n_warmup=0, tau=0.2,
                checkpoint_every=2, checkpoint_path=tmp_path / "ck")
        with pytest.raises(CheckpointError, match="tau"):
            run_vmc(wf, rng, n_steps=4, n_warmup=0, tau=0.3,
                    resume=tmp_path / "ck")


class TestDriverResume:
    CFG = dict(n_splines=24, grid_shape=(12, 12, 12), n_samples=3,
               n_iters=1, n_walkers=4, tile_size=8, seed=3)

    def test_kernel_driver_resume_completes_counts(self, tmp_path):
        cfg = MiniQmcConfig(**self.CFG)
        ref = run_kernel_driver(cfg, "soa")
        run_kernel_driver(cfg, "soa", checkpoint_every=2,
                          checkpoint_path=tmp_path / "ck")
        res = run_kernel_driver(cfg, "soa", resume=tmp_path / "ck")
        assert res.evals == ref.evals
        assert set(res.throughputs) == set(ref.throughputs)

    def test_tiled_driver_resume_completes_counts(self, tmp_path):
        cfg = MiniQmcConfig(**self.CFG)
        run_tiled_driver(cfg, checkpoint_every=2,
                         checkpoint_path=tmp_path / "ck")
        res = run_tiled_driver(cfg, resume=tmp_path / "ck")
        assert res.evals == {"v": 12, "vgl": 12, "vgh": 12}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        cfg = MiniQmcConfig(**self.CFG)
        run_kernel_driver(cfg, "soa", checkpoint_every=2,
                          checkpoint_path=tmp_path / "ck")
        other = MiniQmcConfig(**{**self.CFG, "n_samples": 5})
        with pytest.raises(CheckpointError, match="does not match"):
            run_kernel_driver(other, "soa", resume=tmp_path / "ck")
        with pytest.raises(CheckpointError, match="does not match"):
            run_kernel_driver(cfg, "fused", resume=tmp_path / "ck")


class TestAppResume:
    def test_resume_continues_trajectory(self, tmp_path):
        def fresh():
            return build_app(n_orbitals=4, grid_shape=(10, 10, 10), seed=5)

        app = fresh()
        run_profiled(app, n_sweeps=6, checkpoint_every=2,
                     checkpoint_path=tmp_path / "ref")
        ref_pos = app.wf.electrons.positions

        app = fresh()
        run_profiled(app, n_sweeps=4, checkpoint_every=2,
                     checkpoint_path=tmp_path / "ck")
        app = fresh()
        run_profiled(app, n_sweeps=6, checkpoint_every=2,
                     checkpoint_path=tmp_path / "ck", resume=tmp_path / "ck")
        np.testing.assert_array_equal(app.wf.electrons.positions, ref_pos)

    def test_resume_rejects_parameter_mismatch(self, tmp_path):
        app = build_app(n_orbitals=4, grid_shape=(10, 10, 10), seed=5)
        run_profiled(app, n_sweeps=2, checkpoint_every=2,
                     checkpoint_path=tmp_path / "ck")
        with pytest.raises(CheckpointError, match="do not match"):
            run_profiled(app, n_sweeps=4, tau=0.5, resume=tmp_path / "ck")


class TestCli:
    def test_dmc_subcommand_runs(self, capsys):
        from repro.__main__ import main

        assert main(["dmc", "--walkers", "1", "--generations", "2"]) == 0
        out = capsys.readouterr().out
        assert "generations: 2" in out

    def test_dmc_checkpoint_flags_validated(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["dmc", "--checkpoint-every", "2"])
        assert "--checkpoint-path" in capsys.readouterr().err

    def test_app_cli_resume(self, tmp_path, capsys):
        from repro.miniqmc.app import main

        ck = str(tmp_path / "ck")
        args = ["--n-orbitals", "4", "--sweeps", "4",
                "--checkpoint-every", "2", "--checkpoint-path", ck]
        assert main(args) == 0
        assert main(args + ["--resume", ck]) == 0
        assert "ran 4 sweeps" in capsys.readouterr().out
