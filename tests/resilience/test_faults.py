"""Deterministic fault injection, end to end against the guardrails."""

import numpy as np
import pytest

from repro.core import BsplineAoSoA, BsplineSoA, NestedEvaluator
from repro.qmc.dmc import DmcWalker, run_dmc
from repro.qmc.estimators import LocalEnergy
from repro.qmc.rng import WalkerRngPool
from repro.resilience import (
    FaultInjector,
    GuardConfig,
    GuardedEngine,
    GuardViolation,
    SimulatedFault,
)
from tests.qmc.test_wavefunction import build_wf


class TestInjectorDeterminism:
    def test_same_seed_corrupts_same_sites(self, small_table):
        a = FaultInjector(99).corrupt_coefficients(small_table, n_sites=5)[1]
        b = FaultInjector(99).corrupt_coefficients(small_table, n_sites=5)[1]
        assert a == b

    def test_different_seed_differs(self, small_table):
        a = FaultInjector(1).corrupt_coefficients(small_table, n_sites=5)[1]
        b = FaultInjector(2).corrupt_coefficients(small_table, n_sites=5)[1]
        assert a != b

    def test_corruption_modes(self, small_table):
        inj = FaultInjector(0)
        nan_t, sites = inj.corrupt_coefficients(small_table, n_sites=3, mode="nan")
        assert all(np.isnan(nan_t[s]) for s in sites)
        inf_t, sites = inj.corrupt_coefficients(small_table, n_sites=3, mode="inf")
        assert all(np.isinf(inf_t[s]) for s in sites)
        noise_t, sites = inj.corrupt_coefficients(small_table, n_sites=3, mode="noise")
        assert all(np.isfinite(noise_t[s]) and abs(noise_t[s]) > 1e20 for s in sites)
        # The original is untouched without in_place.
        assert np.isfinite(small_table).all()
        assert len(inj.log) == 3

    def test_in_place(self, small_table):
        table = small_table.copy()
        out, sites = FaultInjector(0).corrupt_coefficients(table, in_place=True)
        assert out is table
        assert np.isnan(table[sites[0]])

    def test_unknown_mode_rejected(self, small_table):
        with pytest.raises(ValueError, match="mode"):
            FaultInjector(0).corrupt_coefficients(small_table, mode="zero")

    def test_poison_energies_cadence(self):
        inj = FaultInjector(0)
        poisoned = inj.poison_energies(lambda: 1.0, every=3)
        values = [poisoned() for _ in range(9)]
        assert [np.isnan(v) for v in values] == [False, False, True] * 3
        assert len(inj.log) == 3

    def test_failing_wrapper_transient(self):
        inj = FaultInjector(0)
        fn = inj.failing(lambda: "ok", n_failures=2)
        for _ in range(2):
            with pytest.raises(SimulatedFault):
                fn()
        assert fn() == "ok"

    def test_failing_wrapper_hard(self):
        fn = FaultInjector(0).failing(lambda: "ok", n_failures=None)
        for _ in range(5):
            with pytest.raises(SimulatedFault):
                fn()


class TestCorruptedTable:
    """A corrupted shared table must be detected (and repairable)."""

    def test_guarded_engine_detects_corruption(self, small_grid, small_table):
        corrupted, _ = FaultInjector(5).corrupt_coefficients(
            small_table, n_sites=small_table.size // 4
        )
        guarded = GuardedEngine(BsplineSoA(small_grid, corrupted), "raise")
        out = guarded.new_output("vgh")
        with pytest.raises(GuardViolation, match="VGH"):
            guarded.vgh(0.5, 0.5, 0.5, out)
        assert guarded.violations == 1

    def test_guarded_engine_repairs_from_pristine_table(
        self, small_grid, small_table
    ):
        corrupted, _ = FaultInjector(5).corrupt_coefficients(
            small_table, n_sites=small_table.size // 4
        )
        guarded = GuardedEngine(
            BsplineSoA(small_grid, corrupted),
            "recompute",
            reference_table=small_table,
        )
        pristine = BsplineSoA(small_grid, small_table)
        out = guarded.new_output("vgh")
        ref = pristine.new_output("vgh")
        guarded.vgh(0.3, 0.7, 1.1, out)
        pristine.vgh(0.3, 0.7, 1.1, ref)
        assert guarded.repairs == 1
        np.testing.assert_allclose(out.v, ref.v, atol=1e-8)
        np.testing.assert_allclose(out.g, ref.g, atol=1e-7)


class TestPoisonedDmcEnergies:
    """NaN local energies through the estimator_factory seam of run_dmc."""

    @staticmethod
    def _walkers(seed, n):
        pool = WalkerRngPool(seed)
        return pool, [
            DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())
            for _ in range(n)
        ]

    @staticmethod
    def _poisoned_factory(inj, every):
        measure = inj.poison_energies(
            lambda w: LocalEnergy(w.wf, 4.0).total(), every=every
        )

        class Estimator:
            def __init__(self, walker):
                self.walker = walker

            def total(self):
                return measure(self.walker)

        return Estimator

    def test_raise_policy_fails_loudly(self):
        pool, walkers = self._walkers(21, 3)
        with pytest.raises(GuardViolation, match="non-finite local energy"):
            run_dmc(
                walkers, pool, n_generations=4, tau=0.02,
                guard=GuardConfig(on_nonfinite_energy="raise"),
                estimator_factory=self._poisoned_factory(FaultInjector(0), 4),
            )

    def test_drop_policy_rebranches_over_healthy_walkers(self):
        pool, walkers = self._walkers(21, 3)
        res = run_dmc(
            walkers, pool, n_generations=4, tau=0.02,
            guard=GuardConfig(on_nonfinite_energy="drop"),
            estimator_factory=self._poisoned_factory(FaultInjector(0), 4),
        )
        assert res.dropped_walkers > 0
        assert np.isfinite(res.energy_trace).all()
        assert (res.population_trace >= 1).all()

    def test_recompute_policy_remeasures_through_fresh_estimator(self):
        pool, walkers = self._walkers(21, 3)
        res = run_dmc(
            walkers, pool, n_generations=4, tau=0.02,
            guard=GuardConfig(on_nonfinite_energy="recompute"),
            estimator_factory=self._poisoned_factory(FaultInjector(0), 4),
        )
        # The re-measurement pulls a fresh (unpoisoned) value, so nothing
        # is dropped and the trace stays clean.
        assert res.dropped_walkers == 0
        assert np.isfinite(res.energy_trace).all()

    def test_unguarded_run_lets_poison_reach_branching(self):
        # Without a guard the NaN flows straight into the branching
        # weight and the run dies with an unhelpful low-level error —
        # the legacy failure mode the guard policies replace.
        pool, walkers = self._walkers(21, 3)
        with pytest.raises(ValueError, match="NaN"):
            run_dmc(
                walkers, pool, n_generations=4, tau=0.02,
                estimator_factory=self._poisoned_factory(FaultInjector(0), 4),
            )


class TestKilledWorkers:
    def test_worker_death_propagates_from_nested_evaluate(
        self, small_grid, small_table, rng
    ):
        eng = BsplineAoSoA(small_grid, small_table, tile_size=8)
        inj = FaultInjector(0)
        eng.eval_tiles = inj.failing(eng.eval_tiles, n_failures=1)
        positions = small_grid.random_positions(2, rng)
        with NestedEvaluator(eng, 2) as nested:
            out = eng.new_output("v")
            with pytest.raises(SimulatedFault, match="injected fault"):
                nested.evaluate("v", positions, out)
            # The transient fault is gone; the evaluator still works.
            nested.evaluate("v", positions, out)
        assert np.isfinite(out.tiles[0].v).all()
