"""Bounded retry-with-backoff and the resilient nested evaluator."""

import numpy as np
import pytest

from repro.core import BsplineAoSoA, NestedEvaluator
from repro.resilience import (
    FaultInjector,
    ResilientEvaluator,
    RetryExhausted,
    RetryPolicy,
    SimulatedFault,
    retry_with_backoff,
)


class TestRetryPolicy:
    def test_delays_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, multiplier=2.0,
                             max_delay=0.3)
        assert policy.delays() == [0.1, 0.2, 0.3]

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays() == []

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestRetryWithBackoff:
    def test_success_needs_no_retry(self):
        sleeps = []
        assert retry_with_backoff(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failure_absorbed_with_backoff(self):
        fn = FaultInjector(0).failing(lambda: "ok", n_failures=2)
        sleeps = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, multiplier=2.0)
        assert retry_with_backoff(fn, policy=policy, sleep=sleeps.append) == "ok"
        assert sleeps == [0.01, 0.02]

    def test_exhaustion_chains_last_error(self):
        fn = FaultInjector(0).failing(lambda: "ok", n_failures=None)
        with pytest.raises(RetryExhausted, match="3 attempts") as excinfo:
            retry_with_backoff(fn, policy=RetryPolicy(max_attempts=3),
                               sleep=lambda _: None)
        assert isinstance(excinfo.value.__cause__, SimulatedFault)

    def test_non_retryable_exception_propagates_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry_with_backoff(fn, retry_on=(SimulatedFault,),
                               sleep=lambda _: None)
        assert len(calls) == 1

    def test_on_retry_callback_sees_attempts(self):
        fn = FaultInjector(0).failing(lambda: "ok", n_failures=2)
        seen = []
        retry_with_backoff(
            fn, policy=RetryPolicy(max_attempts=3), sleep=lambda _: None,
            on_retry=lambda attempt, exc: seen.append(attempt),
        )
        assert seen == [1, 2]


class TestResilientEvaluator:
    @pytest.fixture
    def engine(self, small_grid, small_table):
        return BsplineAoSoA(small_grid, small_table, tile_size=8)

    def _reference(self, engine, kind, positions):
        out = engine.new_output(kind)
        engine.eval_tiles(kind, range(engine.n_tiles), positions, out)
        return out.as_canonical()

    def test_transient_worker_faults_absorbed(self, engine, small_grid, rng):
        positions = small_grid.random_positions(3, rng)
        nested = NestedEvaluator(engine, 2)
        nested.evaluate = FaultInjector(0).failing(nested.evaluate, n_failures=2)
        resilient = ResilientEvaluator(
            nested, RetryPolicy(max_attempts=3, base_delay=0.0),
            sleep=lambda _: None,
        )
        out = engine.new_output("vgh")
        resilient.evaluate("vgh", positions, out)
        resilient.close()
        assert resilient.retries == 2
        assert resilient.fallbacks == 0
        ref = self._reference(engine, "vgh", positions)
        got = out.as_canonical()
        for name in ("v", "g", "h"):
            np.testing.assert_array_equal(got[name], ref[name])

    def test_hard_fault_degrades_to_single_threaded(self, engine, small_grid, rng):
        positions = small_grid.random_positions(3, rng)
        nested = NestedEvaluator(engine, 2)
        nested.evaluate = FaultInjector(0).failing(
            nested.evaluate, n_failures=None
        )
        with ResilientEvaluator(
            nested, RetryPolicy(max_attempts=2, base_delay=0.0),
            sleep=lambda _: None,
        ) as resilient:
            out = engine.new_output("vgl")
            resilient.evaluate("vgl", positions, out)
        assert resilient.fallbacks == 1
        assert resilient.retries == 1
        # The fallback runs the same pure kernels: bit-identical results.
        ref = self._reference(engine, "vgl", positions)
        got = out.as_canonical()
        for name in ("v", "g", "l"):
            np.testing.assert_array_equal(got[name], ref[name])

    def test_tiled_driver_reports_fallbacks(self, monkeypatch):
        from repro.miniqmc.config import MiniQmcConfig
        from repro.miniqmc import driver as driver_mod

        cfg = MiniQmcConfig(
            n_splines=24, grid_shape=(12, 12, 12), n_samples=2,
            n_iters=1, n_walkers=2, tile_size=8, seed=3,
        )
        inj = FaultInjector(0)
        orig_init = driver_mod.NestedEvaluator.__init__

        def broken_init(self, eng, n_threads):
            orig_init(self, eng, n_threads)
            self.evaluate = inj.failing(self.evaluate, n_failures=1)

        monkeypatch.setattr(driver_mod.NestedEvaluator, "__init__", broken_init)
        res = driver_mod.run_tiled_driver(
            cfg, n_threads=2, kernels=("v",),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        assert res.retries == 1
        assert res.fallbacks == 0
        assert res.evals == {"v": 4}
