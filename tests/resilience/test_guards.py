"""Numerical guardrails: finite checks, guarded engines, population control."""

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core import BsplineAoS, BsplineAoSoA, BsplineFused, BsplineSoA
from repro.qmc.rng import WalkerRngPool
from repro.resilience import (
    GuardConfig,
    GuardedEngine,
    GuardViolation,
    PopulationGuard,
    check_finite,
    nonfinite_counts,
)

_ENGINES = {
    "aos": lambda g, t: BsplineAoS(g, t),
    "soa": lambda g, t: BsplineSoA(g, t),
    "fused": lambda g, t: BsplineFused(g, t),
    "aosoa": lambda g, t: BsplineAoSoA(g, t, tile_size=8),
}


class TestFiniteChecks:
    def test_clean_arrays_pass(self):
        assert nonfinite_counts(a=np.ones(4), b=np.zeros((2, 3))) == {}
        check_finite("clean", a=np.ones(4))  # no raise

    def test_counts_per_array(self):
        a = np.array([1.0, np.nan, np.inf])
        b = np.array([np.nan, np.nan])
        assert nonfinite_counts(a=a, b=b, c=np.ones(2)) == {"a": 2, "b": 2}

    def test_check_finite_names_streams(self):
        with pytest.raises(GuardViolation, match="gradient: 1 bad"):
            check_finite("VGH", value=np.ones(3),
                         gradient=np.array([1.0, np.nan, 2.0]))


class TestGuardConfig:
    def test_defaults_valid(self):
        cfg = GuardConfig()
        assert cfg.on_nonfinite_energy == "raise"
        assert cfg.on_nonfinite_output == "raise"

    @pytest.mark.parametrize("policy", ["raise", "drop", "recompute", "ignore"])
    def test_energy_policies_accepted(self, policy):
        assert GuardConfig(on_nonfinite_energy=policy).on_nonfinite_energy == policy

    def test_bad_energy_policy_rejected(self):
        with pytest.raises(ValueError, match="on_nonfinite_energy"):
            GuardConfig(on_nonfinite_energy="explode")

    def test_bad_output_policy_rejected(self):
        with pytest.raises(ValueError, match="on_nonfinite_output"):
            GuardConfig(on_nonfinite_output="drop")


def _poisoned_table(table):
    """A table whose every stencil read is poisoned (one full bad spline)."""
    bad = table.copy()
    bad[..., 0] = np.nan
    return bad


class TestGuardedEngine:
    @pytest.mark.parametrize("layout", list(_ENGINES))
    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    def test_clean_engine_passes_all_layouts(
        self, layout, kind, small_grid, small_table
    ):
        guarded = GuardedEngine(_ENGINES[layout](small_grid, small_table), "raise")
        out = guarded.new_output(kind)
        getattr(guarded, kind)(0.4, 0.6, 0.9, out)
        assert guarded.violations == 0

    @pytest.mark.parametrize("layout", list(_ENGINES))
    def test_raise_policy_detects_all_layouts(self, layout, small_grid, small_table):
        eng = _ENGINES[layout](small_grid, _poisoned_table(small_table))
        guarded = GuardedEngine(eng, "raise")
        out = guarded.new_output("vgh")
        with pytest.raises(GuardViolation, match="non-finite VGH"):
            guarded.vgh(0.4, 0.6, 0.9, out)

    def test_count_policy_records_and_continues(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, _poisoned_table(small_table))
        guarded = GuardedEngine(eng, "count")
        out = guarded.new_output("vgl")
        for _ in range(3):
            guarded.vgl(0.4, 0.6, 0.9, out)
        assert guarded.violations == 3
        assert guarded.repairs == 0

    def test_count_policy_is_thread_safe(self, small_grid, small_table):
        # One engine shared by hammering walker threads: every violation
        # must be counted exactly once (the counters update under a lock).
        import threading

        eng = BsplineSoA(small_grid, _poisoned_table(small_table))
        guarded = GuardedEngine(eng, "count")
        per_thread, n_threads = 25, 4
        barrier = threading.Barrier(n_threads)
        failures: list[BaseException] = []

        def hammer():
            out = guarded.new_output("vgh")  # outputs stay thread-private
            barrier.wait()
            try:
                for _ in range(per_thread):
                    guarded.vgh(0.4, 0.6, 0.9, out)
            except BaseException as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures
        assert guarded.violations == per_thread * n_threads

    @pytest.mark.parametrize("layout", list(_ENGINES))
    @pytest.mark.parametrize("kind", ["v", "vgl", "vgh"])
    def test_recompute_policy_repairs_all_layouts(
        self, layout, kind, small_grid, small_table
    ):
        eng = _ENGINES[layout](small_grid, _poisoned_table(small_table))
        guarded = GuardedEngine(eng, "recompute", reference_table=small_table)
        pristine = _ENGINES[layout](small_grid, small_table)
        out = guarded.new_output(kind)
        ref = pristine.new_output(kind)
        getattr(guarded, kind)(0.4, 0.6, 0.9, out)
        getattr(pristine, kind)(0.4, 0.6, 0.9, ref)
        assert guarded.repairs == 1
        a, b = out.as_canonical(), ref.as_canonical()
        for name in ("v", "g", "l", "h"):
            if a.get(name) is not None and b.get(name) is not None:
                np.testing.assert_allclose(a[name], b[name], atol=1e-6)

    def test_recompute_without_reference_table_rejected(self, small_grid, small_table):
        class Bare:
            grid = small_grid

        with pytest.raises(ValueError, match="reference_table"):
            GuardedEngine(Bare(), "recompute")

    def test_unknown_policy_rejected(self, small_grid, small_table):
        with pytest.raises(ValueError, match="policy"):
            GuardedEngine(BsplineSoA(small_grid, small_table), "fix")

    def test_passthrough_attributes(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        guarded = GuardedEngine(eng, "raise")
        assert guarded.n_splines == eng.n_splines
        assert guarded.grid is eng.grid


@dataclass
class FakeWalker:
    e_local: float
    clones: list = field(default_factory=list)

    def clone(self, rng):
        child = FakeWalker(self.e_local)
        self.clones.append(child)
        return child


class TestPopulationGuard:
    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            PopulationGuard(0)
        with pytest.raises(ValueError, match="max_factor"):
            PopulationGuard(4, max_factor=0)
        assert PopulationGuard(4, max_factor=3).cap == 12

    def test_healthy_population_untouched(self):
        guard = PopulationGuard(4)
        walkers = [FakeWalker(-1.0) for _ in range(4)]
        out = guard.enforce(list(walkers), walkers, WalkerRngPool(0))
        assert out == walkers
        assert guard.rescues == guard.truncations == 0

    def test_explosion_truncated_to_cap(self):
        guard = PopulationGuard(2, max_factor=2)
        new = [FakeWalker(-1.0) for _ in range(9)]
        out = guard.enforce(new, [], WalkerRngPool(0))
        assert len(out) == 4
        assert guard.truncations == 1

    def test_extinction_rescued_from_best_finite_parents(self):
        guard = PopulationGuard(4)
        previous = [FakeWalker(-3.0), FakeWalker(np.nan), FakeWalker(-7.0)]
        out = guard.enforce([], previous, WalkerRngPool(0))
        assert len(out) == 4
        assert guard.rescues == 1
        # The lowest finite-energy walker seeds the rescue.
        assert out[0] is previous[2]
        assert all(np.isfinite(w.e_local) for w in out)

    def test_total_extinction_raises(self):
        guard = PopulationGuard(3)
        with pytest.raises(GuardViolation, match="extinct"):
            guard.enforce([], [FakeWalker(np.nan)], WalkerRngPool(0))
