"""Failure-injection tests: the library must fail loudly and recover cleanly.

A production library's error paths are part of its contract: corrupted
tables must not silently produce numbers, protocol misuse must raise, and
recovery paths (recompute, reject, population rescue) must restore a
consistent state.
"""

import numpy as np
import pytest

from repro.core import (
    BsplineAoSoA,
    BsplineSoA,
    Grid3D,
    NestedEvaluator,
    solve_coefficients_3d,
)
from repro.qmc import DiracDeterminant, DmcWalker, WalkerRngPool, run_dmc
from tests.qmc.test_wavefunction import build_wf


class TestCorruptedData:
    def test_nan_coefficients_propagate_not_crash(self, small_grid, small_table):
        bad = small_table.copy()
        bad[3, 4, 5, :] = np.nan
        eng = BsplineSoA(small_grid, bad)
        out = eng.new_output("vgh")
        # Position whose stencil covers the poisoned point.
        dx, dy, dz = small_grid.deltas
        eng.vgh(3.2 * dx, 4.1 * dy, 5.3 * dz, out)
        assert np.isnan(out.v).any()  # visible, not masked

    def test_inf_positions_raise_or_wrap(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        out = eng.new_output("v")
        with pytest.raises((ValueError, OverflowError)):
            eng.v(np.inf, 0.0, 0.0, out)

    def test_nan_slater_matrix_rejected(self):
        A = np.eye(4)
        A[0, 0] = np.nan
        with pytest.raises((ValueError, np.linalg.LinAlgError)):
            DiracDeterminant(A)


class TestProtocolMisuse:
    def test_move_protocol_sequencing_enforced(self, rng):
        wf = build_wf(rng)
        with pytest.raises(RuntimeError):
            wf.accept_move(0)
        with pytest.raises(RuntimeError):
            wf.reject_move(0)
        wf.ratio_grad(0, wf.electrons[0] + 0.1)
        with pytest.raises(RuntimeError):
            wf.accept_move(1)  # wrong electron
        wf.reject_move(0)

    def test_state_recoverable_after_failed_accept(self, rng):
        wf = build_wf(rng)
        lv0 = wf.log_value
        wf.ratio_grad(2, wf.electrons[2] + 0.1)
        with pytest.raises(RuntimeError):
            wf.accept_move(3)
        # The staged move for electron 2 is still pending and rejectable.
        wf.reject_move(2)
        assert wf.log_value == lv0

    def test_nested_evaluator_unusable_after_close(self, small_grid, small_table):
        tiled = BsplineAoSoA(small_grid, small_table, 8)
        nested = NestedEvaluator(tiled, 2)
        nested.close()
        with pytest.raises(RuntimeError):
            nested.evaluate(
                "v",
                small_grid.random_positions(1, np.random.default_rng(0)),
                tiled.new_output("v"),
            )


class TestRecovery:
    def test_dmc_population_rescue_from_extinction(self):
        """A trial energy far below every local energy kills all walkers;
        the rescue path must keep exactly one alive."""
        pool = WalkerRngPool(2)
        walkers = [
            DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())
            for _ in range(2)
        ]
        # Huge tau + absurdly low feedback target drives weights to ~0.
        res = run_dmc(
            walkers, pool, n_generations=3, tau=5.0, feedback=0.0,
            target_population=2,
        )
        assert (res.population_trace >= 1).all()

    def test_dmc_population_cap_prevents_explosion(self):
        pool = WalkerRngPool(3)
        walkers = [DmcWalker(wf=build_wf(pool.next_rng()), rng=pool.next_rng())]
        res = run_dmc(
            walkers, pool, n_generations=3, tau=5.0, feedback=0.0,
            target_population=1, max_population_factor=3,
        )
        assert (res.population_trace <= 3).all()

    def test_determinant_recovers_via_recompute_after_near_singular(self, rng):
        A = rng.standard_normal((6, 6)) + 3 * np.eye(6)
        det = DiracDeterminant(A)
        # Drive the matrix toward singular with a nearly-dependent row.
        u = det.A[0] + 1e-13 * rng.standard_normal(6)
        r = det.ratio(1, u)
        det.accept_move(1)  # inverse now ill-conditioned
        # Recompute from the (still formally nonsingular) matrix restores
        # the A @ Ainv identity to the achievable precision.
        det.recompute()
        assert det.update_error < 1e-2  # limited by cond(A) ~ 1e13

    def test_wavefunction_recompute_heals_drift(self, rng):
        wf = build_wf(rng)
        # Hundreds of accepted moves accumulate rank-1 rounding.
        for i in range(100):
            e = int(rng.integers(0, len(wf.electrons)))
            r, _ = wf.ratio_grad(e, wf.electrons[e] + rng.standard_normal(3) * 0.1)
            if abs(r) > 1e-3:
                wf.accept_move(e)
            else:
                wf.reject_move(e)
        err_before = max(d.update_error for d in wf.slater.dets)
        wf.recompute()
        err_after = max(d.update_error for d in wf.slater.dets)
        assert err_after <= err_before
        assert err_after < 1e-10
