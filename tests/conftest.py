"""Shared fixtures for the test suite.

Sizes are deliberately small (grids ~10-16 per side, tens of splines):
every algorithm here is O(1) in problem size per assertion, and small
sizes exercise the same code paths — including periodic wrap-around,
which *large* grids make rare.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Grid3D, solve_coefficients_3d


@pytest.fixture(autouse=True)
def _isolated_tune_db(tmp_path_factory, monkeypatch):
    """Keep the suite hermetic: never read or write ``~/.cache`` winners.

    Every test sees an empty per-test tuning DB, so default ``lookup``
    resolution always falls through to the deterministic heuristic
    regardless of what a developer's real DB contains.  Tests of the DB
    itself point ``REPRO_TUNE_DB`` somewhere else explicitly.
    """
    monkeypatch.setenv(
        "REPRO_TUNE_DB",
        str(tmp_path_factory.mktemp("tunedb") / "tunedb.json"),
    )


@pytest.fixture
def rng():
    """Deterministic generator; tests that need different streams spawn."""
    return np.random.default_rng(20170101)


@pytest.fixture
def small_grid():
    """An anisotropic periodic grid (catches x/y/z transposition bugs)."""
    return Grid3D(12, 10, 14, (2.0, 1.5, 2.5))


@pytest.fixture
def small_table(small_grid, rng):
    """Float64 coefficient table with 24 splines on ``small_grid``."""
    samples = rng.standard_normal((*small_grid.shape, 24))
    return solve_coefficients_3d(samples, dtype=np.float64)


@pytest.fixture
def small_table_f32(small_grid, rng):
    """Single-precision variant (the paper's production dtype)."""
    samples = rng.standard_normal((*small_grid.shape, 24))
    return solve_coefficients_3d(samples, dtype=np.float32)
