"""Tests for the metrics primitives: counters, gauges, histograms, registry."""

import json

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, format_labels


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_snapshot(self):
        c = Counter()
        c.inc(3)
        assert c.snapshot() == {"value": 3}


class TestGauge:
    def test_holds_last_value(self):
        g = Gauge()
        g.set(7)
        g.set(2.5)
        assert g.value == 2.5
        assert g.snapshot() == {"value": 2.5}


class TestHistogram:
    def test_streaming_aggregates(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert np.isclose(h.mean, 2.0)

    def test_empty_snapshot_is_all_zero(self):
        s = Histogram().snapshot()
        assert s["count"] == 0
        assert s["min"] == 0.0 and s["max"] == 0.0
        assert s["p50"] == 0.0

    def test_quantiles_exact_on_small_data(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert np.isclose(h.quantile(0.0), 1.0)
        assert np.isclose(h.quantile(1.0), 100.0)
        assert np.isclose(h.quantile(0.5), 50.5)
        assert np.isclose(h.quantile(0.90), 90.1)

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_decimation_bounds_memory_keeps_aggregates_exact(self):
        h = Histogram(max_samples=64)
        n = 10_000
        for v in range(n):
            h.observe(float(v))
        # Aggregates are streaming: exact regardless of decimation.
        assert h.count == n
        assert h.sum == sum(range(n))
        assert h.min == 0.0 and h.max == float(n - 1)
        # The retained sample buffer never exceeds the cap.
        assert len(h._samples) <= 64
        # Decimated quantiles stay representative (samples span the run).
        assert abs(h.quantile(0.5) - n / 2) < n * 0.05

    def test_decimation_is_deterministic(self):
        def fill():
            h = Histogram(max_samples=32)
            for v in range(1000):
                h.observe(float(v))
            return h.snapshot()

        assert fill() == fill()

    def test_max_samples_validated(self):
        with pytest.raises(ValueError):
            Histogram(max_samples=1)


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        a = reg.counter("evals", engine="soa")
        b = reg.counter("evals", engine="soa")
        assert a is b
        assert len(reg) == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("evals", engine="soa", kernel="v")
        b = reg.counter("evals", kernel="v", engine="soa")
        assert a is b

    def test_different_labels_are_different_metrics(self):
        reg = MetricsRegistry()
        a = reg.counter("evals", engine="soa")
        b = reg.counter("evals", engine="aos")
        assert a is not b
        assert len(reg) == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("latency")
        with pytest.raises(TypeError):
            reg.histogram("latency")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("n", engine="soa").inc(2)
        reg.gauge("occ").set(0.5)
        reg.histogram("t").observe(1.0)
        snap = reg.snapshot()
        assert [c["name"] for c in snap["counters"]] == ["n"]
        assert snap["counters"][0]["labels"] == {"engine": "soa"}
        assert snap["counters"][0]["value"] == 2
        assert snap["gauges"][0]["value"] == 0.5
        assert snap["histograms"][0]["count"] == 1

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        assert json.loads(reg.to_json()) == reg.snapshot()

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        path = tmp_path / "metrics.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"][0]["value"] == 3

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.reset()
        assert len(reg) == 0

    def test_summary_table_empty(self):
        assert MetricsRegistry().summary_table() == "(no metrics recorded)"

    def test_summary_table_contents(self):
        reg = MetricsRegistry()
        reg.counter("kernel_evals_total", engine="soa", kernel="vgh").inc(512)
        reg.gauge("occupancy").set(0.75)
        h = reg.histogram("kernel_eval_seconds", engine="soa")
        for v in (1e-4, 2e-4, 3e-4):
            h.observe(v)
        table = reg.summary_table()
        assert "kernel_evals_total{engine=soa,kernel=vgh}" in table
        assert "512" in table
        assert "occupancy" in table
        assert "-- histograms --" in table
        assert "kernel_eval_seconds{engine=soa}" in table


class TestMergeState:
    """Cross-process folding: workers ship ``state()``, the parent merges."""

    def test_counter_states_add(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(4)
        a.merge_state(b.state())
        assert a.value == 7

    def test_gauge_last_write_wins(self):
        a, b = Gauge(), Gauge()
        a.set(1.0)
        b.set(9.0)
        a.merge_state(b.state())
        assert a.value == 9.0

    def test_histogram_aggregates_combine_exactly(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 5.0):
            a.observe(v)
        for v in (0.5, 2.0, 8.0):
            b.observe(v)
        a.merge_state(b.state())
        assert a.count == 5
        assert a.sum == 16.5
        assert a.min == 0.5
        assert a.max == 8.0
        assert np.isclose(a.quantile(1.0), 8.0)

    def test_merging_an_empty_histogram_changes_nothing(self):
        a = Histogram()
        a.observe(2.0)
        a.merge_state(Histogram().state())
        assert a.count == 1
        assert a.min == a.max == 2.0

    def test_state_is_picklable(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("n", engine="soa").inc(2)
        reg.histogram("t").observe(0.25)
        state = pickle.loads(pickle.dumps(reg.state()))
        assert {e["name"] for e in state} == {"n", "t"}

    def test_registry_merge_creates_and_folds(self):
        worker = MetricsRegistry()
        worker.counter("evals", engine="soa").inc(10)
        worker.gauge("occ").set(0.5)
        worker.histogram("t").observe(1.5)
        parent = MetricsRegistry()
        parent.counter("evals", engine="soa").inc(5)
        parent.merge_state(worker.state())
        parent.merge_state(worker.state())  # a second worker, same shape
        assert parent.counter("evals", engine="soa").value == 25
        assert parent.gauge("occ").value == 0.5
        assert parent.histogram("t").count == 2
        assert len(parent) == 3

    def test_registry_merge_respects_labels(self):
        worker = MetricsRegistry()
        worker.counter("evals", engine="soa").inc(1)
        parent = MetricsRegistry()
        parent.counter("evals", engine="aos").inc(1)
        parent.merge_state(worker.state())
        assert parent.counter("evals", engine="aos").value == 1
        assert parent.counter("evals", engine="soa").value == 1

    def test_merged_histogram_respects_sample_cap(self):
        a = Histogram(max_samples=8)
        b = Histogram(max_samples=8)
        for v in range(16):
            b.observe(float(v))
        a.merge_state(b.state())
        assert a.count == 16
        assert len(a._samples) < 8


def test_format_labels():
    assert format_labels({}) == ""
    assert format_labels({"b": "2", "a": "1"}) == "{a=1,b=2}"


class TestMergeStrideWeighting:
    """Regression: merging buffers of unequal stride must not skew quantiles.

    Pre-fix, ``merge_state`` concatenated a worker's retained samples
    (collected at that worker's stride) with the local ones as if every
    sample carried equal weight, then re-decimated — so whichever buffer
    had the *finer* stride was over-weighted, and ``_seen`` kept
    accumulating raw counts that no longer matched the decimated buffer,
    drifting subsequent retention off the documented resolution.
    """

    def test_unequal_strides_do_not_skew_quantiles(self):
        # 63 zeros at stride 1 merged with 252 ones at stride 4: the
        # true distribution is 20% zeros, so every quantile above 0.2
        # is 1.0.  The pre-fix equal-weight concatenation retained
        # zeros and ones ~1:1 and reported p50 = 0.0.
        parent = Histogram(max_samples=64)
        for _ in range(63):
            parent.observe(0.0)
        worker = Histogram(max_samples=64)
        for _ in range(252):
            worker.observe(1.0)
        assert worker.state()["stride"] > 1  # the scenario's premise
        parent.merge_state(worker.state())
        assert parent.count == 315
        assert parent.quantile(0.5) == 1.0
        assert parent.quantile(0.3) == 1.0
        ones = sum(1 for s in parent._samples if s == 1.0)
        zeros = len(parent._samples) - ones
        # Retained weight must reflect the 4:1 data ratio, not ~1:1.
        assert ones >= 3 * zeros

    def test_merge_is_direction_symmetric_in_weight(self):
        # Folding fine-into-coarse must weight like coarse-into-fine.
        fine, coarse = Histogram(max_samples=64), Histogram(max_samples=64)
        for i in range(60):
            fine.observe(0.0)
        for i in range(300):
            coarse.observe(1.0)
        a = Histogram(max_samples=64)
        a.merge_state(fine.state())
        a.merge_state(coarse.state())
        b = Histogram(max_samples=64)
        b.merge_state(coarse.state())
        b.merge_state(fine.state())
        assert a.quantile(0.5) == b.quantile(0.5) == 1.0

    def test_post_merge_retention_phase_is_rebased(self):
        # After a merge the retention must keep one sample per stride —
        # pre-fix, ``_seen`` summed raw counts and the phase drifted.
        h = Histogram(max_samples=16)
        other = Histogram(max_samples=16)
        for i in range(100):
            other.observe(float(i))
        h.merge_state(other.state())
        assert h._seen == len(h._samples) * h._stride
        before = len(h._samples)
        h.observe(123.0)  # phase 0: the very next observation retains
        assert len(h._samples) == before + 1
        assert h._samples[-1] == 123.0

    def test_merged_quantiles_match_single_process_within_resolution(self):
        # The documented resolution contract, as a hypothesis property:
        # sharding a well-mixed observation stream over workers and
        # merging must agree with a single-process histogram over the
        # same observations to within the decimated sampling resolution.
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=25, deadline=None)
        @given(
            seed=st.integers(0, 2**32 - 1),
            n=st.integers(200, 4000),
            n_workers=st.integers(1, 4),
        )
        def check(seed, n, n_workers):
            rng = np.random.default_rng(seed)
            values = rng.permutation(n).astype(float) / n
            cuts = sorted(rng.integers(0, n + 1, size=n_workers - 1).tolist())
            chunks = np.split(values, cuts)
            cap = 256
            single = Histogram(max_samples=cap)
            for v in values:
                single.observe(v)
            parent = Histogram(max_samples=cap)
            for chunk in chunks:
                shard = Histogram(max_samples=cap)
                for v in chunk:
                    shard.observe(v)
                parent.merge_state(shard.state())
            assert parent.count == single.count == n
            assert parent.sum == pytest.approx(single.sum)
            assert parent.min == single.min and parent.max == single.max
            assert len(parent._samples) < cap
            assert parent._stride & (parent._stride - 1) == 0  # power of 2
            # Quantile agreement: both are stride-decimated estimates of
            # the same uniform-on-[0,1) data; with >= cap/4 retained
            # samples each, estimates live within a few sampling widths.
            m = min(len(parent._samples), len(single._samples))
            assert m >= cap // 4
            tol = 8.0 / np.sqrt(m)
            for q in (0.1, 0.25, 0.5, 0.75, 0.9):
                assert abs(parent.quantile(q) - q) < tol
                assert abs(parent.quantile(q) - single.quantile(q)) < 2 * tol

        check()
