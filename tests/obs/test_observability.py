"""Tests for the OBS switchboard: zero-cost contract, hooks, engine counts."""

import json

import numpy as np
import pytest

from repro.core import (
    BsplineAoS,
    BsplineAoSoA,
    BsplineFused,
    BsplineSoA,
    NestedEvaluator,
)
from repro.obs import NULL_SPAN, OBS, kernel_bytes_moved


def counter_value(name, **labels):
    return OBS.registry.counter(name, **labels).value


class TestDisabledContract:
    def test_disabled_helpers_record_nothing(self):
        assert not OBS.enabled
        OBS.count("n")
        OBS.gauge("g", 1.0)
        OBS.observe("h", 0.5)
        OBS.event("e")
        OBS.complete("c", 0.0, 1.0)
        OBS.kernel_eval("soa", "v", 10, 0.1, bytes_moved=100)
        assert len(OBS.registry) == 0
        assert len(OBS.tracer) == 0

    def test_disabled_span_is_the_null_singleton(self):
        assert OBS.span("anything") is NULL_SPAN

    def test_disabled_kernels_record_nothing(self, small_grid, small_table):
        eng = BsplineSoA(small_grid, small_table)
        out = eng.new_output("vgh")
        eng.vgh(0.1, 0.2, 0.3, out)
        assert len(OBS.registry) == 0


class TestLifecycle:
    def test_enable_disable_reset(self):
        OBS.enable()
        try:
            OBS.count("n")
            assert counter_value("n") == 1
        finally:
            OBS.disable()
        # Disabling keeps data; reset drops it.
        assert counter_value("n") == 1
        OBS.reset()
        assert len(OBS.registry) == 0

    def test_context_manager(self):
        with OBS:
            assert OBS.enabled
            OBS.count("n")
        assert not OBS.enabled
        assert counter_value("n") == 1
        OBS.reset()


class TestKernelEvalHook:
    def test_records_counts_bytes_and_latencies(self, obs):
        obs.kernel_eval("soa", "vgh", 512, 0.128, bytes_moved=4096)
        assert counter_value("kernel_evals_total", engine="soa", kernel="vgh") == 512
        assert counter_value("kernel_bytes_total", engine="soa", kernel="vgh") == 4096
        batch = obs.registry.histogram(
            "kernel_batch_seconds", engine="soa", kernel="vgh"
        )
        per_eval = obs.registry.histogram(
            "kernel_eval_seconds", engine="soa", kernel="vgh"
        )
        assert batch.count == 1 and np.isclose(batch.sum, 0.128)
        assert per_eval.count == 1 and np.isclose(per_eval.sum, 0.128 / 512)

    def test_zero_evals_skip_per_eval_histogram(self, obs):
        obs.kernel_eval("soa", "v", 0, 0.0)
        assert (
            obs.registry.histogram("kernel_eval_seconds", engine="soa", kernel="v").count
            == 0
        )


class TestBytesMovedModel:
    def test_stream_counts_match_paper(self):
        n, itemsize = 100, 4
        # AoS VGH: 64 stencil + 13 output streams; SoA VGH: 64 + 10.
        assert kernel_bytes_moved("vgh", "aos", n, itemsize) == 77 * n * itemsize
        assert kernel_bytes_moved("vgh", "soa", n, itemsize) == 74 * n * itemsize
        assert kernel_bytes_moved("vgl", "soa", n, itemsize) == 69 * n * itemsize
        assert kernel_bytes_moved("v", "aos", n, itemsize) == 65 * n * itemsize

    def test_non_aos_layouts_use_soa_streams(self):
        assert kernel_bytes_moved("vgh", "aosoa", 8, 8) == kernel_bytes_moved(
            "vgh", "soa", 8, 8
        )
        assert kernel_bytes_moved("vgh", "fused", 8, 8) == kernel_bytes_moved(
            "vgh", "soa", 8, 8
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            kernel_bytes_moved("vg", "soa", 8, 8)


class TestEngineCounting:
    @pytest.fixture
    def engines(self, small_grid, small_table):
        return {
            "aos": BsplineAoS(small_grid, small_table),
            "soa": BsplineSoA(small_grid, small_table),
            "fused": BsplineFused(small_grid, small_table),
            "aosoa": BsplineAoSoA(small_grid, small_table, tile_size=8),
        }

    def test_each_engine_counts_each_kernel_once(self, obs, engines):
        for name, eng in engines.items():
            for kind in ("v", "vgl", "vgh"):
                out = eng.new_output(kind)
                getattr(eng, kind)(0.3, 0.4, 0.5, out)
                assert (
                    counter_value("kernel_calls_total", engine=name, kernel=kind) == 1
                ), f"{name}/{kind}"

    def test_aosoa_tiles_do_not_double_count(self, obs, engines):
        eng = engines["aosoa"]
        out = eng.new_output("vgh")
        eng.vgh(0.3, 0.4, 0.5, out)
        # One tiled call = one logical kernel call, not one per tile.
        assert counter_value("kernel_calls_total", engine="aosoa", kernel="vgh") == 1
        assert counter_value("kernel_calls_total", engine="soa", kernel="vgh") == 0

    def test_nested_evaluator_records_occupancy(self, obs, engines):
        eng = engines["aosoa"]  # 24 splines / 8 per tile = 3 tiles
        with NestedEvaluator(eng, n_threads=2) as nested:
            out = eng.new_output("vgl")
            nested.evaluate("vgl", [(0.1, 0.2, 0.3)], out)
        assert obs.registry.gauge("nested_threads").value == 2
        assert obs.registry.gauge("nested_active_workers").value == 2
        assert obs.registry.gauge("nested_occupancy").value == 1.0
        assert counter_value("tile_evals_total", engine="aosoa", kernel="vgl") == 3
        assert any(e["name"] == "nested:vgl" for e in obs.tracer.events)


class TestWrite:
    def test_write_all_outputs(self, obs, tmp_path):
        obs.count("n", engine="soa")
        obs.observe("t", 0.5)
        with obs.span("s"):
            pass
        obs.event("e")
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        events = tmp_path / "events.jsonl"
        obs.write(metrics_out=metrics, trace_out=trace, events_out=events)
        m = json.loads(metrics.read_text())
        assert m["counters"][0]["name"] == "n"
        t = json.loads(trace.read_text())
        assert {ev["name"] for ev in t["traceEvents"]} == {"s", "e"}
        assert len(events.read_text().splitlines()) == 2

    def test_summary_table_delegates_to_registry(self, obs):
        obs.count("kernel_evals_total", 5, engine="soa")
        assert "kernel_evals_total{engine=soa}" in obs.summary_table()
