"""End-to-end observability: drivers, QMC, checkpoints, and both CLIs.

These are the acceptance tests for the ISSUE: an observed run must
produce a valid Chrome-trace JSON and a metrics dump carrying per-kernel
eval counts and latency histograms.
"""

import json

import numpy as np
import pytest

from repro.miniqmc.config import MiniQmcConfig
from repro.miniqmc.driver import run_kernel_driver, run_tiled_driver
from repro.obs import OBS
from repro.qmc.dmc import build_dmc_ensemble, run_dmc
from repro.qmc.rng import WalkerRngPool


def tiny_config(**overrides):
    defaults = dict(
        n_splines=16,
        grid_shape=(8, 8, 8),
        n_samples=4,
        n_iters=1,
        n_walkers=2,
        seed=7,
    )
    defaults.update(overrides)
    return MiniQmcConfig(**defaults)


class TestKernelDriver:
    def test_eval_counts_and_latency_histograms(self, obs):
        config = tiny_config()
        run_kernel_driver(config, engine="soa", kernels=("v", "vgh"))
        expected = config.n_walkers * config.n_iters * config.n_samples
        for kern in ("v", "vgh"):
            c = obs.registry.counter(
                "kernel_evals_total", engine="soa", kernel=kern
            )
            assert c.value == expected
            h = obs.registry.histogram(
                "kernel_batch_seconds", engine="soa", kernel=kern
            )
            assert h.count == config.n_walkers
            assert h.sum > 0
            snap = h.snapshot()
            assert snap["p50"] <= snap["p90"] <= snap["p99"] <= snap["max"]

    def test_bytes_moved_recorded(self, obs):
        config = tiny_config()
        run_kernel_driver(config, engine="aos", kernels=("vgh",))
        evals = config.n_walkers * config.n_iters * config.n_samples
        b = obs.registry.counter("kernel_bytes_total", engine="aos", kernel="vgh")
        # AoS VGH: (64 stencil + 13 output streams) * N * itemsize per eval.
        assert b.value == evals * 77 * config.n_splines * np.dtype(config.dtype).itemsize

    def test_trace_has_per_walker_kernel_events(self, obs, tmp_path):
        run_kernel_driver(tiny_config(), engine="soa", kernels=("vgl",))
        path = tmp_path / "trace.json"
        obs.write(trace_out=path)
        doc = json.loads(path.read_text())
        kernel_events = [
            e for e in doc["traceEvents"] if e["name"] == "kernel:vgl"
        ]
        assert len(kernel_events) == 2  # one per walker
        for ev in kernel_events:
            assert ev["ph"] == "X"
            assert ev["dur"] > 0
            assert ev["args"]["engine"] == "soa"


class TestTiledDriver:
    def test_occupancy_gauges_and_counts(self, obs):
        config = tiny_config(tile_size=8)  # 16 splines -> 2 tiles
        run_tiled_driver(config, n_threads=2, kernels=("v",))
        assert obs.registry.gauge("driver_tiles").value == 2
        assert obs.registry.gauge("driver_threads").value == 2
        assert obs.registry.gauge("driver_tile_occupancy").value == 1.0
        expected = config.n_walkers * config.n_iters * config.n_samples
        c = obs.registry.counter("kernel_evals_total", engine="aosoa8", kernel="v")
        assert c.value == expected
        # Nested evaluation counts per-tile work units too: 2 tiles/position.
        tiles = obs.registry.counter("tile_evals_total", engine="aosoa", kernel="v")
        assert tiles.value == expected * 2

    def test_single_thread_counts_logical_calls_once(self, obs):
        config = tiny_config(tile_size=8)
        run_tiled_driver(config, n_threads=1, kernels=("vgh",))
        expected = config.n_walkers * config.n_iters * config.n_samples
        calls = obs.registry.counter(
            "kernel_calls_total", engine="aosoa", kernel="vgh"
        )
        assert calls.value == expected


class TestQmcAndResilience:
    def test_dmc_records_generations_and_checkpoints(self, obs, tmp_path):
        pool = WalkerRngPool(11)
        walkers = build_dmc_ensemble(pool, 2, n_orbitals=2, grid_shape=(8, 8, 8))
        ckpt = tmp_path / "ckpt"
        run_dmc(
            walkers,
            pool,
            n_generations=3,
            checkpoint_every=2,
            checkpoint_path=ckpt,
        )
        assert obs.registry.counter("dmc_generations_total").value == 3
        assert obs.registry.histogram("dmc_generation_seconds").count == 3
        assert obs.registry.gauge("dmc_population").value >= 1
        assert obs.registry.counter("checkpoints_saved_total", kind="dmc").value >= 1
        names = {e["name"] for e in obs.tracer.events}
        assert "dmc:generation" in names
        assert "checkpoint:save" in names


class TestCliFlags:
    def test_dmc_cli_writes_metrics_and_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "dmc",
                "--walkers", "2",
                "--generations", "2",
                "--n-orbitals", "2",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        assert not OBS.enabled  # the CLI turns it back off
        m = json.loads(metrics.read_text())
        counters = {c["name"] for c in m["counters"]}
        assert "dmc_generations_total" in counters
        assert any(h["name"] == "dmc_generation_seconds" for h in m["histograms"])
        doc = json.loads(trace.read_text())
        assert any(e["name"] == "dmc:generation" for e in doc["traceEvents"])
        out = capsys.readouterr().out
        assert "-- histograms --" in out  # the summary table printed

    def test_miniqmc_app_cli_writes_metrics_and_trace(self, tmp_path, capsys):
        from repro.miniqmc.app import main

        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.json"
        rc = main(
            [
                "--n-orbitals", "2",
                "--sweeps", "2",
                "--metrics-out", str(metrics),
                "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        assert not OBS.enabled
        m = json.loads(metrics.read_text())
        assert any(
            c["name"] == "miniqmc_sweeps_total" and c["value"] == 2
            for c in m["counters"]
        )
        assert any(h["name"] == "section_seconds" for h in m["histograms"])
        doc = json.loads(trace.read_text())
        sweeps = [e for e in doc["traceEvents"] if e["name"] == "miniqmc:sweep"]
        assert len(sweeps) == 2
        assert "-- counters / gauges --" in capsys.readouterr().out

    def test_cli_without_flags_leaves_obs_untouched(self, capsys):
        from repro.miniqmc.app import main

        OBS.reset()
        rc = main(["--n-orbitals", "2", "--sweeps", "1"])
        assert rc == 0
        assert not OBS.enabled
        assert len(OBS.registry) == 0
