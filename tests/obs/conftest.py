"""Fixtures for the observability tests.

``OBS`` is process-wide state, so every test that enables it must leave
it disabled and empty — otherwise a leaked enable would silently record
(and slow) every other test in the session.
"""

from __future__ import annotations

import pytest

from repro.obs import OBS


@pytest.fixture
def obs():
    """The global ``OBS``, enabled and empty; disabled and wiped after."""
    OBS.reset()
    OBS.enable()
    try:
        yield OBS
    finally:
        OBS.disable()
        OBS.reset()


@pytest.fixture(autouse=True)
def _obs_stays_off():
    """Guard: no test in this package may leak an enabled OBS."""
    yield
    assert not OBS.enabled, "test left the global OBS enabled"
