"""Tests for the span tracer: Chrome trace validity, JSONL, fake clocks."""

import json
import threading

from repro.obs import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self):
        self.t = 100.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def test_null_span_is_reusable_noop():
    with NULL_SPAN as s:
        assert s is NULL_SPAN
    with NULL_SPAN:
        pass


class TestSpans:
    def test_span_records_complete_event(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("kernel:vgh", cat="miniqmc", engine="soa"):
            clock.advance(0.25)
        (ev,) = tracer.events
        assert ev["name"] == "kernel:vgh"
        assert ev["cat"] == "miniqmc"
        assert ev["ph"] == "X"
        assert ev["ts"] == 0.0  # relative to tracer epoch
        assert ev["dur"] == 0.25 * 1e6  # microseconds
        assert ev["args"] == {"engine": "soa"}

    def test_span_records_even_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        try:
            with tracer.span("boom"):
                raise RuntimeError("kernel fault")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_add_complete_uses_caller_measured_interval(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)  # epoch = 100.0
        tracer.add_complete("walker", 100.5, 0.125, cat="driver", walker=3)
        (ev,) = tracer.events
        assert ev["ts"] == 0.5 * 1e6
        assert ev["dur"] == 0.125 * 1e6
        assert ev["args"] == {"walker": 3}

    def test_instant_event(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        clock.advance(1.0)
        tracer.instant("guard:trip", cat="guard", kind="nan")
        (ev,) = tracer.events
        assert ev["ph"] == "i"
        assert ev["ts"] == 1e6
        assert ev["s"] == "t"

    def test_reset_keeps_epoch(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        tracer.instant("a")
        tracer.reset()
        assert len(tracer) == 0
        clock.advance(2.0)
        tracer.instant("b")
        assert tracer.events[0]["ts"] == 2e6


class TestRendering:
    def test_chrome_trace_is_valid_document(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("s", x=1):
            clock.advance(0.1)
        tracer.instant("i")
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert len(doc["traceEvents"]) == 2
        for ev in doc["traceEvents"]:
            # The fields chrome://tracing / Perfetto require.
            assert ev["ph"] in ("X", "i")
            assert isinstance(ev["name"], str)
            assert isinstance(ev["ts"], (int, float))
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_jsonl_one_object_per_line(self, tmp_path):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for i in range(3):
            tracer.instant(f"e{i}")
        path = tmp_path / "events.jsonl"
        tracer.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert [json.loads(ln)["name"] for ln in lines] == ["e0", "e1", "e2"]

    def test_thread_ids_remapped_to_small_ints(self):
        tracer = Tracer(clock=FakeClock())
        tracer.instant("main")

        def worker():
            tracer.instant("worker")

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tids = {ev["tid"] for ev in tracer.events}
        assert tids == {0, 1}
