"""PR5 benchmark: ghost-padded, cache-tiled batched kernels vs the PR4 path.

Times the rebuilt :class:`repro.core.BsplineBatched` memory path — one
flat gather against a ghost-padded table, positions processed in
cache-sized chunks, spline-axis contraction tiles — against the frozen
PR4 oracle (:class:`repro.core.batched_reference.ReferenceBatched`:
modulo-wrap broadcast gather, monolithic full-batch temporaries).

Every timed configuration is gated on **bit-identity** first: all four
VGH output streams of the optimized engine must equal the oracle's
exactly (``np.testing.assert_array_equal``) — the speedup is pure memory
layout, never arithmetic.  Peak temporary memory of one VGH call is
measured with ``tracemalloc`` for both paths and the reduction reported.

The PR's acceptance target is >= 2x VGH evals/sec at production sizes
(N >= 64 splines, batch >= 128 positions), checked on the headline rows.

Run directly (pytest-free, writes BENCH_pr5.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr5.py [--quick|--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import BsplineBatched, Grid3D, detect_caches
from repro.core.batched_reference import ReferenceBatched
from repro.core.kinds import Kind

# (n_splines, batch, dtype, grid, headline): headline rows carry the
# >= 2x acceptance target; the small row is informational (the gather
# already fits in cache there, so there is little memory traffic to win
# back).
FULL_CONFIGS = (
    (64, 128, "float32", (24, 24, 24), False),
    (256, 256, "float32", (32, 32, 32), True),
    (256, 256, "float64", (32, 32, 32), True),
    (512, 512, "float32", (32, 32, 32), True),
)
QUICK_CONFIGS = (
    (64, 128, "float32", (16, 16, 16), False),
    (128, 128, "float32", (16, 16, 16), False),
)
TINY_CONFIGS = ((24, 32, "float32", (12, 10, 14), False),)

TARGET_SPEEDUP = 2.0
TARGET_KERNEL = "vgh"
KERNELS = ("v", "vgl", "vgh")


def host_metadata() -> dict:
    caches = detect_caches()
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "caches": dataclasses.asdict(caches),
    }


def _build_pair(n_splines, batch, dtype, grid_shape):
    grid = Grid3D(*grid_shape, lengths=(3.0, 3.0, 3.0))
    rng = np.random.default_rng(20170101 + n_splines + batch)
    table = rng.standard_normal(grid_shape + (n_splines,)).astype(dtype)
    positions = grid.random_positions(batch, rng)
    return grid, table, positions


def _assert_bit_identical(eng, ref, positions) -> None:
    """The gate: every stream of every kernel must match the oracle's bits."""
    for kern in KERNELS:
        out_ref = ref.new_output(Kind(kern), n=len(positions))
        out_new = eng.new_output(Kind(kern), n=len(positions))
        getattr(ref, f"{kern}_batch")(positions, out_ref)
        getattr(eng, f"{kern}_batch")(positions, out_new)
        for stream in out_ref.valid:
            np.testing.assert_array_equal(
                getattr(out_new, stream),
                getattr(out_ref, stream),
                err_msg=f"{kern}/{stream} diverged from the PR4 oracle",
            )


def _time_kernel(engine, kern, positions, reps) -> float:
    """Best-of-``reps`` seconds for one full-batch kernel call."""
    out = engine.new_output(Kind(kern), n=len(positions))
    call = getattr(engine, f"{kern}_batch")
    call(positions, out)  # warm: page in the table, JIT nothing
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        call(positions, out)
        best = min(best, time.perf_counter() - t0)
    return best


def _peak_temporary_bytes(engine, positions) -> int:
    """tracemalloc peak of one VGH call (the transient working set)."""
    out = engine.new_output(Kind.VGH, n=len(positions))
    engine.vgh_batch(positions, out)  # warm outside the trace
    tracemalloc.start()
    engine.vgh_batch(positions, out)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def bench_kernels(configs, reps) -> dict:
    rows = []
    for n_splines, batch, dtype, grid_shape, headline in configs:
        grid, table, positions = _build_pair(n_splines, batch, dtype, grid_shape)
        ref = ReferenceBatched(grid, table)
        eng = BsplineBatched(grid, table)
        _assert_bit_identical(eng, ref, positions)

        timings = {}
        for kern in KERNELS:
            t_ref = _time_kernel(ref, kern, positions, reps)
            t_new = _time_kernel(eng, kern, positions, reps)
            timings[kern] = {
                "reference_seconds": t_ref,
                "optimized_seconds": t_new,
                "reference_evals_per_sec": batch / t_ref,
                "optimized_evals_per_sec": batch / t_new,
                "speedup": t_ref / t_new,
            }
        peak_ref = _peak_temporary_bytes(ref, positions)
        peak_new = _peak_temporary_bytes(eng, positions)
        rows.append(
            {
                "n_splines": n_splines,
                "batch": batch,
                "dtype": dtype,
                "grid": list(grid_shape),
                "headline": headline,
                "plan": dataclasses.asdict(eng.plan),
                "kernels": timings,
                "peak_temp_bytes_reference": peak_ref,
                "peak_temp_bytes_optimized": peak_new,
                "peak_temp_reduction": (
                    peak_ref / peak_new if peak_new else None
                ),
                "bit_identical": True,
            }
        )
    return {"reps": reps, "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="small sizes, no speedup target"
    )
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="one tiny config for CI smoke runs: the bit-identity gate and "
        "memory numbers only, no speedup target",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr5.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        configs, reps, label = TINY_CONFIGS, 2, "tiny"
    elif args.quick:
        configs, reps, label = QUICK_CONFIGS, 3, "quick"
    else:
        configs, reps, label = FULL_CONFIGS, 5, "full"

    t0 = time.perf_counter()
    section = bench_kernels(configs, reps)
    report = {
        "benchmark": "pr5-padded-tiled-batched-kernels",
        "mode": label,
        "host": host_metadata(),
        "note": (
            "Optimized = ghost-padded flat gather + cache-sized position "
            "chunks + spline-axis contraction tiles (auto-tuned); reference "
            "= PR4 modulo-wrap gather with full-batch temporaries.  Every "
            "row passed np.testing.assert_array_equal on all kernel "
            "streams before timing."
        ),
        "kernels": section,
        "target": {
            "kernel": TARGET_KERNEL,
            "speedup": TARGET_SPEEDUP,
            "applies_to": "headline rows (production sizes)",
        },
    }

    headline = [r for r in section["rows"] if r["headline"]]
    if headline and not (args.quick or args.tiny):
        worst = min(r["kernels"][TARGET_KERNEL]["speedup"] for r in headline)
        report["target"]["worst_headline_speedup"] = worst
        report["target"]["meets_target"] = worst >= TARGET_SPEEDUP

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in section["rows"]:
        k = row["kernels"][TARGET_KERNEL]
        print(
            f"N={row['n_splines']:4d} batch={row['batch']:4d} "
            f"{row['dtype']:8s} vgh {k['optimized_evals_per_sec']:10.1f} ev/s "
            f"(ref {k['reference_evals_per_sec']:10.1f})  "
            f"speedup {k['speedup']:.2f}x  "
            f"mem {row['peak_temp_reduction']:.1f}x smaller  bit-identical",
            file=sys.stderr,
        )
    if "meets_target" in report["target"]:
        t = report["target"]
        print(
            f"worst headline vgh speedup {t['worst_headline_speedup']:.2f}x "
            f"(target >= {TARGET_SPEEDUP:.1f}x): "
            + ("PASS" if t["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not t["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
