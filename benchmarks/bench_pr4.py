"""PR4 benchmark: batched population step vs the per-walker sweep.

Measures the walker-steps/sec of the two ``step_mode`` schedules behind
the population drivers — ``batched`` (one ``vgl_batch`` per electron
move across the whole crowd, `repro.qmc.batched_sweep`) against
``walker`` (the sequential per-walker drift-diffusion sweep) — on the
reference lattice (`CrowdSpec` defaults: 4 plane-wave orbitals in a
6.0-bohr cubic cell, 12^3 spline grid, fused engine).

Every timed pair is gated on **bit-identity** first: the final walker
positions and log |Psi| of the batched run must equal the per-walker
run exactly (`np.testing.assert_array_equal`), along with the
accept/attempt counts.  A second section repeats the gate through the
sharded process pool to show the modes also agree under ``--processes``.

The PR's acceptance target is >= 3x walker-steps/sec at 64 walkers.

Run directly (pytest-free, writes BENCH_pr4.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr4.py [--quick] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.parallel import (
    CrowdSpec,
    run_crowd_parallel,
    run_crowd_sequential,
    solve_spec_table,
)

# Walker counts for the main section; 64 is the acceptance point.
WALKER_COUNTS = (8, 16, 64)
QUICK_WALKER_COUNTS = (4, 8)
TAU = 0.35
TARGET_SPEEDUP_AT_64 = 3.0


def host_metadata() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _assert_bit_identical(batched, walker) -> None:
    """The gate: both schedules must produce the same trajectory bits."""
    np.testing.assert_array_equal(batched.positions, walker.positions)
    np.testing.assert_array_equal(batched.log_values, walker.log_values)
    assert batched.accepted == walker.accepted
    assert batched.attempted == walker.attempted


def bench_population_step(quick: bool) -> dict:
    """Batched vs per-walker sweep over a shared coefficient table."""
    counts = QUICK_WALKER_COUNTS if quick else WALKER_COUNTS
    n_sweeps = 2 if quick else 4
    rows = []
    for n_walkers in counts:
        spec = CrowdSpec(n_walkers=n_walkers)
        table = solve_spec_table(spec)
        results = {
            mode: run_crowd_sequential(
                spec, n_sweeps=n_sweeps, tau=TAU, table=table, step_mode=mode
            )
            for mode in ("batched", "walker")
        }
        _assert_bit_identical(results["batched"], results["walker"])
        speedup = results["walker"].seconds / results["batched"].seconds
        rows.append(
            {
                "n_walkers": n_walkers,
                "n_sweeps": n_sweeps,
                "walker_seconds": results["walker"].seconds,
                "batched_seconds": results["batched"].seconds,
                "walker_steps_per_sec_walker_mode": results[
                    "walker"
                ].walkers_per_second,
                "walker_steps_per_sec_batched_mode": results[
                    "batched"
                ].walkers_per_second,
                "speedup_batched_vs_walker": speedup,
                "bit_identical": True,
            }
        )
    ref = CrowdSpec(n_walkers=counts[0])
    section = {
        "config": {
            "spec": "CrowdSpec defaults (reference lattice)",
            "n_orbitals": ref.n_orbitals,
            "grid": list(ref.grid_shape),
            "engine": ref.engine,
            "tau": TAU,
        },
        "rows": rows,
        "target_speedup_at_64_walkers": TARGET_SPEEDUP_AT_64,
    }
    at_64 = [r for r in rows if r["n_walkers"] == 64]
    if at_64:
        section["speedup_at_64_walkers"] = at_64[0]["speedup_batched_vs_walker"]
        section["meets_target"] = (
            at_64[0]["speedup_batched_vs_walker"] >= TARGET_SPEEDUP_AT_64
        )
    return section


def bench_sharded_parity(quick: bool) -> dict:
    """The same gate through the process pool: modes agree for any K."""
    spec = CrowdSpec(n_walkers=4 if quick else 8)
    table = solve_spec_table(spec)
    n_sweeps = 2
    reference = run_crowd_sequential(
        spec, n_sweeps=n_sweeps, tau=TAU, table=table, step_mode="walker"
    )
    rows = []
    for n_processes in (1, 2):
        res = run_crowd_parallel(
            spec,
            n_workers=n_processes,
            n_sweeps=n_sweeps,
            tau=TAU,
            table=table,
            step_mode="batched",
        )
        _assert_bit_identical(res, reference)
        rows.append(
            {
                "processes": n_processes,
                "seconds": res.seconds,
                "bit_identical_to_sequential_walker_mode": True,
            }
        )
    return {
        "config": {"n_walkers": spec.n_walkers, "n_sweeps": n_sweeps, "tau": TAU},
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr4.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    report = {
        "benchmark": "pr4-batched-population-step",
        "host": host_metadata(),
        "note": (
            "Both step modes produce bit-identical trajectories; the "
            "speedup is pure evaluation-schedule efficiency (one batched "
            "kernel call per stage instead of one Python-dispatched call "
            "per walker), so it holds on single-core hosts too."
        ),
        "population_step": bench_population_step(args.quick),
        "sharded_parity": bench_sharded_parity(args.quick),
    }
    report["total_seconds"] = time.perf_counter() - t0

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in report["population_step"]["rows"]:
        print(
            f"walkers={row['n_walkers']:3d}  "
            f"walker-mode {row['walker_steps_per_sec_walker_mode']:8.1f} "
            f"steps/s  batched {row['walker_steps_per_sec_batched_mode']:8.1f} "
            f"steps/s  speedup {row['speedup_batched_vs_walker']:.2f}x  "
            f"bit-identical",
            file=sys.stderr,
        )
    if "meets_target" in report["population_step"]:
        sec = report["population_step"]
        print(
            f"64-walker speedup {sec['speedup_at_64_walkers']:.2f}x "
            f"(target >= {TARGET_SPEEDUP_AT_64:.1f}x): "
            + ("PASS" if sec["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not sec["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
