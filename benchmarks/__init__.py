"""Test package."""
