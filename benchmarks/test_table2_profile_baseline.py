"""Paper Table II — single-node run-time profile of the QMCPACK baseline.

Paper values (% of run time):

              BDW   KNC   KNL   BG/Q
  B-splines    18    28    21    22
  DistTables   30    23    34    39
  Jastrow      13    19    19    21

Reproduction: the full miniQMC app with *everything* in the baseline AoS
layout, profiled live on this host.  Python cost ratios differ from C++
(the AoS B-spline engine is relatively slower here), so the live shares
are reported next to the paper's; the asserted shape is that the three
groups together dominate the run time (paper: "Their total amounts to
60%-80% across the platforms").
"""

from benchmarks.conftest import emit
from repro.miniqmc import build_app, run_profiled
from repro.perf import format_table

PAPER = {
    "BDW": (18, 30, 13),
    "KNC": (28, 23, 19),
    "KNL": (21, 34, 19),
    "BGQ": (22, 39, 21),
}


def test_table2_baseline_profile(benchmark):
    from repro.hwsim import MACHINES, MiniQmcProfileModel

    app = build_app(
        n_orbitals=16, grid_shape=(12, 12, 12), layout="aos", engine="aos"
    )
    run_profiled(app, n_sweeps=2)  # warm + measure
    shares = app.timers.shares()

    rows = []
    for m in ("BDW", "KNC", "KNL", "BGQ"):
        rows.append([m, *PAPER[m], "paper"])
        s = MiniQmcProfileModel(MACHINES[m]).table2_profile()
        rows.append(
            [
                m,
                round(s["bspline"], 1),
                round(s["distance_tables"], 1),
                round(s["jastrow"], 1),
                "model",
            ]
        )
    rows.append(
        [
            "host",
            round(shares.get("bspline", 0.0), 1),
            round(shares.get("distance_tables", 0.0), 1),
            round(shares.get("jastrow", 0.0), 1),
            "live",
        ]
    )
    emit(
        format_table(
            ["node", "B-splines%", "DistTables%", "Jastrow%", "source"],
            rows,
            title="Table II — baseline (all-AoS) run-time profile",
        )
    )

    total_known = (
        shares.get("bspline", 0.0)
        + shares.get("distance_tables", 0.0)
        + shares.get("jastrow", 0.0)
    )
    # The paper's qualitative claim: the three groups dominate.
    assert total_known > 60.0

    # Benchmark one profiled sweep of the baseline app.
    from repro.qmc import sweep

    benchmark(lambda: sweep(app.wf, 0.15, app.rng))
