"""Paper Sec. I headline — ">14x reduction in time-to-solution on 16 KNL nodes".

The multi-node recipe (Sec. V-C): fixed total walker population spread
over n nodes, nth = n threads per walker, perfect MPI efficiency (the
paper's own assumption, justified by ref [12]).  Modelled through
``repro.hwsim.cluster.strong_scaling_curve``.
"""

from benchmarks.conftest import emit
from repro.hwsim import KNL, MACHINES, strong_scaling_curve
from repro.perf import format_table


def test_multinode_time_to_solution(benchmark):
    pts = strong_scaling_curve(KNL, "vgh", 2048)
    rows = [
        [p.n_nodes, p.nth, p.tile_size, p.time_reduction, p.parallel_efficiency]
        for p in pts
    ]
    emit(
        format_table(
            ["nodes", "nth", "Nb", "time reduction", "efficiency"],
            rows,
            title="Multi-node strong scaling [model:KNL, VGH, N=2048] "
            "(paper: >14x on 16 nodes)",
        )
    )
    final = pts[-1]
    assert final.n_nodes == 16
    assert final.time_reduction > 13.0  # paper >14x; model ~13.5x
    assert final.parallel_efficiency > 0.80

    # Contrast: the LLC-limited machines cannot play this game (Sec. VI-C).
    rows = []
    for name in ("BDW", "BGQ"):
        p4 = strong_scaling_curve(MACHINES[name], "vgh", 2048, node_counts=(4,))[0]
        rows.append([name, 4, p4.time_reduction, p4.parallel_efficiency])
    p4_knl = strong_scaling_curve(KNL, "vgh", 2048, node_counts=(4,))[0]
    rows.append(["KNL", 4, p4_knl.time_reduction, p4_knl.parallel_efficiency])
    emit(
        format_table(
            ["machine", "nodes", "time reduction", "efficiency"],
            rows,
            title="4-node comparison — shared-LLC machines scale worse (Sec. VI-C)",
        )
    )
    for name in ("BDW", "BGQ"):
        p4 = strong_scaling_curve(MACHINES[name], "vgh", 2048, node_counts=(4,))[0]
        assert p4.parallel_efficiency < p4_knl.parallel_efficiency

    benchmark(lambda: strong_scaling_curve(KNL, "vgh", 2048))
