"""Paper Fig. 8 — normalized KNL speedups of V/VGL/VGH vs the AoS baseline.

Paper headline: "Our optimizations boost the throughput by 1.85x(V),
6.4x(VGL) and 2.5x(VGH) on a node at N = 4096", with the AoS public
QMCPACK implementation as the reference and the AoSoA version (optimal
Nb, plus the VGL basic optimizations) as the measurement.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.perf import format_series, format_table

SWEEP = (128, 256, 512, 1024, 2048, 4096)
PAPER_AT_4096 = {"v": 1.85, "vgl": 6.4, "vgh": 2.5}


def test_fig8_knl_normalized_speedup(models, benchmark):
    model = models["KNL"]
    series = {}
    for kern in ("v", "vgl", "vgh"):
        vals = []
        for n in SWEEP:
            base = model.evaluate(kern, "aos", n)
            nb, _ = model.best_tile_size(kern, n)
            opt = model.evaluate(kern, "aosoa", n, nb)
            vals.append(opt.evals_per_sec / base.evals_per_sec)
        series[kern.upper()] = vals
    emit(
        format_series(
            "N",
            list(SWEEP),
            series,
            title="Fig 8 — KNL speedup vs AoS baseline (AoSoA, optimal Nb) [model:KNL]",
        )
    )

    at4096 = {k.lower(): v[-1] for k, v in series.items()}
    emit(
        format_table(
            ["kernel", "paper", "model", "ratio"],
            [
                [k, PAPER_AT_4096[k], at4096[k], at4096[k] / PAPER_AT_4096[k]]
                for k in ("v", "vgl", "vgh")
            ],
            title="Fig 8 at N=4096 — paper vs model",
        )
    )

    # Shape: the paper's ordering VGL > VGH > V at every N >= 512, and
    # each headline number within ~1.5x.
    for i, n in enumerate(SWEEP):
        if n >= 512:
            assert series["VGL"][i] > series["VGH"][i] > series["V"][i]
    for k, paper in PAPER_AT_4096.items():
        assert 1 / 1.55 < at4096[k] / paper < 1.55

    benchmark(lambda: model.speedups("vgh", 4096, 1))
