"""Paper Fig. 7(a) — VGH throughput before/after the AoS-to-SoA transform.

Paper shape: 2-4x speedups for small-to-medium N on the Intel machines;
the gain fades as N grows past 512 ("Almost no speedup is obtained on
KNC and KNL at N=2048 and 4096") because the untiled output working set
falls out of cache either way.

Model series: T(N) for AoS and SoA on all four machines at the paper's
walker counts.  Live series: wall-clock AoS vs SoA on this host at small
N, which must show SoA ahead.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.miniqmc import live_kernel_config, random_coefficients, run_kernel_driver
from repro.perf import format_series, format_table

SWEEP = (128, 256, 512, 1024, 2048, 4096)


def test_fig7a_model_series(models, benchmark):
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        model = models[name]
        aos = [model.evaluate("vgh", "aos", n).throughput for n in SWEEP]
        soa = [model.evaluate("vgh", "soa", n).throughput for n in SWEEP]
        emit(
            format_series(
                "N",
                list(SWEEP),
                {"T(AoS)": aos, "T(SoA)": soa, "speedup": list(np.array(soa) / aos)},
                title=f"Fig 7a — VGH throughput, AoS vs SoA [model:{name}]",
            )
        )
        ratio = np.array(soa) / np.array(aos)
        # SoA never loses, and the gain at the small end beats the gain
        # at N=4096 on the cacheless many-core machines.
        assert (ratio >= 1.0).all()
        if name in ("KNC", "KNL"):
            assert ratio[1] > ratio[-1]

    benchmark(lambda: models["KNL"].evaluate("vgh", "soa", 2048).throughput)


def test_fig7a_live_soa_beats_aos(live_cfg, live_table, benchmark):
    res_aos = run_kernel_driver(live_cfg, "aos", kernels=("vgh",), coefficients=live_table)
    res_soa = run_kernel_driver(live_cfg, "soa", kernels=("vgh",), coefficients=live_table)
    t_aos, t_soa = res_aos.throughputs["vgh"], res_soa.throughputs["vgh"]
    emit(
        format_table(
            ["engine", "T(vgh) ops/s", "speedup vs AoS"],
            [["aos", t_aos, 1.0], ["soa", t_soa, t_soa / t_aos]],
            title=f"Fig 7a [live:host] N={live_cfg.n_splines}",
        )
    )
    # Strided AoS stores genuinely cost more in NumPy too.
    assert t_soa > t_aos

    eng_cfg = live_kernel_config(n_splines=64, grid=(12, 12, 12), n_samples=4)
    table = random_coefficients(eng_cfg)
    benchmark(
        lambda: run_kernel_driver(
            eng_cfg, "soa", kernels=("vgh",), coefficients=table
        )
    )
