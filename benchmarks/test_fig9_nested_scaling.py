"""Paper Fig. 9 — nested-threading scaling on KNL at N=2048.

Paper shape: near-ideal scaling of all three kernels up to nth=16
threads per walker ("The parallel efficiency for nth=16 is greater than
90%, even though Nb=128 is smaller than the optimal tile size"), with
the walker count per node reduced by the same factor.

The live section runs the actual ThreadPoolExecutor nested evaluator;
on this single-core host no wall-clock speedup is possible, so the live
assertion is correctness + bounded overhead, with the model carrying the
scaling reproduction.
"""

from dataclasses import replace

import numpy as np

from benchmarks.conftest import emit
from repro.miniqmc import live_kernel_config, random_coefficients, run_tiled_driver
from repro.perf import format_series, format_table

NTH = (1, 2, 4, 8, 16)


def test_fig9_model_scaling(models, benchmark):
    model = models["KNL"]
    series = {}
    tiles = []
    for kern in ("v", "vgl", "vgh"):
        ref = model.speedups(kern, 2048, 1)
        speedups = []
        for nth in NTH:
            s = model.speedups(kern, 2048, nth)
            speedups.append(s["C"] / ref["B"])
            if kern == "vgh":
                tiles.append(s["nb_nested"])
        series[kern.upper()] = speedups
    emit(
        format_series(
            "nth",
            list(NTH),
            dict(series, Nb_vgh=tiles),
            title="Fig 9 — speedup vs threads/walker, N=2048 [model:KNL] "
            "(reference: AoSoA nth=1)",
        )
    )

    vgh = np.asarray(series["VGH"])
    eff = vgh / np.asarray(NTH)
    emit(
        format_table(
            ["nth", "speedup", "efficiency"],
            [[n, s, e] for n, s, e in zip(NTH, vgh, eff)],
            title="Fig 9 — VGH parallel efficiency [model:KNL] (paper: >90% at 16)",
        )
    )
    # Paper: >=~90% at nth=16 (we assert >80%), monotone speedup, and the
    # per-nth tile shrinks once nth exceeds N/Nb_opt.
    assert eff[-1] > 0.80
    assert (np.diff(vgh) > 0).all()
    assert tiles[-1] < tiles[0] or tiles[0] <= 128

    benchmark(lambda: model.speedups("vgh", 2048, 16))


def test_fig9_live_nested_correct_and_bounded(live_table, benchmark):
    cfg = replace(
        live_kernel_config(n_splines=128, grid=(16, 16, 16), n_samples=4),
        tile_size=16,
    )
    res1 = run_tiled_driver(cfg, n_threads=1, kernels=("vgh",), coefficients=live_table)
    res4 = run_tiled_driver(cfg, n_threads=4, kernels=("vgh",), coefficients=live_table)
    ratio = res4.seconds["vgh"] / res1.seconds["vgh"]
    emit(
        format_table(
            ["nth", "seconds", "vs nth=1"],
            [[1, res1.seconds["vgh"], 1.0], [4, res4.seconds["vgh"], ratio]],
            title="Fig 9 [live:host] nested driver on a 1-core host "
            "(correctness + overhead check; scaling lives in the model)",
        )
    )
    # Single core: threading cannot help, but overhead must stay bounded.
    assert ratio < 4.0

    benchmark(
        lambda: run_tiled_driver(
            cfg, n_threads=2, kernels=("v",), coefficients=live_table
        )
    )
