"""Live microbenchmarks of the actual NumPy kernels on this host.

Not a paper artifact — the measurement substrate behind every live
bench: per-kernel, per-engine timings through pytest-benchmark so
regressions in the Python kernels are caught numerically.
"""

import numpy as np
import pytest

from repro.core import (
    BsplineAoS,
    BsplineAoSoA,
    BsplineFused,
    BsplineSoA,
    Grid3D,
)

N_SPLINES = 128
GRID = (16, 16, 16)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(99)
    grid = Grid3D(*GRID)
    P = rng.standard_normal((*GRID, N_SPLINES)).astype(np.float32)
    positions = grid.random_positions(8, rng)
    return grid, P, positions


ENGINES = {
    "aos": BsplineAoS,
    "soa": BsplineSoA,
    "fused": BsplineFused,
}


@pytest.mark.parametrize("engine", ["aos", "soa", "fused"])
@pytest.mark.parametrize("kernel", ["v", "vgl", "vgh"])
def test_kernel_eval(benchmark, setup, engine, kernel):
    grid, P, positions = setup
    eng = ENGINES[engine](grid, P)
    out = eng.new_output(kernel)
    kern = getattr(eng, kernel)

    def run():
        for x, y, z in positions:
            kern(x, y, z, out)

    benchmark(run)
    # Sanity: outputs are finite.
    assert np.isfinite(out.v).all()


@pytest.mark.parametrize("tile_size", [16, 64, 128])
def test_tiled_vgh(benchmark, setup, tile_size):
    grid, P, positions = setup
    eng = BsplineAoSoA(grid, P, tile_size)
    out = eng.new_output("vgh")

    def run():
        for x, y, z in positions:
            eng.vgh(x, y, z, out)

    benchmark(run)
    assert np.isfinite(out.as_canonical()["v"]).all()


def test_coefficient_solve(benchmark):
    rng = np.random.default_rng(7)
    samples = rng.standard_normal((16, 16, 16, 64))
    from repro.core import solve_coefficients_3d

    benchmark(lambda: solve_coefficients_3d(samples))
