"""Ablation benches for the design choices DESIGN.md calls out.

Six ablations:

1. **threading over N without tiling** — the alternative the paper
   evaluated and rejected in Sec. V-C ("does not reap the benefits of
   smaller working sets ... performs worse than the approach chosen
   here"); modelled on KNL.
2. **single vs double precision** — the paper computes in SP ("All the
   computations in miniQMC are performed in single precision"); live
   measurement of the speed/accuracy trade on this host.
3. **batched vs per-position evaluation** — the beyond-paper extension
   (later QMCPACK's multi-walker API); live dispatch-amortization factor.
4. **DDR vs MCDRAM on KNL** — Fig. 10's X marker as a full N sweep.
5. **crowd vs sequential walkers** — lock-step batched propagation, the
   paper's stated forward direction for the AoSoA design.
6. **delayed determinant updates** — rank-k Woodbury batching of the
   Eq.-3 Sherman-Morrison machinery (the group's follow-up work).
"""

import time
from dataclasses import replace

import numpy as np

from benchmarks.conftest import emit
from repro.core import BsplineBatched, BsplineFused, Grid3D, solve_coefficients_3d
from repro.core.refimpl import reference_vgh
from repro.hwsim import KNL, BsplinePerfModel
from repro.perf import format_series, format_table


def test_ablation_threading_over_n(models, benchmark):
    """Tiled nested threading must beat inner-loop threading (Sec. V-C)."""
    model = models["KNL"]
    rows = []
    for nth in (2, 4, 8, 16):
        nb, _ = model.best_tile_size("vgh", 2048, nth=nth)
        tiled = model.evaluate("vgh", "aosoa", 2048, nb, nth=nth)
        flat = model.evaluate_threaded_over_n("vgh", 2048, nth)
        rows.append(
            [nth, tiled.throughput, flat.throughput, tiled.throughput / flat.throughput]
        )
    emit(
        format_table(
            ["nth", "T(tiled nested)", "T(threaded over N)", "tiled advantage"],
            rows,
            title="Ablation 1 — nested threading WITH vs WITHOUT tiling "
            "[model:KNL, VGH, N=2048]",
        )
    )
    for _, t_tiled, t_flat, _ in rows:
        assert t_tiled > t_flat

    benchmark(lambda: model.evaluate_threaded_over_n("vgh", 2048, 16))


def test_ablation_precision(benchmark):
    """SP vs DP tables: live speed and accuracy on this host."""
    rng = np.random.default_rng(12)
    grid = Grid3D(14, 14, 14)
    samples = rng.standard_normal((14, 14, 14, 128))
    results = {}
    for dtype in (np.float32, np.float64):
        P = solve_coefficients_3d(samples, dtype=dtype)
        eng = BsplineFused(grid, P)
        out = eng.new_output("vgh")
        positions = grid.random_positions(32, rng)
        secs = float("inf")
        for _repeat in range(3):  # best-of-3: timing noise robustness
            t0 = time.perf_counter()
            for x, y, z in positions:
                eng.vgh(x, y, z, out)
            secs = min(secs, time.perf_counter() - t0)
        # Accuracy vs the float64 reference oracle at the last position.
        ref_v, _, _ = reference_vgh(grid, P.astype(np.float64), *positions[-1])
        err = float(np.abs(out.as_canonical()["v"] - ref_v).max())
        results[np.dtype(dtype).name] = (secs, P.nbytes, err)
    rows = [
        [name, secs * 1e3, nbytes / 1e6, err]
        for name, (secs, nbytes, err) in results.items()
    ]
    emit(
        format_table(
            ["dtype", "ms/32 evals", "table MB", "max err vs f64 oracle"],
            rows,
            title="Ablation 2 — precision [live:host, N=128] "
            "(paper: SP halves memory at acceptable accuracy)",
        )
    )
    f32 = results["float32"]
    f64 = results["float64"]
    assert f32[1] == f64[1] / 2  # half the memory
    assert f32[2] < 1e-3  # SP accuracy fine for QMC purposes
    assert f32[0] < f64[0] * 2.0  # and never dramatically slower

    eng = BsplineFused(grid, solve_coefficients_3d(samples))
    out = eng.new_output("vgh")
    benchmark(lambda: eng.vgh(0.3, 0.5, 0.7, out))


def test_ablation_batched_evaluation(benchmark):
    """Batched multi-position evaluation vs per-position calls (live)."""
    rng = np.random.default_rng(13)
    grid = Grid3D(14, 14, 14)
    P = rng.standard_normal((14, 14, 14, 256)).astype(np.float32)
    positions = grid.random_positions(64, rng)

    fused = BsplineFused(grid, P)
    single_out = fused.new_output("vgh")
    t0 = time.perf_counter()
    for x, y, z in positions:
        fused.vgh(x, y, z, single_out)
    t_single = time.perf_counter() - t0

    batched = BsplineBatched(grid, P)
    batch_out = batched.new_output(len(positions))
    t0 = time.perf_counter()
    batched.vgh_batch(positions, batch_out)
    t_batch = time.perf_counter() - t0

    emit(
        format_table(
            ["schedule", "ms/64 positions", "speedup"],
            [
                ["per-position (fused)", t_single * 1e3, 1.0],
                ["batched", t_batch * 1e3, t_single / t_batch],
            ],
            title="Ablation 3 — batched vs per-position VGH "
            "[live:host, N=256, 64 positions]",
        )
    )
    # Batching amortizes dispatch: it must win, and agree numerically.
    assert t_batch < t_single
    np.testing.assert_allclose(
        batch_out.v[-1], single_out.v, atol=1e-4
    )

    benchmark(lambda: batched.vgh_batch(positions, batch_out))


def test_ablation_ddr_vs_mcdram(models, benchmark):
    """KNL flat-mode memory choice across the N sweep (Fig. 10's X)."""
    from dataclasses import replace as dc_replace

    sweep = (128, 512, 2048, 4096)
    mcdram = models["KNL"]
    ddr_machine = dc_replace(KNL, stream_bw=KNL.ddr_bw)
    ddr = BsplinePerfModel(ddr_machine)
    t_mc, t_ddr = [], []
    for n in sweep:
        nb, _ = mcdram.best_tile_size("vgh", n)
        t_mc.append(mcdram.evaluate("vgh", "aosoa", n, nb).throughput)
        t_ddr.append(ddr.evaluate("vgh", "aosoa", n, nb).throughput)
    emit(
        format_series(
            "N",
            list(sweep),
            {
                "T(MCDRAM)": t_mc,
                "T(DDR)": t_ddr,
                "MCDRAM advantage": list(np.array(t_mc) / t_ddr),
            },
            title="Ablation 4 — KNL MCDRAM vs DDR [model:KNL] "
            "(paper: 'Higher bandwidth available with MCDRAM ... is critical')",
        )
    )
    ratios = np.array(t_mc) / np.array(t_ddr)
    assert (ratios > 2.0).all()  # bandwidth-bound kernel: big gap everywhere

    benchmark(lambda: ddr.evaluate("vgh", "aosoa", 2048, 512))


def test_ablation_crowd_vs_sequential(benchmark):
    """Crowd (lock-step batched walkers) vs sequential walker sweeps.

    The paper's forward direction ("We plan to extend this AoSoA design
    to parallelize other parts of QMCPACK"): batching the same-electron
    orbital evaluations of many walkers into one kernel call.  Live
    measurement; trajectories are verified identical in
    tests/qmc/test_crowd.py.
    """
    from tests.qmc.test_crowd import build_crowd
    from repro.qmc import sweep
    from repro.qmc.crowd import Crowd

    n_walkers = 6
    wfs_c, rngs_c = build_crowd(n_walkers, n_orb=8, seed=77)
    wfs_s, rngs_s = build_crowd(n_walkers, n_orb=8, seed=77)

    t0 = time.perf_counter()
    Crowd(wfs_c, rngs_c).sweep(0.2)
    t_crowd = time.perf_counter() - t0

    t0 = time.perf_counter()
    for wf, rng in zip(wfs_s, rngs_s):
        sweep(wf, 0.2, rng)
    t_seq = time.perf_counter() - t0

    emit(
        format_table(
            ["driver", "seconds/sweep", "speedup"],
            [
                ["sequential walkers", t_seq, 1.0],
                ["crowd (batched)", t_crowd, t_seq / t_crowd],
            ],
            title=f"Ablation 5 — crowd vs sequential [live:host, "
            f"{n_walkers} walkers, N=8]",
        )
    )
    # On tiny problems Python overhead dominates either way; assert the
    # crowd is at least competitive (it wins decisively as N grows).
    assert t_crowd < 2.0 * t_seq

    wfs_b, rngs_b = build_crowd(2, n_orb=8, seed=5)
    crowd = Crowd(wfs_b, rngs_b)
    benchmark(lambda: crowd.sweep(0.2))


def test_ablation_delayed_updates(benchmark):
    """Rank-k delayed (Woodbury) updates vs per-move Sherman-Morrison.

    The follow-up optimization of the QMCPACK effort this paper belongs
    to: batch k accepted rows into one GEMM instead of k O(N^2) inverse
    rewrites.  Live measurement of accepted-move cost at N=256.
    """
    from repro.qmc import DiracDeterminant
    from repro.qmc.delayed import DelayedDeterminant

    n = 256
    rng = np.random.default_rng(21)
    A = rng.standard_normal((n, n)) + 3.0 * np.eye(n)

    def drive(det, moves=64):
        local = np.random.default_rng(3)
        t0 = time.perf_counter()
        for _ in range(moves):
            e = int(local.integers(0, n))
            u = local.standard_normal(n) + 3.0 * np.eye(n)[e]
            det.ratio(e, u)
            det.accept_move(e)
        if hasattr(det, "flush"):
            det.flush()
        return time.perf_counter() - t0

    t_sm = min(drive(DiracDeterminant(A.copy())) for _ in range(3))
    t_delayed = min(
        drive(DelayedDeterminant(A.copy(), delay=16)) for _ in range(3)
    )
    emit(
        format_table(
            ["scheme", "s/64 accepts", "speedup"],
            [
                ["Sherman-Morrison (rank-1)", t_sm, 1.0],
                ["delayed rank-16 Woodbury", t_delayed, t_sm / t_delayed],
            ],
            title="Ablation 6 — delayed determinant updates "
            f"[live:host, N={n}]",
        )
    )
    # Equivalence is asserted in tests/qmc/test_delayed.py; here assert
    # the delayed scheme is at least competitive at this size.
    assert t_delayed < 2.5 * t_sm

    det = DelayedDeterminant(A.copy(), delay=16)
    u = rng.standard_normal(n) + 3.0 * np.eye(n)[5]
    benchmark(lambda: det.ratio(5, u))
