"""PR7 benchmark: compiled kernel backends vs the NumPy floor, tier-gated.

Times every *available* registered backend (``repro.backends``) serving
the batched VGH kernel against the PR5 NumPy einsum path, on the same
:class:`repro.core.BsplineBatched` engine — the backend swap changes
only the chunk-level cores, so the comparison isolates compiled-core
arithmetic from memory layout.

**No number without a gate.**  Before a configuration is timed, the
backend's engine is checked against the frozen pre-padding oracle
(:class:`repro.core.batched_reference.ReferenceBatched`) at the
backend's *declared* conformance tier: ``exact`` rows must be
``assert_array_equal``-identical, ``allclose`` rows must sit within the
capability record's per-dtype ``(rtol, atol)``.  A backend that is not
importable on this host is recorded with its own availability message
(the fallback story is data, not an error).

The PR's acceptance target: the best compiled backend reaches >= 1.5x
NumPy VGH throughput on the headline row (N=256 splines, batch=256).

Run directly (pytest-free, writes BENCH_pr7.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr7.py [--quick|--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.backends import TIER_EXACT, get_backend, registered_backends
from repro.core import BsplineBatched, Grid3D, detect_caches
from repro.core.batched_reference import ReferenceBatched
from repro.core.kinds import Kind

# (n_splines, batch, dtype, grid, headline): the headline row carries
# the >= 1.5x compiled-vs-numpy acceptance target.
FULL_CONFIGS = (
    (64, 128, "float32", (24, 24, 24), False),
    (256, 256, "float32", (32, 32, 32), True),
    (256, 256, "float64", (32, 32, 32), True),
)
QUICK_CONFIGS = ((64, 128, "float32", (16, 16, 16), False),)
TINY_CONFIGS = ((24, 32, "float32", (12, 10, 14), False),)

TARGET_SPEEDUP = 1.5
KERNELS = ("v", "vgl", "vgh")
TARGET_KERNEL = "vgh"
BASELINE = "numpy"


def host_metadata() -> dict:
    caches = detect_caches()
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "caches": dataclasses.asdict(caches),
    }


def _build_problem(n_splines, batch, dtype, grid_shape):
    grid = Grid3D(*grid_shape, lengths=(3.0, 3.0, 3.0))
    rng = np.random.default_rng(20170707 + n_splines + batch)
    table = rng.standard_normal(grid_shape + (n_splines,)).astype(dtype)
    positions = grid.random_positions(batch, rng)
    return grid, table, positions


def _gate_at_tier(backend, eng, ref, positions, dtype) -> str:
    """Assert every kernel stream at the backend's declared tier.

    Returns the gate label recorded in the report row, e.g.
    ``"exact"`` or ``"allclose(rtol=1e-12, atol=1e-12)"``.
    """
    cap = backend.capability
    rtol, atol = cap.tolerance_for(dtype)
    for kern in KERNELS:
        kind = Kind(kern)
        if kind not in cap.kinds:
            continue
        out_ref = ref.new_output(kind, n=len(positions))
        out_new = eng.new_output(kind, n=len(positions))
        getattr(ref, f"{kern}_batch")(positions, out_ref)
        getattr(eng, f"{kern}_batch")(positions, out_new)
        for stream in out_ref.valid:
            msg = f"{cap.name}:{kern}/{stream} outside its declared tier"
            if cap.tier == TIER_EXACT:
                np.testing.assert_array_equal(
                    getattr(out_new, stream),
                    getattr(out_ref, stream),
                    err_msg=msg,
                )
            else:
                np.testing.assert_allclose(
                    getattr(out_new, stream),
                    getattr(out_ref, stream),
                    rtol=rtol,
                    atol=atol,
                    err_msg=msg,
                )
    if cap.tier == TIER_EXACT:
        return "exact"
    return f"allclose(rtol={rtol:g}, atol={atol:g})"


def _time_kernel(engine, kern, positions, reps) -> float:
    """Best-of-``reps`` seconds for one full-batch kernel call."""
    out = engine.new_output(Kind(kern), n=len(positions))
    call = getattr(engine, f"{kern}_batch")
    call(positions, out)  # warm: page the table in, trigger any JIT/compile
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        call(positions, out)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_backends(configs, reps) -> dict:
    unavailable = {}
    candidates = []
    for name in registered_backends():
        backend = get_backend(name)
        err = backend.availability_error()
        if err is None:
            candidates.append(backend)
        else:
            unavailable[name] = err

    rows = []
    for n_splines, batch, dtype, grid_shape, headline in configs:
        grid, table, positions = _build_problem(
            n_splines, batch, dtype, grid_shape
        )
        ref = ReferenceBatched(grid, table)
        measurements = {}
        for backend in candidates:
            if dtype not in backend.capability.dtypes:
                continue
            eng = BsplineBatched(grid, table, backend=backend)
            gate = _gate_at_tier(backend, eng, ref, positions, dtype)
            timings = {}
            for kern in KERNELS:
                if Kind(kern) not in backend.capability.kinds:
                    continue
                seconds = _time_kernel(eng, kern, positions, reps)
                timings[kern] = {
                    "seconds": seconds,
                    "evals_per_sec": batch / seconds,
                }
            measurements[backend.name] = {
                "tier": backend.capability.tier,
                "gate": gate,
                "kernels": timings,
            }
        base = measurements[BASELINE]["kernels"][TARGET_KERNEL]["seconds"]
        for name, m in measurements.items():
            t = m["kernels"].get(TARGET_KERNEL)
            if t is not None:
                t["speedup_vs_numpy"] = base / t["seconds"]
        rows.append(
            {
                "n_splines": n_splines,
                "batch": batch,
                "dtype": dtype,
                "grid": list(grid_shape),
                "headline": headline,
                "backends": measurements,
            }
        )
    return {"reps": reps, "rows": rows, "unavailable_backends": unavailable}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="small sizes, no speedup target"
    )
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="one tiny config for CI smoke runs: the tier gates and "
        "availability report only, no speedup target",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr7.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        configs, reps, label = TINY_CONFIGS, 2, "tiny"
    elif args.quick:
        configs, reps, label = QUICK_CONFIGS, 3, "quick"
    else:
        configs, reps, label = FULL_CONFIGS, 5, "full"

    t0 = time.perf_counter()
    section = bench_backends(configs, reps)
    compiled = [
        name
        for name, m in section["rows"][0]["backends"].items()
        if name != BASELINE
    ]
    report = {
        "benchmark": "pr7-kernel-backends",
        "mode": label,
        "host": host_metadata(),
        "note": (
            "All backends run on one BsplineBatched engine (same padded "
            "table, chunks and tiles) — only the chunk-level cores differ. "
            "Every (backend, config) row passed its declared conformance "
            "tier against the frozen pre-padding oracle before timing; "
            "unavailable backends are reported, not silently dropped."
        ),
        "backends": section,
        "target": {
            "kernel": TARGET_KERNEL,
            "speedup": TARGET_SPEEDUP,
            "baseline": BASELINE,
            "applies_to": "best compiled backend on headline rows",
        },
    }

    headline = [r for r in section["rows"] if r["headline"]]
    if headline and not (args.quick or args.tiny):
        if compiled:
            best = max(
                r["backends"][name]["kernels"][TARGET_KERNEL][
                    "speedup_vs_numpy"
                ]
                for r in headline
                for name in compiled
                if name in r["backends"]
            )
            report["target"]["best_headline_speedup"] = best
            report["target"]["meets_target"] = best >= TARGET_SPEEDUP
        else:
            report["target"]["meets_target"] = None
            report["target"]["note"] = (
                "no compiled backend available on this host; the numpy "
                "floor served every row (see unavailable_backends)"
            )

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in section["rows"]:
        for name, m in row["backends"].items():
            t = m["kernels"][TARGET_KERNEL]
            rel = (
                f"  {t['speedup_vs_numpy']:.2f}x vs numpy"
                if name != BASELINE
                else ""
            )
            print(
                f"N={row['n_splines']:4d} batch={row['batch']:4d} "
                f"{row['dtype']:8s} {name:6s} vgh "
                f"{t['evals_per_sec']:10.1f} ev/s  "
                f"gate={m['gate']}{rel}",
                file=sys.stderr,
            )
    for name, err in section["unavailable_backends"].items():
        print(f"unavailable: {name}: {err}", file=sys.stderr)
    if report["target"].get("meets_target") is not None:
        t = report["target"]
        print(
            f"best compiled headline vgh speedup "
            f"{t['best_headline_speedup']:.2f}x "
            f"(target >= {TARGET_SPEEDUP:.1f}x): "
            + ("PASS" if t["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not t["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
