"""Paper Fig. 10 — cache-aware roofline analysis of VGH at N=2048.

Paper observations reproduced:

* main-memory traffic at steady state is 64N reads + 10N writes for the
  optimized versions;
* AoS sits at lower AI *and* lower GFLOPS; SoA raises both;
* AoSoA raises achieved GFLOPS at (near-)ideal traffic;
* on KNL, running the best version from DDR instead of MCDRAM caps it at
  ~150 GFLOPS (the paper's X marker) — bandwidth, not compute, rules.
"""

from benchmarks.conftest import emit
from repro.hwsim import kernel_counts
from repro.perf import format_table
from repro.roofline import Roofline, roofline_points


def test_fig10_roofline_points(models, benchmark):
    for name in ("BDW", "KNL"):
        machine = models[name].machine
        roof = Roofline.for_machine(machine)
        pts = roofline_points(machine)
        rows = [
            [p.step, p.ai, p.gflops, p.attainable_gflops, p.efficiency]
            for p in pts
        ]
        emit(
            format_table(
                ["step", "AI(F/B)", "GFLOP/s", "roof", "efficiency"],
                rows,
                title=f"Fig 10 — VGH roofline at N=2048 [model:{name}] "
                f"(peak {machine.peak_sp_gflops:.0f} GF)",
            )
        )

    knl_pts = {p.step.split("(")[0]: p for p in roofline_points(models["KNL"].machine)}
    # The paper's qualitative sequence.
    assert knl_pts["AoS"].ai < knl_pts["SoA"].ai
    assert knl_pts["AoS"].gflops < knl_pts["SoA"].gflops < knl_pts["AoSoA"].gflops
    # DDR X-marker: an order ~150 GFLOPS, far below the MCDRAM point.
    ddr = knl_pts["AoSoA-DDR"]
    assert 100 < ddr.gflops < 600
    assert ddr.gflops < 0.5 * knl_pts["AoSoA"].gflops

    # Ideal steady-state AI from the counters: 64N reads + 10N writes.
    counts = kernel_counts("vgh", "soa", 2048)
    assert counts.read_values == 64 * 2048
    assert counts.write_values == 10 * 2048

    benchmark(lambda: roofline_points(models["KNL"].machine))
