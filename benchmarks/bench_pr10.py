"""PR10 benchmark: Opt C orbital-axis sharding on the production path.

Three measured sections, every row bit-gated before its clock starts
(``np.testing.assert_array_equal`` against the single full-width
engine / the sequential driver — the fan-out contract is exact, never
allclose):

* **fanout** — the :class:`repro.parallel.orbital.OrbitalEvaluator`
  kernel fan-out, shm-ring (`evaluate_batch`) vs pipe-gather
  (`evaluate_batch_pipe`) on the *identical* worker topology, at
  orbital_shards=1 (the walker-sharded scatter/gather upgraded to shm
  outputs) and orbital_shards>1 (Opt C) — the measured pickle-pipe
  overhead the SharedOutputRing eliminates;
* **drivers** — walker-steps/sec of ``run_crowd_parallel`` at
  walkers=2, processes=8: ``split="walkers"`` (only 2 of 8 workers can
  own a walker) vs ``split="orbitals"`` (all 8 cooperate on every
  walker), both bit-gated against ``run_crowd_sequential``;
* **projection** — the same walkers=2/processes=8 comparison on the
  calibrated :class:`repro.hwsim.perfmodel.BsplinePerfModel` at an
  8-core machine spec with this host's cache hierarchy.  The >=1.5x
  acceptance target is evaluated on the measured wall clock when the
  host has >= 8 cores, else on the model projection (and the report
  says which; a 1-core CI box cannot wall-clock an 8-way fan-out).

Run directly (pytest-free, writes BENCH_pr10.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr10.py [--quick|--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import BsplineBatched, Grid3D, detect_caches
from repro.core.kinds import Kind
from repro.core.partition import plan_orbital_blocks
from repro.hwsim.machine import host_machine_spec
from repro.hwsim.perfmodel import BsplinePerfModel
from repro.parallel import (
    CrowdSpec,
    run_crowd_parallel,
    run_crowd_sequential,
    solve_spec_table,
)
from repro.parallel.orbital import OrbitalEvaluator

TARGET_SPEEDUP = 1.5
TARGET_WALKERS = 2
TARGET_PROCESSES = 8

# (n_splines, batch, dtype, grid, processes, shards) for the fan-out
# section: shards=1 rows measure the walker-sharded path's shm upgrade.
FULL_FANOUT = (
    (64, 128, "float64", (12, 12, 12), 2, 1),
    (64, 128, "float64", (12, 12, 12), 2, 2),
    (128, 256, "float64", (16, 16, 16), 4, 4),
    (128, 256, "float32", (16, 16, 16), 4, 4),
)
QUICK_FANOUT = (
    (32, 64, "float64", (10, 10, 10), 2, 1),
    (32, 64, "float64", (10, 10, 10), 2, 2),
)
TINY_FANOUT = ((16, 24, "float64", (8, 8, 8), 2, 2),)

FULL_DRIVER = dict(n_orbitals=16, grid_shape=(12, 12, 12), n_sweeps=4)
QUICK_DRIVER = dict(n_orbitals=8, grid_shape=(10, 10, 10), n_sweeps=2)
TINY_DRIVER = dict(n_orbitals=4, grid_shape=(8, 8, 8), n_sweeps=1)

#: Spline width for the perfmodel projection: a production-scale orbital
#: count (the paper's smallest measured N); the model's tile admissibility
#: needs N >= 16 * nth, which the tiny driver problems cannot satisfy.
PROJECTION_N = 128


def host_metadata() -> dict:
    caches = detect_caches()
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "caches": dataclasses.asdict(caches),
    }


def _gate_streams(got, want, kind: Kind, label: str) -> None:
    for stream in kind.streams:
        np.testing.assert_array_equal(
            getattr(got, stream),
            getattr(want, stream),
            err_msg=f"{label}: {stream} diverged from the single engine",
        )


def _best_of(fn, reps: int) -> float:
    best = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_fanout(configs, reps: int) -> list[dict]:
    """shm-ring vs pipe-gather on identical (processes, shards) grids."""
    rows = []
    for n_splines, batch, dtype, grid_shape, procs, shards in configs:
        grid = Grid3D(*grid_shape, (1.0, 1.0, 1.0))
        rng = np.random.default_rng(20171009 + n_splines)
        table = rng.standard_normal((*grid_shape, n_splines)).astype(dtype)
        positions = np.random.default_rng(5 + batch).random((batch, 3))

        reference = BsplineBatched(grid, table)
        want = reference.new_output(Kind.VGH, n=batch)
        reference.evaluate_batch(Kind.VGH, positions, want)
        t_seq = _best_of(
            lambda: reference.evaluate_batch(Kind.VGH, positions, want), reps
        )

        with OrbitalEvaluator(
            grid, table, processes=procs, orbital_shards=shards,
            max_positions=batch,
        ) as fanned:
            shm_out = fanned.new_output(Kind.VGH, n=batch)
            fanned.evaluate_batch(Kind.VGH, positions, shm_out)  # warm
            _gate_streams(shm_out, want, Kind.VGH, "shm-ring")
            pipe_out = fanned.new_output(Kind.VGH, n=batch)
            fanned.evaluate_batch_pipe(Kind.VGH, positions, pipe_out)
            _gate_streams(pipe_out, want, Kind.VGH, "pipe-gather")
            t_shm = _best_of(
                lambda: fanned.evaluate_batch(Kind.VGH, positions, shm_out),
                reps,
            )
            t_pipe = _best_of(
                lambda: fanned.evaluate_batch_pipe(
                    Kind.VGH, positions, pipe_out
                ),
                reps,
            )
            n_blocks = fanned.n_blocks
            n_workers = fanned.n_workers
        # Result payload a pipe gather pickles per call (the traffic the
        # ring removes): every stream of the full (batch, N) output.
        payload = sum(
            int(np.prod((batch, *mid, n_splines)))
            for mid in ((), (3,), (), (6,))
        ) * np.dtype(dtype).itemsize
        rows.append(
            {
                "n_splines": n_splines,
                "batch": batch,
                "dtype": dtype,
                "grid": list(grid_shape),
                "processes": n_workers,
                "orbital_shards": n_blocks,
                "path": "walker-sharded" if n_blocks == 1 else "orbital",
                "sequential_seconds": t_seq,
                "shm_ring_seconds": t_shm,
                "pipe_gather_seconds": t_pipe,
                "pipe_overhead_seconds": t_pipe - t_shm,
                "pipe_vs_shm": t_pipe / t_shm,
                "pipe_payload_bytes": payload,
                "gated": True,
            }
        )
    return rows


def bench_drivers(driver_cfg: dict, reps: int, walkers: int, procs: int) -> dict:
    """walker-steps/sec: split='walkers' vs split='orbitals' at W < P."""
    spec = CrowdSpec(
        n_walkers=walkers,
        n_orbitals=driver_cfg["n_orbitals"],
        grid_shape=driver_cfg["grid_shape"],
        seed=11,
    )
    n_sweeps, tau = driver_cfg["n_sweeps"], 0.3
    table = solve_spec_table(spec)
    reference = run_crowd_sequential(spec, n_sweeps=n_sweeps, tau=tau, table=table)

    def run(split):
        best, result = np.inf, None
        for _ in range(reps):
            r = run_crowd_parallel(
                spec,
                n_workers=procs,
                n_sweeps=n_sweeps,
                tau=tau,
                table=table,
                split=split,
            )
            np.testing.assert_array_equal(
                r.positions, reference.positions,
                err_msg=f"split={split}: trajectory diverged",
            )
            np.testing.assert_array_equal(r.log_values, reference.log_values)
            if r.seconds < best:
                best, result = r.seconds, r
        return best, result

    t_walkers, r_walkers = run("walkers")
    t_orbitals, r_orbitals = run("orbitals")
    steps = walkers * n_sweeps
    return {
        "walkers": walkers,
        "processes": procs,
        "n_orbitals": spec.n_orbitals,
        "n_sweeps": n_sweeps,
        "walker_split": {
            "seconds": t_walkers,
            "walker_steps_per_sec": steps / t_walkers,
            "active_workers": min(walkers, procs),
        },
        "orbital_split": {
            "seconds": t_orbitals,
            "walker_steps_per_sec": steps / t_orbitals,
            "active_workers": r_orbitals.n_workers,
        },
        "measured_speedup": t_walkers / t_orbitals,
        "gated": True,
    }


def project_target(n_splines: int, walkers: int, procs: int) -> dict:
    """The perfmodel's verdict at an 8-core spec with this host's caches.

    Walker split at W < P leaves P - W cores idle: throughput scales
    with min(W, P).  The orbital split runs all P workers as an R x K
    grid — R row (position) groups x K orbital blocks.  Row groups
    shard independent positions exactly like walker sharding (perfect
    in the model); blocks pay the Opt C fan-out tax, Fig. 9's
    ``nested_efficiency``.  The measured tuner ranks candidate K values
    and keeps the winner, so the projection does the same.
    """
    caches = detect_caches()
    model = BsplinePerfModel(
        host_machine_spec(caches.l2_bytes, caches.llc_bytes, cpu_count=procs)
    )
    candidates = []
    for k in sorted({
        len(plan_orbital_blocks(n_splines, k))
        for k in (2, 4, 8, 16)
        if k <= procs
    }):
        if k < 2 or procs // k < 1:
            continue
        try:
            eff = model.nested_efficiency("vgh", n_splines, k)
        except ValueError:
            continue  # no admissible tile at this (N, K)
        r = procs // k
        candidates.append(
            {"orbital_shards": k, "row_groups": r,
             "nested_efficiency": eff, "speedup_vs_seq": r * k * eff}
        )
    best = max(candidates, key=lambda c: c["speedup_vs_seq"])
    walker_throughput = float(min(walkers, procs))
    return {
        "machine": f"{procs}-core host-cache spec",
        "n_splines": n_splines,
        "orbital_shards": best["orbital_shards"],
        "row_groups": best["row_groups"],
        "nested_efficiency": best["nested_efficiency"],
        "candidates": candidates,
        "walker_split_speedup_vs_seq": walker_throughput,
        "orbital_split_speedup_vs_seq": best["speedup_vs_seq"],
        "projected_speedup": best["speedup_vs_seq"] / walker_throughput,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--quick", action="store_true", help="small sizes")
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="one tiny config for CI smoke runs: the bit-identity gates "
        "and the shm-vs-pipe delta only, no speedup target",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr10.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        fanout_cfg, driver_cfg, reps, label = TINY_FANOUT, TINY_DRIVER, 1, "tiny"
    elif args.quick:
        fanout_cfg, driver_cfg, reps, label = QUICK_FANOUT, QUICK_DRIVER, 2, "quick"
    else:
        fanout_cfg, driver_cfg, reps, label = FULL_FANOUT, FULL_DRIVER, 3, "full"

    t0 = time.perf_counter()
    fanout_rows = bench_fanout(fanout_cfg, reps)
    drivers = bench_drivers(
        driver_cfg, reps, TARGET_WALKERS, TARGET_PROCESSES
    )
    # The projection describes the *target* configuration at production
    # scale, independent of which measurement mode ran.
    projection = project_target(
        PROJECTION_N, TARGET_WALKERS, TARGET_PROCESSES
    )

    cores = os.cpu_count() or 1
    target_basis = "measured" if cores >= TARGET_PROCESSES else "projected"
    achieved = (
        drivers["measured_speedup"]
        if target_basis == "measured"
        else projection["projected_speedup"]
    )
    report = {
        "benchmark": "pr10-orbital-sharding-opt-c",
        "mode": label,
        "host": host_metadata(),
        "note": (
            "Every row was gated with np.testing.assert_array_equal "
            "against the single full-width engine (fanout section) or "
            "the sequential crowd driver (drivers section) before "
            "timing.  shm_ring = SharedOutputRing zero-copy outputs; "
            "pipe_gather = the identical worker topology returning "
            "pickled result rectangles through the pool pipes.  On "
            "hosts with fewer cores than the target's processes=8 the "
            ">=1.5x acceptance target is evaluated on the calibrated "
            "perfmodel projection (target.basis says which applied)."
        ),
        "fanout": {"reps": reps, "rows": fanout_rows},
        "drivers": drivers,
        "projection": projection,
        "target": {
            "metric": "walker-steps/sec, orbitals vs walkers split",
            "walkers": TARGET_WALKERS,
            "processes": TARGET_PROCESSES,
            "speedup": TARGET_SPEEDUP,
            "basis": target_basis,
            "host_cores": cores,
        },
    }
    if not (args.quick or args.tiny):
        report["target"]["achieved_speedup"] = achieved
        report["target"]["meets_target"] = achieved >= TARGET_SPEEDUP

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    for row in fanout_rows:
        print(
            f"N={row['n_splines']:4d} batch={row['batch']:4d} "
            f"{row['dtype']:8s} {row['path']:14s} "
            f"P={row['processes']} K={row['orbital_shards']} "
            f"shm {row['shm_ring_seconds'] * 1e3:8.2f} ms vs pipe "
            f"{row['pipe_gather_seconds'] * 1e3:8.2f} ms "
            f"(pipe/shm {row['pipe_vs_shm']:.2f}x, payload "
            f"{row['pipe_payload_bytes'] / 1024:.0f} KiB/call)",
            file=sys.stderr,
        )
    d = drivers
    print(
        f"drivers: W={d['walkers']} P={d['processes']} "
        f"walkers-split {d['walker_split']['walker_steps_per_sec']:8.2f} "
        f"steps/s vs orbital-split "
        f"{d['orbital_split']['walker_steps_per_sec']:8.2f} steps/s "
        f"(measured {d['measured_speedup']:.2f}x on {cores} core(s))",
        file=sys.stderr,
    )
    p = projection
    print(
        f"projection ({p['machine']}): K={p['orbital_shards']} "
        f"eff={p['nested_efficiency']:.2f} -> orbital "
        f"{p['orbital_split_speedup_vs_seq']:.2f}x vs walker "
        f"{p['walker_split_speedup_vs_seq']:.2f}x = "
        f"{p['projected_speedup']:.2f}x",
        file=sys.stderr,
    )
    if "meets_target" in report["target"]:
        t = report["target"]
        print(
            f"orbital-vs-walker speedup {t['achieved_speedup']:.2f}x "
            f"({t['basis']}; target >= {TARGET_SPEEDUP:.2f}x): "
            + ("PASS" if t["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not t["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
