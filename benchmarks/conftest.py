"""Shared fixtures for the benchmark harness.

Every benchmark prints the same rows/series its paper table or figure
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them), asserts the qualitative shape, and times a representative kernel
through pytest-benchmark.

Two result flavours appear side by side (see DESIGN.md):

* ``model:<machine>`` — the calibrated hwsim execution-time model at the
  paper's exact configurations; the apples-to-apples reproduction.
* ``live:host`` — wall-clock measurements of the real NumPy kernels on
  this host at scaled-down sizes; they validate *directions*, not
  magnitudes.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.hwsim import MACHINES, BsplinePerfModel
from repro.miniqmc import live_kernel_config, random_coefficients


def emit(text: str) -> None:
    """Print a result table so it survives pytest's capture (shown with -s
    and in captured-output sections)."""
    print("\n" + text, file=sys.stderr)


@pytest.fixture(scope="session")
def models():
    """One calibrated performance model per paper machine."""
    return {name: BsplinePerfModel(m) for name, m in MACHINES.items()}


@pytest.fixture(scope="session")
def live_cfg():
    """Host-sized kernel configuration shared across live benches."""
    return live_kernel_config(n_splines=128, grid=(16, 16, 16), n_samples=8)


@pytest.fixture(scope="session")
def live_table(live_cfg):
    """Shared random coefficient table for live benches."""
    return random_coefficients(live_cfg)
