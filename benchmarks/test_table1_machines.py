"""Paper Table I — system configurations.

Regenerates the configuration table from the machine specs and checks
the derived quantities the rest of the reproduction depends on.
"""

from benchmarks.conftest import emit
from repro.hwsim import MACHINES
from repro.perf import format_table


def test_table1_system_configurations(benchmark):
    rows = []
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        m = MACHINES[name]
        rows.append(
            [
                name,
                m.cores,
                m.smt,
                m.simd_bits,
                m.freq_ghz,
                m.l1d_bytes // 1024,
                m.l2_bytes // 1024,
                m.llc_bytes // (1024 * 1024),
                m.stream_bw / 1e9,
                round(m.peak_sp_gflops),
            ]
        )
    table = format_table(
        [
            "machine",
            "cores",
            "smt",
            "simd(b)",
            "GHz",
            "L1(KB)",
            "L2(KB)",
            "LLC(MB)",
            "BW(GB/s)",
            "peakSP(GF)",
        ],
        rows,
        title="Table I — system configurations (paper values + derived SP peak)",
    )
    emit(table)

    # Shape assertions straight from the paper's intro: a KNL node is
    # more than 10x a BG/Q node in peak; KNL has the highest bandwidth.
    knl, bgq = MACHINES["KNL"], MACHINES["BGQ"]
    assert knl.peak_sp_gflops > 10 * bgq.peak_sp_gflops
    assert knl.stream_bw == max(m.stream_bw for m in MACHINES.values())

    benchmark(lambda: [MACHINES[n].peak_sp_gflops for n in MACHINES])
