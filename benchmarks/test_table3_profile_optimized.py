"""Paper Table III — miniQMC profile with optimized DT + Jastrow.

Paper values (% of run time):

                          B-splines  DistTables  Jastrow
  KNL                        68.5       20.3       11.2
  Xeon E5-2698v4             55.3       22.6       22.1

Reproduction: the same app as Table II but with SoA distance tables and
Jastrow while the B-spline engine stays at the AoS baseline — exactly the
paper's configuration ("B-spline routines consume more than 55% of run
time for miniQMC" once the other groups are optimized).  The asserted
shape: the B-spline share *rises* versus the Table II configuration and
becomes the dominant group.
"""

from benchmarks.conftest import emit
from repro.miniqmc import build_app, run_profiled
from repro.perf import format_table

PAPER = {
    "KNL": (68.5, 20.3, 11.2),
    "BDW(E5-2698v4)": (55.3, 22.6, 22.1),
}


def run_shares(layout: str, engine: str) -> dict:
    app = build_app(
        n_orbitals=16, grid_shape=(12, 12, 12), layout=layout, engine=engine
    )
    run_profiled(app, n_sweeps=2)
    return app.timers.shares()


def test_table3_optimized_dt_jastrow_profile(benchmark):
    from repro.hwsim import MACHINES, MiniQmcProfileModel

    baseline = run_shares("aos", "aos")
    optimized = run_shares("soa", "aos")

    rows = [[m, *PAPER[m], "paper"] for m in PAPER]
    for name in ("KNL", "BDW"):
        s = MiniQmcProfileModel(MACHINES[name]).table3_profile()
        rows.append(
            [
                name,
                round(s["bspline"], 1),
                round(s["distance_tables"], 1),
                round(s["jastrow"], 1),
                "model",
            ]
        )
    rows.append(
        [
            "host",
            round(optimized.get("bspline", 0.0), 1),
            round(optimized.get("distance_tables", 0.0), 1),
            round(optimized.get("jastrow", 0.0), 1),
            "live",
        ]
    )
    emit(
        format_table(
            ["node", "B-splines%", "DistTables%", "Jastrow%", "source"],
            rows,
            title="Table III — profile with optimized DT+Jastrow (AoS B-spline)",
        )
    )

    # Shape: optimizing the other groups raises the B-spline share and
    # makes it the largest attributed group.  (Generous slack: live
    # shares jitter by a few percent under system noise.)
    assert optimized["bspline"] >= baseline["bspline"] - 6.0
    known = {
        k: optimized.get(k, 0.0)
        for k in ("bspline", "distance_tables", "jastrow")
    }
    assert max(known, key=known.get) == "bspline"

    app = build_app(
        n_orbitals=16, grid_shape=(12, 12, 12), layout="soa", engine="aos"
    )
    from repro.qmc import sweep

    benchmark(lambda: sweep(app.wf, 0.15, app.rng))
