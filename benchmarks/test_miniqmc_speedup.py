"""Paper Sec. VII headline — ">4.5x speedup of full miniQMC" on KNL/BDW.

The paper combines the B-spline work with SoA distance tables and
Jastrow to speed the whole miniapp up by more than 4.5x.  The live
reproduction runs the full application twice on this host — everything
baseline vs everything optimized — and reports the wall-clock ratio.
The Python analogue of the optimized B-spline engine is the fused
tensor-contraction schedule (interpreter-dispatch is Python's "SIMD").
"""

import time

from benchmarks.conftest import emit
from repro.miniqmc import build_app, run_profiled
from repro.perf import format_table


def run_app_seconds(layout: str, engine: str, n_sweeps: int = 2) -> float:
    app = build_app(
        n_orbitals=16,
        grid_shape=(12, 12, 12),
        layout=layout,
        engine=engine,
        profile=False,
    )
    from repro.qmc import sweep

    sweep(app.wf, 0.15, app.rng)  # warm-up sweep (JIT-less but caches warm)
    t0 = time.perf_counter()
    for _ in range(n_sweeps):
        sweep(app.wf, 0.15, app.rng)
    return time.perf_counter() - t0


def test_full_miniqmc_speedup(benchmark):
    t_base = run_app_seconds("aos", "aos")
    t_opt = run_app_seconds("soa", "fused")
    speedup = t_base / t_opt
    emit(
        format_table(
            ["configuration", "seconds", "speedup"],
            [
                ["baseline (AoS everything)", t_base, 1.0],
                ["optimized (SoA + fused B-spline)", t_opt, speedup],
            ],
            title="Full miniQMC speedup [live:host] "
            "(paper: >4.5x on KNL and BDW)",
        )
    )
    # The Python port reproduces the headline direction with margin: the
    # optimized configuration must win clearly end to end.
    assert speedup > 1.5

    app = build_app(
        n_orbitals=8, grid_shape=(10, 10, 10), layout="soa", engine="fused",
        profile=False,
    )
    from repro.qmc import sweep

    benchmark(lambda: sweep(app.wf, 0.15, app.rng))
