"""Paper Fig. 7(b) — VGH throughput before/after AoSoA tiling.

Paper shape: "significant improvement for N=2048 and 4096" and "sustained
throughput across the problem sizes on all the cache-based architectures"
— i.e. the tiled T(N) curve is nearly flat while the untiled SoA curve
collapses at large N.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.perf import format_series

SWEEP = (128, 256, 512, 1024, 2048, 4096)

# Paper optimal tile sizes (Sec. VI-B).
PAPER_NB = {"BDW": 64, "KNC": 512, "KNL": 512, "BGQ": 64}


def test_fig7b_model_series(models, benchmark):
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        model = models[name]
        nb = PAPER_NB[name]
        soa = [model.evaluate("vgh", "soa", n).throughput for n in SWEEP]
        tiled = [
            model.evaluate("vgh", "aosoa", n, min(nb, n)).throughput for n in SWEEP
        ]
        emit(
            format_series(
                "N",
                list(SWEEP),
                {
                    "T(SoA)": soa,
                    f"T(AoSoA Nb={nb})": tiled,
                    "speedup": list(np.array(tiled) / soa),
                },
                title=f"Fig 7b — VGH throughput, SoA vs AoSoA [model:{name}]",
            )
        )
        tiled = np.asarray(tiled)
        soa = np.asarray(soa)
        # Tiling helps most at the large end...
        assert tiled[-1] / soa[-1] > tiled[0] / soa[0] * 0.95
        assert tiled[-1] > soa[-1]
        # ...and sustains throughput across sizes: the tiled curve's
        # worst point stays within 2.2x of its best (the untiled curve
        # collapses much harder on the many-core machines).
        assert tiled.max() / tiled.min() < 2.2

    # Untiled collapse for contrast (KNL): the SoA curve loses >= 40% of
    # its small-N throughput by N=4096, while the tiled curve (asserted
    # above) stays nearly flat.
    soa_knl = [models["KNL"].evaluate("vgh", "soa", n).throughput for n in SWEEP]
    assert max(soa_knl) / min(soa_knl) > 1.5

    benchmark(lambda: models["KNL"].evaluate("vgh", "aosoa", 4096, 512).throughput)
