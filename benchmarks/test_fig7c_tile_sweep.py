"""Paper Fig. 7(c) — VGH throughput vs tile size Nb at N=2048.

Paper shape: "A striking feature for BDW is the peak at Nb = 64" (the
28 MB working set fits the 45 MB L3; 56 MB at Nb=128 does not); BG/Q
peaks at 64 via its 32 MB shared L2; "For KNC and KNL, a performance
peak is obtained at Nb = 512" (outputs fit in cache for the reduction,
prefactor cost amortized).

The live section runs the FFTW-wisdom-style auto-tuner on this host —
its optimum is a *host* property (here dominated by Python per-tile
dispatch, so large Nb wins), reported for honesty, not asserted against
the paper.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.core import Grid3D, autotune_tile_size
from repro.miniqmc import live_kernel_config, random_coefficients
from repro.perf import format_series, format_table

PAPER_PEAK = {"BDW": 64, "KNC": 512, "KNL": 512, "BGQ": 64}


def test_fig7c_model_tile_sweep(models, benchmark):
    for name in ("BDW", "KNC", "KNL", "BGQ"):
        best, sweep = models[name].best_tile_size("vgh", 2048)
        nbs = sorted(sweep)
        emit(
            format_series(
                "Nb",
                nbs,
                {"T(VGH)": [sweep[nb] for nb in nbs]},
                title=f"Fig 7c — VGH throughput vs Nb, N=2048 [model:{name}] "
                f"(model peak {best}, paper peak {PAPER_PEAK[name]})",
            )
        )
        # The model peak is at (or adjacent to) the paper's peak.
        paper_nb = PAPER_PEAK[name]
        assert sweep[paper_nb] > 0.9 * max(sweep.values())
    # The decisive cliffs: BDW loses the LLC at 128; KNL declines past 512.
    _, bdw = models["BDW"].best_tile_size("vgh", 2048)
    assert bdw[64] > 1.3 * bdw[128]
    _, knl = models["KNL"].best_tile_size("vgh", 2048)
    assert knl[512] > knl[2048]

    benchmark(lambda: models["BDW"].best_tile_size("vgh", 2048))


def test_fig7c_live_autotuner(benchmark):
    cfg = live_kernel_config(n_splines=64, grid=(10, 10, 10))
    table = random_coefficients(cfg)
    grid = Grid3D(*cfg.grid_shape)
    best, timings = autotune_tile_size(
        grid, table, "vgh", candidates=[16, 32, 64], n_samples=4, repeats=2
    )
    rows = [[nb, t * 1e3] for nb, t in sorted(timings.items())]
    emit(
        format_table(
            ["Nb", "ms/batch"],
            rows,
            title=f"Fig 7c [live:host] auto-tuned Nb={best} at N=64 "
            "(host optimum reflects Python dispatch costs)",
        )
    )
    assert best in timings
    assert min(timings.values()) > 0

    benchmark(
        lambda: autotune_tile_size(
            grid, table, "v", candidates=[32, 64], n_samples=2, repeats=1
        )
    )
