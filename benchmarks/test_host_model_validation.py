"""Model-mechanism validation on the one machine we DO have: the host.

The paper-machine results are necessarily modelled; this bench closes
the loop by pointing the same compute+memory decomposition at the host
(measured STREAM bandwidth + measured NumPy dispatch overhead — the
interpreter's instruction-issue analogue) and predicting the fused VGH
kernel's time *without fitting to it*.  The prediction lands within a
small factor and converges toward the measurement as N grows (small-N
times are dominated by per-eval setup the simple call count
underestimates) — evidence that the modelling approach, not just its
calibration, is sound.
"""

import time

import numpy as np

from benchmarks.conftest import emit
from repro.core import BsplineFused, Grid3D
from repro.hwsim.hostcal import predict_fused_vgh_seconds, profile_host
from repro.perf import format_table


def test_host_first_principles_prediction(benchmark):
    host = profile_host()
    grid = Grid3D(16, 16, 16)
    rng = np.random.default_rng(0)
    rows = []
    ratios = []
    for n in (128, 512, 2048):
        P = rng.standard_normal((16, 16, 16, n)).astype(np.float32)
        eng = BsplineFused(grid, P)
        out = eng.new_output("vgh")
        positions = grid.random_positions(16, rng)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for x, y, z in positions:
                eng.vgh(x, y, z, out)
            best = min(best, (time.perf_counter() - t0) / len(positions))
        pred = predict_fused_vgh_seconds(n, host)
        ratios.append(best / pred)
        rows.append([n, best * 1e6, pred * 1e6, best / pred])
    emit(
        format_table(
            ["N", "measured µs/eval", "predicted µs/eval", "ratio"],
            rows,
            title="Host model validation [live:host] — fused VGH, "
            f"BW={host.stream_bw / 1e9:.1f} GB/s, "
            f"dispatch={host.dispatch_overhead * 1e6:.2f} µs "
            "(no fitting to the kernel)",
        )
    )
    # First-principles quality bar: within 5x everywhere, and the ratio
    # shrinks with N (the unmodelled fixed setup amortizes away).
    assert all(0.5 < r < 5.0 for r in ratios), ratios
    assert ratios[-1] < ratios[0]

    benchmark(lambda: predict_fused_vgh_seconds(2048, host))
