"""PR8 benchmark: cross-request micro-batching in the serving layer.

Drives a live ``repro.serve`` server (``ServerThread``: real sockets,
real worker processes, real shared-memory tables) with a fleet of
concurrent tenants and measures what coalescing buys: the *coalesced*
mode (``max_batch=32``, a small wait window) against a *baseline*
server with ``max_batch=1`` — identical protocol, identical worker
count, identical payloads — so the only difference is whether
compatible requests ride the same fused kernel call.

The workload is the QMC inner loop's natural request shape: each
request carries **one walker position** (a proposed drift-diffusion
move needing orbital values before accept/reject).  Tenants are
pipelined NDJSON clients keeping a few requests in flight, the way an
async driver would — that is what gives the batching window something
to coalesce.

**No number without a gate.**  Every response from every mode is
checked ``assert_array_equal``-identical to a direct in-process
``BsplineBatched`` call with the same inputs — through JSON, the table
cache, shared memory, and whatever micro-batch each request happened
to share (the PR5 contract: a position's result is bitwise independent
of batch composition).  Verification runs after the clock stops so the
timed loop measures serving, not the harness; a single mismatched bit
fails the whole benchmark.

The PR's acceptance target: the coalesced server reaches >= 2x the
baseline's requests/sec at equal worker count, with >= 8 concurrent
tenants.  The report carries p50/p99 client latency and the server's
own batch-formation counters for both modes.

Run directly (pytest-free, writes BENCH_pr8.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr8.py [--quick|--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import socket
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import BsplineBatched, Grid3D, detect_caches
from repro.core.kinds import Kind
from repro.obs import OBS
from repro.serve import ServeClient, ServeConfig, ServerThread
from repro.serve.cache import SystemKey, solve_system_table
from repro.serve.protocol import decode_array, decode_line, encode_array, encode_line

WORKERS = 2
KIND = "vgh"
TARGET_SPEEDUP = 2.0

# (n_tenants, requests_per_tenant, pipeline_depth, repeats, system)
FULL_CONFIG = (
    8,
    60,
    8,
    3,
    {"n_orbitals": 4, "box": 6.0, "grid_shape": [12, 12, 12]},
)
QUICK_CONFIG = (
    8,
    24,
    8,
    1,
    {"n_orbitals": 4, "box": 6.0, "grid_shape": [12, 12, 12]},
)
TINY_CONFIG = (
    8,
    8,
    4,
    1,
    {"n_orbitals": 2, "box": 6.0, "grid_shape": [8, 8, 8]},
)

MODES = {
    "baseline": {"max_batch": 1, "max_wait_us": 0.0},
    "coalesced": {"max_batch": 32, "max_wait_us": 4000.0},
}


def host_metadata() -> dict:
    caches = detect_caches()
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "caches": dataclasses.asdict(caches),
    }


def _build_payloads(n_tenants: int, n_requests: int) -> list[list[np.ndarray]]:
    """One (1, 3) fractional position per request, deterministic."""
    return [
        [
            np.random.default_rng(20170707 + 1000 * t + r).random((1, 3))
            for r in range(n_requests)
        ]
        for t in range(n_tenants)
    ]


def _references(system: dict, payloads) -> list[list[dict]]:
    """Direct-engine results every served byte must equal exactly.

    Each payload is evaluated in its own kernel call — the strictest
    possible reading of the coalescing contract, since the server will
    fuse them into batches of whatever composition the load produced.
    """
    key = SystemKey(
        system["n_orbitals"], system["box"], system["grid_shape"], "float64"
    )
    table = solve_system_table(key)
    nx, ny, nz = key.grid_shape
    engine = BsplineBatched(Grid3D(nx, ny, nz, (1.0, 1.0, 1.0)), table)
    kind = Kind(KIND)
    refs = []
    for tenant_payloads in payloads:
        rows = []
        for positions in tenant_payloads:
            out = engine.new_output(kind, n=len(positions))
            engine.evaluate_batch(kind, positions, out)
            rows.append(
                {s: np.array(getattr(out, s)) for s in kind.streams}
            )
        refs.append(rows)
    return refs


def _tenant_loop(address, tenant, system, payloads, depth, latencies, inbox):
    """Pipelined NDJSON client: keep ``depth`` requests in flight.

    Records wire latency per request id and stashes raw responses in
    ``inbox`` for post-run bit verification (responses may arrive out
    of order — the server schedules lines concurrently).
    """
    n_requests = len(payloads)
    sock = socket.create_connection(address)
    try:
        stream = sock.makefile("rwb")
        sent_at = [0.0] * n_requests
        next_send = received = 0
        while received < n_requests:
            while next_send < n_requests and next_send - received < depth:
                request = {
                    "id": next_send,
                    "op": "eval",
                    "tenant": tenant,
                    "kind": KIND,
                    "system": system,
                    "positions": encode_array(payloads[next_send]),
                }
                sent_at[next_send] = time.perf_counter()
                stream.write(encode_line(request))
                stream.flush()
                next_send += 1
            response = decode_line(stream.readline())
            latencies.append(time.perf_counter() - sent_at[response["id"]])
            inbox.append(response)
            received += 1
        stream.close()
    finally:
        sock.close()


def _verify_responses(inboxes, refs) -> int:
    """Bit-gate every response against its direct reference.

    Returns the number of responses that reported riding a coalesced
    batch (``meta.coalesced > 1``), as seen from the client side.
    """
    streams = Kind(KIND).streams
    coalesced_seen = 0
    for tenant, inbox in enumerate(inboxes):
        ids_seen = set()
        for response in inbox:
            if not response.get("ok"):
                raise AssertionError(
                    f"tenant {tenant} got an error response: {response}"
                )
            rid = response["id"]
            ids_seen.add(rid)
            served = response["result"]["streams"]
            for name in streams:
                np.testing.assert_array_equal(
                    decode_array(served[name]),
                    refs[tenant][rid][name],
                    err_msg=(
                        f"served bytes differ from the direct engine "
                        f"(tenant {tenant}, request {rid}, stream {name})"
                    ),
                )
            if response.get("meta", {}).get("coalesced", 1) > 1:
                coalesced_seen += 1
        if ids_seen != set(range(len(refs[tenant]))):
            raise AssertionError(
                f"tenant {tenant} is missing responses: got {sorted(ids_seen)}"
            )
    return coalesced_seen


def _metric(metrics: dict, name: str):
    for key, entry in metrics.items():
        if key == name or key.startswith(name + "{"):
            return entry
    return None


def run_mode(mode_name, knobs, config, system) -> dict:
    """Time one server mode; returns its result row (already bit-gated)."""
    n_tenants, n_requests, depth, repeats, _ = config
    payloads = _build_payloads(n_tenants, n_requests)
    refs = _references(system, payloads)
    server_config = ServeConfig(
        workers=WORKERS,
        max_batch=knobs["max_batch"],
        max_wait_us=knobs["max_wait_us"],
        table_cache=4,
    )
    runs = []
    with ServerThread(server_config) as server:
        # Warm the table cache and worker engines off the clock, then
        # zero the (process-global) metrics so counters are per-mode.
        with ServeClient(server.address) as client:
            client.evaluate(payloads[0][0], kind=KIND, system=system)
        OBS.reset()

        for _ in range(repeats):
            latencies: list[list[float]] = [[] for _ in range(n_tenants)]
            inboxes: list[list[dict]] = [[] for _ in range(n_tenants)]
            failures: list[BaseException] = []
            barrier = threading.Barrier(n_tenants + 1)

            def tenant_main(t):
                try:
                    barrier.wait()
                    _tenant_loop(
                        server.address,
                        f"tenant-{t}",
                        system,
                        payloads[t],
                        depth,
                        latencies[t],
                        inboxes[t],
                    )
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    failures.append(exc)

            threads = [
                threading.Thread(target=tenant_main, args=(t,))
                for t in range(n_tenants)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            t0 = time.perf_counter()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - t0
            if failures:
                raise failures[0]

            coalesced_seen = _verify_responses(inboxes, refs)  # the gate
            flat = np.array(sorted(sum(latencies, [])))
            runs.append(
                {
                    "wall_seconds": wall,
                    "requests_per_sec": n_tenants * n_requests / wall,
                    "p50_ms": float(np.percentile(flat, 50) * 1e3),
                    "p99_ms": float(np.percentile(flat, 99) * 1e3),
                    "client_coalesced_responses": coalesced_seen,
                }
            )

        with ServeClient(server.address) as client:
            metrics = client.stats()["metrics"]

    batches = _metric(metrics, "serve_batches_total")
    coalesced = _metric(metrics, "serve_coalesced_requests_total")
    batch_size = _metric(metrics, "serve_batch_size")
    total_requests = repeats * n_tenants * n_requests
    return {
        "max_batch": knobs["max_batch"],
        "max_wait_us": knobs["max_wait_us"],
        "workers": WORKERS,
        "requests_total": total_requests,
        "best_requests_per_sec": max(r["requests_per_sec"] for r in runs),
        "runs": runs,
        "server_batches_total": batches["value"] if batches else 0,
        "server_coalesced_requests_total": (
            coalesced["value"] if coalesced else 0
        ),
        "server_mean_batch_size": (
            batch_size["mean"] if batch_size else None
        ),
        "gate": "assert_array_equal vs direct engine, every response",
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="shorter run, no speedup target"
    )
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke: tiny system, few requests — the bit-gate and the "
        "coalescing counters only, no speedup target",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr8.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        config, label = TINY_CONFIG, "tiny"
    elif args.quick:
        config, label = QUICK_CONFIG, "quick"
    else:
        config, label = FULL_CONFIG, "full"
    n_tenants, n_requests, depth, repeats, system = config

    t0 = time.perf_counter()
    results = {
        name: run_mode(name, knobs, config, system)
        for name, knobs in MODES.items()
    }
    speedup = (
        results["coalesced"]["best_requests_per_sec"]
        / results["baseline"]["best_requests_per_sec"]
    )

    report = {
        "benchmark": "pr8-serving-coalescing",
        "mode": label,
        "host": host_metadata(),
        "note": (
            "Both modes run the identical server (workers, protocol, table "
            "cache, payloads); only the micro-batching window differs. "
            "Every response in every mode was verified bitwise against a "
            "direct in-process engine call before any number was recorded. "
            "Latency is client wire latency under pipelining (depth "
            f"{depth}), so it includes queueing at the client's own depth."
        ),
        "workload": {
            "kind": KIND,
            "tenants": n_tenants,
            "requests_per_tenant": n_requests,
            "positions_per_request": 1,
            "pipeline_depth": depth,
            "repeats": repeats,
            "system": system,
        },
        "modes": results,
        "target": {
            "metric": "requests_per_sec",
            "speedup": TARGET_SPEEDUP,
            "baseline": "same server, max_batch=1",
            "measured_speedup": speedup,
        },
    }
    if label == "full":
        report["target"]["meets_target"] = speedup >= TARGET_SPEEDUP

    # Coalescing must actually have happened for the comparison to mean
    # anything — a zero counter here is a broken benchmark, not a result.
    if results["coalesced"]["server_coalesced_requests_total"] == 0:
        print("FAIL: the coalesced mode never formed a multi-request batch")
        return 1

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    for name, row in results.items():
        best = row["best_requests_per_sec"]
        p50 = min(r["p50_ms"] for r in row["runs"])
        p99 = min(r["p99_ms"] for r in row["runs"])
        print(
            f"{name:10s} max_batch={row['max_batch']:2d}: "
            f"{best:8.0f} req/s  p50={p50:6.2f}ms  p99={p99:6.2f}ms  "
            f"coalesced={row['server_coalesced_requests_total']}"
        )
    print(f"speedup: {speedup:.2f}x (target >= {TARGET_SPEEDUP}x, {label})")
    print(f"wrote {args.out} in {report['total_seconds']:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
