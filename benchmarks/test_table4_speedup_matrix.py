"""Paper Table IV — speedups at N=2048 for optimization steps A/B/C.

The full 12-cell matrix (3 kernels x 4 machines x 3 steps), model vs
paper, with the per-machine nth(Nb) row.  Tolerance: every modelled
speedup within 1.45x of the paper's (documented in EXPERIMENTS.md;
mean |log error| ~10%).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.perf import format_table

PAPER = {
    ("v", "BDW"): (None, 2.0, 3.4),
    ("v", "KNC"): (None, 1.2, 5.9),
    ("v", "KNL"): (None, 1.3, 18.7),
    ("v", "BGQ"): (None, 1.3, 2.0),
    ("vgl", "BDW"): (4.2, 10.2, 17.2),
    ("vgl", "KNC"): (4.0, 5.7, 42.1),
    ("vgl", "KNL"): (5.1, 5.6, 80.6),
    ("vgl", "BGQ"): (7.4, 9.5, 15.8),
    ("vgh", "BDW"): (1.7, 3.7, 6.4),
    ("vgh", "KNC"): (2.6, 5.2, 35.2),
    ("vgh", "KNL"): (1.7, 2.3, 33.1),
    ("vgh", "BGQ"): (1.9, 2.7, 5.2),
}
NTH = {"BDW": 2, "KNC": 8, "KNL": 16, "BGQ": 2}
PAPER_NB_NESTED = {"BDW": 32, "KNC": 256, "KNL": 128, "BGQ": 32}


def test_table4_speedup_matrix(models, benchmark):
    rows = []
    errors = []
    for kern in ("v", "vgl", "vgh"):
        for mname in ("BDW", "KNC", "KNL", "BGQ"):
            s = models[mname].speedups(kern, 2048, NTH[mname])
            pa, pb, pc = PAPER[(kern, mname)]
            rows.append(
                [
                    kern.upper(),
                    mname,
                    "-" if pa is None else pa,
                    "-" if pa is None else round(s["A"], 2),
                    pb,
                    round(s["B"], 2),
                    pc,
                    round(s["C"], 2),
                    f"{NTH[mname]}({s['nb_nested']})",
                ]
            )
            for paper_v, model_v in ((pa, s["A"]), (pb, s["B"]), (pc, s["C"])):
                if paper_v is not None:
                    errors.append(abs(np.log(model_v / paper_v)))
                    assert 1 / 1.45 < model_v / paper_v < 1.45, (
                        kern,
                        mname,
                        paper_v,
                        model_v,
                    )
    emit(
        format_table(
            ["kernel", "machine", "A(paper)", "A(model)", "B(paper)",
             "B(model)", "C(paper)", "C(model)", "nth(Nb)"],
            rows,
            title="Table IV — speedups at N=2048, paper vs model",
        )
    )
    emit(
        f"Table IV fit: mean |log error| = {np.mean(errors):.3f}, "
        f"max = {np.max(errors):.3f} over {len(errors)} cells"
    )
    assert np.mean(errors) < 0.20

    # The nested tile choice matches the paper's bottom row.
    for mname in NTH:
        s = models[mname].speedups("vgh", 2048, NTH[mname])
        assert s["nb_nested"] <= 2048 // NTH[mname]

    benchmark(lambda: models["KNL"].speedups("vgh", 2048, 16))
