"""PR6 benchmark: fleet supervision — recovery latency (MTTR) and overhead.

Measures the :mod:`repro.fleet` layer on live sharded DMC runs:

* **steady-state supervision overhead** — the same run with and without
  a :class:`~repro.fleet.FleetConfig` (heartbeats + per-call deadlines,
  no faults); the PR's acceptance target is < 2% wall-time overhead;
* **MTTR** — mean time to recovery when a worker is SIGKILL'd
  mid-generation by a scheduled
  :meth:`~repro.resilience.faults.FaultInjector.sigkill_worker` fault
  (detection -> restarted -> shard replayed);
* **multi-node extrapolation** — the measured MTTR folded into the
  strong-scaling model (:func:`repro.hwsim.recovery_overhead_curve`):
  expected node failures grow with the fleet while the run shrinks
  along the Opt-C curve.

Every timed or faulted run is gated on **bit-identity** first: its
energy/population traces must equal the unfaulted sequential run's
exactly (``np.testing.assert_array_equal``) — supervision and recovery
are pure orchestration, never physics.

Run directly (pytest-free, writes BENCH_pr6.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr6.py [--quick|--tiny] [--out PATH]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.fleet import FleetConfig
from repro.hwsim import KNL, recovery_overhead_curve
from repro.parallel import CrowdSpec, run_dmc_sharded
from repro.resilience.faults import FaultInjector

# (n_walkers, n_orbitals, n_generations, reps)
FULL_CFG = (8, 4, 20, 3)
QUICK_CFG = (5, 2, 6, 2)
TINY_CFG = (3, 2, 3, 1)

N_WORKERS = 2
TAU = 0.04
SEED = 23
OVERHEAD_TARGET = 0.02  # < 2% steady-state supervision overhead
MODEL_SINGLE_NODE_HOURS = 2.0  # nominal production run extrapolated over
MODEL_NODE_MTBF_HOURS = 2000.0


def host_metadata() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def _assert_traces_equal(run, reference, context: str) -> None:
    np.testing.assert_array_equal(
        run.energy_trace, reference.energy_trace, err_msg=f"{context}: energy"
    )
    np.testing.assert_array_equal(
        run.population_trace,
        reference.population_trace,
        err_msg=f"{context}: population",
    )
    assert run.acceptance == reference.acceptance, f"{context}: acceptance"


def _timed_run(spec, gens, reps, fleet=None, injector=None):
    """Best-of-``reps`` wall seconds for one sharded run; returns
    (best_seconds, last_result)."""
    best, result = np.inf, None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = run_dmc_sharded(
            spec,
            n_workers=N_WORKERS,
            n_generations=gens,
            tau=TAU,
            fleet=fleet,
            injector=injector,
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_overhead(spec, reference, gens, reps) -> dict:
    """Supervised-vs-plain wall time on an unfaulted run (bit-gated)."""
    plain_s, plain = _timed_run(spec, gens, reps)
    _assert_traces_equal(plain, reference, "plain parallel")
    sup_s, supervised = _timed_run(
        spec, gens, reps, fleet=FleetConfig(worker_timeout=60.0)
    )
    _assert_traces_equal(supervised, reference, "supervised")
    assert supervised.fleet["restarts"] == 0
    return {
        "n_workers": N_WORKERS,
        "generations": gens,
        "plain_seconds": plain_s,
        "supervised_seconds": sup_s,
        "overhead": sup_s / plain_s - 1.0,
        "bit_identical": True,
    }


def bench_mttr(spec, reference, gens, reps) -> dict:
    """Recovery latency under an injected mid-run SIGKILL (bit-gated)."""
    mttr, restarts = [], 0
    for rep in range(max(reps, 1)):
        injector = FaultInjector(seed=100 + rep)
        injector.sigkill_worker(worker=1, generation=gens // 2)
        faulted = run_dmc_sharded(
            spec,
            n_workers=N_WORKERS,
            n_generations=gens,
            tau=TAU,
            fleet=FleetConfig(worker_timeout=60.0),
            injector=injector,
        )
        _assert_traces_equal(faulted, reference, f"faulted rep {rep}")
        assert faulted.fleet["restarts"] >= 1
        restarts += faulted.fleet["restarts"]
        mttr.extend(faulted.fleet["mttr_seconds"])
    return {
        "faulted_runs": max(reps, 1),
        "fault": {"kind": "sigkill", "worker": 1, "generation": gens // 2},
        "restarts": restarts,
        "mttr_samples": mttr,
        "mttr_mean_seconds": float(np.mean(mttr)),
        "mttr_min_seconds": float(np.min(mttr)),
        "mttr_max_seconds": float(np.max(mttr)),
        "bit_identical": True,
    }


def bench_recovery_model(mttr_seconds: float) -> dict:
    """Fold the measured MTTR into the KNL strong-scaling model."""
    points = recovery_overhead_curve(
        KNL,
        mttr_seconds=mttr_seconds,
        single_node_run_seconds=MODEL_SINGLE_NODE_HOURS * 3600.0,
        node_mtbf_hours=MODEL_NODE_MTBF_HOURS,
    )
    return {
        "machine": "KNL",
        "single_node_run_hours": MODEL_SINGLE_NODE_HOURS,
        "node_mtbf_hours": MODEL_NODE_MTBF_HOURS,
        "mttr_seconds": mttr_seconds,
        "points": [dataclasses.asdict(p) for p in points],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="small run, no overhead target"
    )
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="one tiny config for CI smoke runs: the bit-identity gates and "
        "MTTR only, no overhead target",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr6.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        (walkers, orbitals, gens, reps), label = TINY_CFG, "tiny"
    elif args.quick:
        (walkers, orbitals, gens, reps), label = QUICK_CFG, "quick"
    else:
        (walkers, orbitals, gens, reps), label = FULL_CFG, "full"

    spec = CrowdSpec(n_walkers=walkers, n_orbitals=orbitals, seed=SEED)
    t0 = time.perf_counter()
    reference = run_dmc_sharded(spec, n_workers=1, n_generations=gens, tau=TAU)

    overhead = bench_overhead(spec, reference, gens, reps)
    mttr = bench_mttr(spec, reference, gens, reps)
    model = bench_recovery_model(mttr["mttr_mean_seconds"])

    report = {
        "benchmark": "pr6-fleet-supervision",
        "mode": label,
        "host": host_metadata(),
        "note": (
            "Supervised = the same sharded DMC run under a FleetSupervisor "
            "(heartbeats + per-call deadlines); MTTR measured under an "
            "injected mid-generation SIGKILL.  Every run passed "
            "np.testing.assert_array_equal against the unfaulted "
            "sequential traces before its numbers were recorded."
        ),
        "spec": {
            "n_walkers": walkers,
            "n_orbitals": orbitals,
            "generations": gens,
            "tau": TAU,
            "seed": SEED,
            "reps": reps,
        },
        "overhead": overhead,
        "mttr": mttr,
        "recovery_model": model,
        "target": {
            "overhead": OVERHEAD_TARGET,
            "applies_to": "full mode (steady-state supervision, no faults)",
        },
    }
    if not (args.quick or args.tiny):
        report["target"]["measured_overhead"] = overhead["overhead"]
        report["target"]["meets_target"] = (
            overhead["overhead"] < OVERHEAD_TARGET
        )

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"supervision overhead: {overhead['overhead'] * 100:+.2f}% "
        f"(plain {overhead['plain_seconds']:.3f}s, "
        f"supervised {overhead['supervised_seconds']:.3f}s)  bit-identical",
        file=sys.stderr,
    )
    print(
        f"MTTR over {mttr['restarts']} recoveries: "
        f"mean {mttr['mttr_mean_seconds'] * 1000:.1f} ms "
        f"(min {mttr['mttr_min_seconds'] * 1000:.1f}, "
        f"max {mttr['mttr_max_seconds'] * 1000:.1f})  bit-identical",
        file=sys.stderr,
    )
    for p in model["points"]:
        print(
            f"model {p['n_nodes']:2d} KNL nodes: "
            f"{p['expected_failures']:.4f} expected failures, "
            f"recovery overhead {p['recovery_overhead'] * 100:.4f}%, "
            f"effective reduction {p['effective_time_reduction']:.2f}x",
            file=sys.stderr,
        )
    if "meets_target" in report["target"]:
        t = report["target"]
        print(
            f"supervision overhead {t['measured_overhead'] * 100:.2f}% "
            f"(target < {OVERHEAD_TARGET * 100:.0f}%): "
            + ("PASS" if t["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not t["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
