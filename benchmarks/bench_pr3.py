"""Process-pool scaling benchmark — emits ``BENCH_pr3.json``.

Measures the three rates the multiprocess layer (PR 3) is about:

* ``kernel_soa_vgh``    — walkers/sec of the soa-vgh miniQMC kernel
  driver at 1/2/4 worker processes sharing one table;
* ``crowd_fused``       — walker-sweeps/sec of the process-parallel
  crowd at 1/2/4 workers;
* ``batched_chunked``   — positions/sec of ``BsplineBatched`` with and
  without a ``max_batch_bytes`` cap (the bounded-temporary path).

Every parallel result is asserted bit-identical to its sequential
reference before a rate is recorded — a number from a wrong answer is
worthless.  Host metadata (CPU count, platform) rides along so readers
can judge the speedups: process scaling needs physical cores, and a
single-core host will honestly report ~1x.

Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_pr3.py [--quick] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import BsplineBatched, Grid3D
from repro.miniqmc import live_kernel_config, random_coefficients, run_kernel_driver
from repro.parallel import CrowdSpec, run_crowd_parallel, run_crowd_sequential

PROCESS_COUNTS = (1, 2, 4)


def host_metadata() -> dict:
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def bench_kernel_driver(quick: bool) -> dict:
    """soa-vgh kernel driver: walkers/sec at each process count."""
    cfg = live_kernel_config(
        n_splines=32 if quick else 64,
        grid=(10, 10, 10) if quick else (16, 16, 16),
        n_samples=8 if quick else 64,
    )
    from dataclasses import replace

    cfg = replace(cfg, n_walkers=4 if quick else 8)
    table = random_coefficients(cfg)
    seq = run_kernel_driver(cfg, "soa", kernels=("vgh",), coefficients=table)
    rows = []
    for n_proc in PROCESS_COUNTS:
        res = run_kernel_driver(
            cfg, "soa", kernels=("vgh",), coefficients=table, processes=n_proc
        )
        assert res.evals == seq.evals, "process run did different work"
        secs = res.seconds["vgh"]
        rows.append(
            {
                "processes": n_proc,
                "seconds": secs,
                "walkers_per_sec": cfg.n_walkers * cfg.n_iters / secs,
                "evals": res.evals["vgh"],
            }
        )
    base = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_1proc"] = base / row["seconds"]
    return {
        "config": {
            "engine": "soa",
            "kernel": "vgh",
            "n_splines": cfg.n_splines,
            "grid": list(cfg.grid_shape),
            "n_samples": cfg.n_samples,
            "n_walkers": cfg.n_walkers,
        },
        "sequential_seconds": seq.seconds["vgh"],
        "rows": rows,
    }


def bench_crowd(quick: bool) -> dict:
    """Process-parallel crowd: walker-sweeps/sec, verified bit-identical."""
    spec = CrowdSpec(n_walkers=4 if quick else 8, n_orbitals=2 if quick else 4)
    n_sweeps = 2 if quick else 5
    tau = 0.35
    ref = run_crowd_sequential(spec, n_sweeps=n_sweeps, tau=tau)
    rows = []
    for n_workers in PROCESS_COUNTS:
        res = run_crowd_parallel(spec, n_workers=n_workers, n_sweeps=n_sweeps, tau=tau)
        np.testing.assert_array_equal(res.positions, ref.positions)
        np.testing.assert_array_equal(res.log_values, ref.log_values)
        rows.append(
            {
                "workers": n_workers,
                "seconds": res.seconds,
                "walker_sweeps_per_sec": res.walkers_per_second,
                "acceptance": res.acceptance,
            }
        )
    base = rows[0]["seconds"]
    for row in rows:
        row["speedup_vs_1proc"] = base / row["seconds"]
    return {
        "config": {
            "n_walkers": spec.n_walkers,
            "n_orbitals": spec.n_orbitals,
            "engine": spec.engine,
            "n_sweeps": n_sweeps,
        },
        "sequential_seconds": ref.seconds,
        "bit_identical": True,
        "rows": rows,
    }


def bench_batched_chunked(quick: bool) -> dict:
    """BsplineBatched throughput, unchunked vs max_batch_bytes-capped."""
    n_splines = 32 if quick else 64
    shape = (12, 12, 12)
    ns = 256 if quick else 1024
    reps = 3 if quick else 10
    rng = np.random.default_rng(2017)
    table = rng.standard_normal((*shape, n_splines))
    grid = Grid3D(*shape)
    positions = grid.random_positions(ns, rng)
    rows = []
    full = BsplineBatched(grid, table)
    ref = full.new_output(ns)
    full.vgh_batch(positions, ref)
    per_position = 64 * n_splines * table.dtype.itemsize
    for label, engine in [
        ("unchunked", full),
        # Cap the gather temporary at 1/8 of the batch (8 chunks/call).
        ("chunked", BsplineBatched(grid, table, max_batch_bytes=(ns // 8) * per_position)),
    ]:
        out = engine.new_output(ns)
        engine.vgh_batch(positions, out)  # warm-up + correctness
        np.testing.assert_array_equal(out.v, ref.v)
        np.testing.assert_array_equal(out.h, ref.h)
        t0 = time.perf_counter()
        for _ in range(reps):
            engine.vgh_batch(positions, out)
        dt = time.perf_counter() - t0
        rows.append(
            {
                "variant": label,
                "chunk_positions": engine._chunk,
                "seconds_per_call": dt / reps,
                "positions_per_sec": ns * reps / dt,
            }
        )
    return {
        "config": {"n_splines": n_splines, "grid": list(shape), "batch": ns},
        "bitwise_identical": True,
        "rows": rows,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small sizes (CI)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr3.json"),
    )
    args = parser.parse_args(argv)
    t0 = time.perf_counter()
    report = {
        "benchmark": "pr3-process-pool-scaling",
        "host": host_metadata(),
        "note": (
            "Speedups require physical cores; on hosts where cpu_count "
            "is ~1 the bit-identity checks still run but speedup_vs_1proc "
            "stays ~1x and reflects process overhead, not the design."
        ),
        "kernel_soa_vgh": bench_kernel_driver(args.quick),
        "crowd_fused": bench_crowd(args.quick),
        "batched_chunked": bench_batched_chunked(args.quick),
    }
    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} in {report['total_seconds']:.1f} s", file=sys.stderr)
    for section in ("kernel_soa_vgh", "crowd_fused"):
        for row in report[section]["rows"]:
            n = row.get("processes", row.get("workers"))
            print(
                f"  {section:16s} x{n}: {row['speedup_vs_1proc']:.2f}x",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
