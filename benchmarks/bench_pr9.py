"""PR9 benchmark: the measured tuned config vs the PR5 cache heuristic.

For each VGH shape this bench resolves two :class:`repro.config.RunConfig`
plans over the same table:

* **heuristic** — rung 4 only (``tune="off"``): the PR5 cache-budget
  ``plan_tiles`` decision on the default (exact-tier) backend;
* **tuned** — rung 3 with ``backend="auto"``: the empirically measured
  ``(chunk, tile, backend)`` winner from the per-host
  :class:`repro.tune.TuneDB`, populated by ``autotune_table`` if the
  shape is cold (the search is reported but not part of the timed
  comparison — the whole point is that its cost is paid once per host).

Both engines are conformance-gated against the frozen PR4 oracle
(:class:`repro.core.batched_reference.ReferenceBatched`) **before** the
clock starts: every exact-tier config must ``assert_array_equal`` the
oracle on every stream of every kernel; an ``allclose``-tier winner
(e.g. the compiled ``cc`` backend) is verified at its *stored* declared
tolerances and the row is labelled with its tier — the tuner can only
ever win by being *fast*, never by being *wrong*.  The PR's acceptance
target is the tuned config beating the heuristic by >= 1.15x VGH
evals/sec on at least one shape.

Run directly (pytest-free, writes BENCH_pr9.json at the repo root):

    PYTHONPATH=src python benchmarks/bench_pr9.py [--quick|--tiny] [--out PATH]

The bench uses a private DB file by default (``--db`` to override, e.g.
to reuse a CI-tuned ``tunedb.json``), so it never pollutes the real
per-host cache.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.config import RunConfig
from repro.core import BsplineBatched, Grid3D, detect_caches
from repro.core.batched_reference import ReferenceBatched
from repro.core.kinds import Kind
from repro.tune.db import TuneDB, TuneShape
from repro.tune.search import autotune_table

# (n_splines, batch, dtype, grid): shapes the tuner gets a real chance
# to beat the static heuristic on — large enough that chunk/tile choices
# move actual memory traffic.
FULL_CONFIGS = (
    (256, 256, "float32", (24, 24, 24)),
    (512, 512, "float32", (32, 32, 32)),
    (512, 512, "float64", (32, 32, 32)),
    (1024, 512, "float32", (32, 32, 32)),
    # Large N: the heuristic's cache-budget clamp picks a chunk well
    # below this host's real optimum — the shape the measured search
    # exists for.
    (2048, 256, "float32", (16, 16, 16)),
)
QUICK_CONFIGS = (
    (128, 128, "float32", (16, 16, 16)),
    (256, 256, "float32", (16, 16, 16)),
)
TINY_CONFIGS = ((32, 48, "float32", (12, 10, 14)),)

TARGET_SPEEDUP = 1.15
KERNELS = ("v", "vgl", "vgh")
TARGET_KERNEL = "vgh"


def host_metadata() -> dict:
    caches = detect_caches()
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "caches": dataclasses.asdict(caches),
    }


def _build_pair(n_splines, batch, dtype, grid_shape):
    grid = Grid3D(*grid_shape, lengths=(3.0, 3.0, 3.0))
    rng = np.random.default_rng(20170917 + n_splines + batch)
    table = rng.standard_normal(grid_shape + (n_splines,)).astype(dtype)
    positions = grid.random_positions(batch, rng)
    return grid, table, positions


def _assert_conforms(eng, ref, positions, tier, rtol=0.0, atol=0.0) -> None:
    """The gate: every stream of every kernel must match the oracle.

    ``exact`` tier demands bitwise equality; ``allclose`` verifies at
    the tolerances the tuning DB stored for the winning backend.
    """
    for kern in KERNELS:
        out_ref = ref.new_output(Kind(kern), n=len(positions))
        out_new = eng.new_output(Kind(kern), n=len(positions))
        getattr(ref, f"{kern}_batch")(positions, out_ref)
        getattr(eng, f"{kern}_batch")(positions, out_new)
        for stream in out_ref.valid:
            if tier == "exact":
                np.testing.assert_array_equal(
                    getattr(out_new, stream),
                    getattr(out_ref, stream),
                    err_msg=f"{kern}/{stream} diverged from the PR4 oracle",
                )
            else:
                np.testing.assert_allclose(
                    getattr(out_new, stream),
                    getattr(out_ref, stream),
                    rtol=rtol,
                    atol=atol,
                    err_msg=(
                        f"{kern}/{stream} outside the stored allclose "
                        f"tier (rtol={rtol}, atol={atol})"
                    ),
                )


def _time_vgh_pair(eng_a, eng_b, positions, reps) -> tuple[float, float]:
    """Best-of-``reps`` VGH seconds for both engines, rounds interleaved.

    Alternating A/B within every round means slow machine-level drift
    (thermal, page cache, a background task) hits both engines equally
    instead of whichever happened to be timed second.
    """
    out_a = eng_a.new_output(Kind.VGH, n=len(positions))
    out_b = eng_b.new_output(Kind.VGH, n=len(positions))
    eng_a.vgh_batch(positions, out_a)  # warm
    eng_b.vgh_batch(positions, out_b)
    best_a = best_b = np.inf
    for _ in range(reps):
        t0 = time.perf_counter()
        eng_a.vgh_batch(positions, out_a)
        best_a = min(best_a, time.perf_counter() - t0)
        t0 = time.perf_counter()
        eng_b.vgh_batch(positions, out_b)
        best_b = min(best_b, time.perf_counter() - t0)
    return best_a, best_b


def bench_shapes(configs, reps, db: TuneDB) -> dict:
    rows = []
    for n_splines, batch, dtype, grid_shape in configs:
        grid, table, positions = _build_pair(n_splines, batch, dtype, grid_shape)
        shape = TuneShape(n_splines, batch, dtype, TARGET_KERNEL)

        # Rung 4: the static PR5 plan, DB deliberately skipped, on the
        # default exact-tier backend — exactly what a pre-PR9 run did.
        heuristic = RunConfig(tune="off").resolved_for(
            n_splines, batch=batch, dtype=np.dtype(dtype)
        )
        # Rung 3: the measured (chunk, tile, backend) winner, searched
        # now if the DB is cold — that one-time cost is reported, not
        # timed against.  backend="auto" delegates the backend axis to
        # the tuner, so the winner may be an allclose-tier backend.
        t0 = time.perf_counter()
        outcome = autotune_table(grid, table, shape, db=db, backend="auto")
        search_seconds = time.perf_counter() - t0
        tuned = RunConfig(backend="auto").resolved_for(
            n_splines, batch=batch, dtype=np.dtype(dtype), db=db
        )
        assert tuned.source_of("chunk_size") == "tuned", tuned.provenance
        assert tuned.source_of("backend") == "tuned", tuned.provenance
        tier = outcome.config.tier
        rtol, atol = outcome.config.rtol, outcome.config.atol

        ref = ReferenceBatched(grid, table)
        eng_heur = BsplineBatched(grid, table, config=heuristic)
        eng_tuned = BsplineBatched(grid, table, config=tuned)
        _assert_conforms(eng_heur, ref, positions, tier="exact")
        _assert_conforms(eng_tuned, ref, positions, tier, rtol=rtol, atol=atol)

        t_heur, t_tuned = _time_vgh_pair(eng_heur, eng_tuned, positions, reps)
        rows.append(
            {
                "n_splines": n_splines,
                "batch": batch,
                "dtype": dtype,
                "grid": list(grid_shape),
                "heuristic": {
                    "chunk": heuristic.chunk_size,
                    "tile": heuristic.tile_size,
                    "backend": eng_heur.backend.name,
                    "tier": "exact",
                    "seconds": t_heur,
                    "evals_per_sec": batch / t_heur,
                },
                "tuned": {
                    "chunk": tuned.chunk_size,
                    "tile": tuned.tile_size,
                    "backend": eng_tuned.backend.name,
                    "tier": tier,
                    "rtol": rtol,
                    "atol": atol,
                    "seconds": t_tuned,
                    "evals_per_sec": batch / t_tuned,
                    "from_db": outcome.from_db,
                    "candidates_measured": outcome.measured,
                    "search_seconds": search_seconds,
                    "search_reported_speedup": outcome.config.speedup,
                },
                "speedup": t_heur / t_tuned,
                "gated": True,
            }
        )
    return {"reps": reps, "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", help="small sizes, no speedup target"
    )
    mode.add_argument(
        "--tiny",
        action="store_true",
        help="one tiny config for CI smoke runs: the bit-identity gate and "
        "the tuned-vs-heuristic comparison only, no speedup target",
    )
    parser.add_argument(
        "--db",
        default=None,
        help="tuning-DB path to use (default: a throwaway temp file; pass "
        "a real path to benchmark warm-start behaviour)",
    )
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_pr9.json"),
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)

    if args.tiny:
        configs, reps, label = TINY_CONFIGS, 2, "tiny"
    elif args.quick:
        configs, reps, label = QUICK_CONFIGS, 3, "quick"
    else:
        configs, reps, label = FULL_CONFIGS, 7, "full"

    tmp = None
    if args.db is None:
        tmp = tempfile.NamedTemporaryFile(
            prefix="bench_pr9_tunedb_", suffix=".json", delete=False
        )
        tmp.close()
        os.unlink(tmp.name)
        args.db = tmp.name
    db = TuneDB(path=args.db)

    t0 = time.perf_counter()
    section = bench_shapes(configs, reps, db)
    report = {
        "benchmark": "pr9-measured-tuner-vs-heuristic",
        "mode": label,
        "host": host_metadata(),
        "db": str(db.path),
        "note": (
            "tuned = the measured (chunk, tile, backend) TuneDB winner "
            "(rung 3 of the RunConfig resolution order, backend='auto'); "
            "heuristic = the PR5 cache-budget plan on the default "
            "exact-tier backend (rung 4, tune='off').  Before timing, "
            "every exact-tier engine passed np.testing.assert_array_equal "
            "against the frozen PR4 oracle on every kernel stream; an "
            "allclose-tier winner was verified at its stored declared "
            "tolerances and its row is labelled with the tier."
        ),
        "shapes": section,
        "target": {
            "kernel": TARGET_KERNEL,
            "speedup": TARGET_SPEEDUP,
            "applies_to": "best shape (>= 1 shape must clear the bar)",
        },
    }
    if not (args.quick or args.tiny):
        best = max(r["speedup"] for r in section["rows"])
        report["target"]["best_speedup"] = best
        report["target"]["meets_target"] = best >= TARGET_SPEEDUP

    report["total_seconds"] = time.perf_counter() - t0
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    if tmp is not None and os.path.exists(tmp.name):
        os.unlink(tmp.name)

    for row in section["rows"]:
        h, t = row["heuristic"], row["tuned"]
        origin = (
            "db"
            if t["from_db"]
            else f"searched {t['candidates_measured']} candidates"
        )
        print(
            f"N={row['n_splines']:4d} batch={row['batch']:4d} "
            f"{row['dtype']:8s} vgh tuned "
            f"({t['backend']},{t['chunk']},{t['tile']}) "
            f"{t['evals_per_sec']:10.1f} ev/s vs heuristic "
            f"({h['backend']},{h['chunk']},{h['tile']}) "
            f"{h['evals_per_sec']:10.1f}  "
            f"speedup {row['speedup']:.2f}x  [{origin}]  "
            f"tier={t['tier']}",
            file=sys.stderr,
        )
    if "meets_target" in report["target"]:
        t = report["target"]
        print(
            f"best tuned-vs-heuristic vgh speedup {t['best_speedup']:.2f}x "
            f"(target >= {TARGET_SPEEDUP:.2f}x on >= 1 shape): "
            + ("PASS" if t["meets_target"] else "FAIL"),
            file=sys.stderr,
        )
        if not t["meets_target"]:
            return 1
    print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
